"""Fault localization — Section 4.3 and Algorithm 4 (``PathInfer``).

When verification fails, the server tries to reconstruct the *real* path the
packet took from the Bloom-filter tag, and to blame the switch where it
first deviated from the configured path.

Two algorithms are provided:

* :class:`StrawmanLocalizer` — the paper's strawman: walk the correct path
  hop by hop, testing each hop's Bloom membership against the tag; the first
  failing hop's switch is blamed.  Bloom false positives let the walk slide
  past the actual deviation, mis-blaming a downstream switch.
* :class:`PathInferLocalizer` — Algorithm 4: additionally *reconstructs* a
  candidate real path by enumerating the suspect's output ports and chasing
  downstream flow tables, backtracking when no tag-consistent continuation
  reaches the reported output port.  A suspect is confirmed only when a full
  consistent path exists, which suppresses most false-positive mis-blames
  (Table 3: 99.2% / 96.6% recovery on fat trees).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..netmodel.hops import Hop
from ..netmodel.rules import DROP_PORT
from ..netmodel.topology import PortRef, Topology
from .bloom import BloomTagScheme
from .pathtable import PathTableBuilder
from .reports import TagReport

try:  # pragma: no cover - exercised via the scalar fallback test
    from .vector import HAVE_NUMPY as _HAVE_NUMPY
    from .vector import bloom_first_miss as _bloom_first_miss
except Exception:  # pragma: no cover
    _HAVE_NUMPY = False
    _bloom_first_miss = None

__all__ = [
    "LocalizationResult",
    "CandidatePath",
    "PathInferLocalizer",
    "StrawmanLocalizer",
    "first_bloom_miss",
]

#: Paths shorter than this test hop-by-hop: the numpy call's fixed cost
#: exceeds the whole scalar walk on the typical 2-5 hop path.
_VECTOR_MIN_HOPS = 8


def first_bloom_miss(scheme: BloomTagScheme, tag: int, hops: Sequence[Hop]) -> int:
    """Index of the first hop failing the tag's Bloom test (``-1`` = none).

    The localization walks' inner loop.  Long candidate paths are tested
    with one vectorized AND/compare sweep (``core.vector.bloom_first_miss``
    over the per-hop filters, which are memoised per scheme); short paths
    and numpy-free hosts take the scalar hop-by-hop walk — the results are
    identical.
    """
    if _HAVE_NUMPY and len(hops) >= _VECTOR_MIN_HOPS:
        return _bloom_first_miss(tag, [scheme.hop_filter(hop) for hop in hops])
    for index, hop in enumerate(hops):
        if not scheme.may_contain(tag, hop):
            return index
    return -1


@dataclass
class CandidatePath:
    """One possible real path, with the switch blamed for the deviation."""

    hops: Tuple[Hop, ...]
    blamed_switch: Optional[str]

    def __str__(self) -> str:
        path = " -> ".join(str(hop) for hop in self.hops)
        blame = self.blamed_switch or "(none)"
        return f"blame {blame}: {path}"


@dataclass
class LocalizationResult:
    """All candidate real paths recovered for one failed report."""

    report: TagReport
    candidates: List[CandidatePath] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """Did the algorithm produce at least one consistent real path?"""
        return bool(self.candidates)

    def blamed_switches(self) -> List[str]:
        """Distinct blamed switches across candidates, in order."""
        seen: List[str] = []
        for candidate in self.candidates:
            if candidate.blamed_switch and candidate.blamed_switch not in seen:
                seen.append(candidate.blamed_switch)
        return seen

    def contains_path(self, hops: Sequence[Hop]) -> bool:
        """Is the given (actual) path among the candidates?"""
        target = tuple(hops)
        return any(candidate.hops == target for candidate in self.candidates)

    def contains_prefix_of(self, hops: Sequence[Hop]) -> bool:
        """Is some candidate a (non-empty) prefix of the actual path?

        This is the success notion for TTL-expired (loop) reports: the tag
        only witnesses hops up to where the verification TTL ran out, and
        repeated loop hops OR into the tag idempotently, so the best any
        localizer can recover is the walk up to the loop entry.
        """
        target = tuple(hops)
        return any(
            candidate.hops and candidate.hops == target[: len(candidate.hops)]
            for candidate in self.candidates
        )


class StrawmanLocalizer:
    """The strawman of Section 4.3: first membership-test failure is blamed."""

    def __init__(self, builder: PathTableBuilder, scheme: BloomTagScheme) -> None:
        self.builder = builder
        self.scheme = scheme

    def localize(self, report: TagReport) -> LocalizationResult:
        """Blame the first correct-path hop whose Bloom test fails."""
        result = LocalizationResult(report=report)
        header = report.header.as_dict()
        correct = self.builder.expected_path(report.inport, header)
        miss = first_bloom_miss(self.scheme, report.tag, correct)
        if miss >= 0:
            result.candidates.append(
                CandidatePath(hops=tuple(), blamed_switch=correct[miss].switch)
            )
        # Every hop passed the test: the strawman has nothing to blame.
        return result


class PathInferLocalizer:
    """Algorithm 4: reconstruct the real path and blame the deviator."""

    def __init__(
        self,
        builder: PathTableBuilder,
        scheme: BloomTagScheme,
        topo: Optional[Topology] = None,
    ) -> None:
        self.builder = builder
        self.scheme = scheme
        self.topo = topo or builder.topo

    # The paper's Algorithm 4, with two pragmatic completions the prose
    # demands but the pseudocode elides: (1) the deviating hop itself must
    # pass the Bloom membership test ("only <1,S2,3> can pass the test"),
    # and (2) a deviating hop that lands directly on the reported output
    # port is itself a complete dev_path.

    def localize(self, report: TagReport) -> LocalizationResult:
        """Run ``PathInfer`` for one failed report."""
        result = LocalizationResult(report=report)
        header = report.header.as_dict()
        tag = report.tag

        # Phase 1: the longest prefix of the correct path consistent with
        # the tag (Algorithm 4 lines 2-7).  com_path keeps the hop at which
        # the path may deviate on top.
        correct = self.builder.expected_path(report.inport, header)
        miss = first_bloom_miss(self.scheme, tag, correct)
        # com_path keeps the hop at which the path may deviate on top: the
        # prefix up to (and including) the first tag-inconsistent hop.
        com_path: List[Hop] = list(correct[: miss + 1] if miss >= 0 else correct)

        # Phase 2: backtrack, enumerating deviations (lines 8-22).
        while com_path:
            dev_hop = com_path.pop()
            switch_id = dev_hop.switch
            in_port = dev_hop.in_port
            for out_port in self._candidate_out_ports(switch_id, dev_hop.out_port):
                first = Hop(in_port, switch_id, out_port)
                if not self.scheme.may_contain(tag, first):
                    continue  # the deviating hop itself is not in the tag
                dev_path = [first]
                if self._hop_reaches(first, report.outport):
                    self._accept(result, com_path, dev_path)
                    continue
                egress = PortRef(switch_id, out_port)
                if out_port == DROP_PORT or self.topo.is_edge_port(egress):
                    continue  # exits somewhere other than the reported port
                peer = self.topo.link(egress)
                if peer is None:
                    continue
                # Chase downstream flow tables (GetPath from the next hop).
                downstream = self.builder.expected_path(peer, header)
                down_miss = first_bloom_miss(self.scheme, tag, downstream)
                consistent = (
                    downstream[:down_miss] if down_miss >= 0 else downstream
                )
                for hop in consistent:
                    dev_path.append(hop)
                    if self._hop_reaches(hop, report.outport):
                        self._accept(result, com_path, dev_path)
                        break
        return result

    # -- helpers ---------------------------------------------------------

    def _candidate_out_ports(self, switch_id: str, configured: int) -> List[int]:
        """All output ports of a switch (including ⊥), configured one last.

        Trying the configured port too lets Algorithm 4 recover paths whose
        deviation happened strictly downstream of a Bloom false positive.
        """
        ports = [p for p in self.topo.ports_of(switch_id) if p != configured]
        if configured != DROP_PORT:
            ports.append(DROP_PORT)
        ports.append(configured)
        return ports

    def _hop_reaches(self, hop: Hop, outport: PortRef) -> bool:
        """Does this hop terminate exactly at the reported output port?"""
        return hop.switch == outport.switch and hop.out_port == outport.port

    @staticmethod
    def _accept(
        result: LocalizationResult, com_path: List[Hop], dev_path: List[Hop]
    ) -> None:
        hops = tuple(com_path) + tuple(dev_path)
        blamed = dev_path[0].switch
        candidate = CandidatePath(hops=hops, blamed_switch=blamed)
        if all(existing.hops != candidate.hops for existing in result.candidates):
            result.candidates.append(candidate)
