"""Automatic flow-table repair — the paper's future work #2.

The conclusion names "designing a method that can automatically repair the
flow table of a faulty switch, in order to resolve the inconsistency with
minimal human interaction".  This module implements a pragmatic escalation
ladder driven entirely by VeriDP's own outputs:

1. **Targeted re-push** — for each switch Algorithm 4 blamed, re-issue the
   logical rule that should have forwarded the failing header at the
   deviating hop (a FlowMod MODIFY).  Fixes silently-dropped installs,
   out-of-band deletions and output rewrites.
2. **Table resync** — flush the blamed switch and re-install its whole
   logical table.  Additionally displaces foreign rules the controller
   never sent (which a targeted re-push cannot remove).
3. **Escalate to the operator** — if a verification probe still fails, the
   fault is not a table-content problem (dead hardware, priority-ignoring
   lookup logic); the engine reports it unrepairable.

Each step is validated by re-injecting the failing packet and verifying its
fresh tag report, so a repair is only ever claimed when VeriDP itself
passes the flow again.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from ..netmodel.hops import Hop
from ..netmodel.packet import Header
from ..netmodel.rules import FlowRule
from ..netmodel.topology import PortRef
from .server import Incident, VeriDPServer

if TYPE_CHECKING:  # import kept type-only: controlplane imports repro.core
    from ..controlplane.controller import Controller

__all__ = ["RepairOutcome", "RepairAction", "RepairResult", "RepairEngine"]


class RepairOutcome(enum.Enum):
    """Terminal states of one repair attempt."""

    FIXED_BY_REISSUE = "fixed-by-reissue"
    FIXED_BY_RESYNC = "fixed-by-resync"
    UNREPAIRABLE = "unrepairable"
    NOTHING_TO_DO = "nothing-to-do"  # the probe already verifies

    @property
    def fixed(self) -> bool:
        """Did the network end up consistent again?"""
        return self in (
            RepairOutcome.FIXED_BY_REISSUE,
            RepairOutcome.FIXED_BY_RESYNC,
            RepairOutcome.NOTHING_TO_DO,
        )


@dataclass
class RepairAction:
    """One step the engine took (for the operator's audit log)."""

    kind: str  # "reissue" | "resync"
    switch_id: str
    rule_id: Optional[int] = None

    def __str__(self) -> str:
        target = f" rule {self.rule_id}" if self.rule_id is not None else ""
        return f"{self.kind} {self.switch_id}{target}"


@dataclass
class RepairResult:
    """Outcome + audit trail of repairing one incident."""

    outcome: RepairOutcome
    actions: List[RepairAction] = field(default_factory=list)
    probes_sent: int = 0

    @property
    def fixed(self) -> bool:
        """Convenience mirror of ``outcome.fixed``."""
        return self.outcome.fixed

    def __str__(self) -> str:
        steps = "; ".join(str(a) for a in self.actions) or "(none)"
        return f"repair {self.outcome.value} after [{steps}]"


class RepairEngine:
    """Close the loop: detected incident -> FlowMods -> verified fix."""

    def __init__(
        self,
        controller: "Controller",
        server: VeriDPServer,
        probe: Callable[[PortRef, Header], object],
    ) -> None:
        """``probe(entry_port, header)`` must inject a packet at an edge
        port and cause the resulting tag report(s) to reach ``server`` —
        with :class:`~repro.dataplane.DataPlaneNetwork` wired to the server
        sink, ``net.inject`` is exactly that."""
        self.controller = controller
        self.server = server
        self.probe = probe

    # -- the escalation ladder ----------------------------------------------

    def repair(self, incident: Incident) -> RepairResult:
        """Run the ladder for one incident; returns the audit record."""
        result = RepairResult(outcome=RepairOutcome.UNREPAIRABLE)
        report = incident.verification.report

        if self._probe_passes(report, result):
            result.outcome = RepairOutcome.NOTHING_TO_DO
            return result

        # Step 1: targeted re-push of the rules that should have handled
        # this header on each blamed switch (the whole goto chain for
        # multi-table pipelines).
        reissued_any = False
        for switch_id in self._suspects(incident):
            for rule in self._responsible_rules(switch_id, incident):
                self.controller.reissue(switch_id, rule.rule_id)
                result.actions.append(
                    RepairAction("reissue", switch_id, rule.rule_id)
                )
                reissued_any = True
        if reissued_any and self._probe_passes(report, result):
            result.outcome = RepairOutcome.FIXED_BY_REISSUE
            return result

        # Step 2: full resync of every suspect switch.
        for switch_id in self._suspects(incident):
            self.controller.resync_switch(switch_id)
            result.actions.append(RepairAction("resync", switch_id))
        if result.actions and self._probe_passes(report, result):
            result.outcome = RepairOutcome.FIXED_BY_RESYNC
            return result

        result.outcome = RepairOutcome.UNREPAIRABLE
        return result

    # -- helpers ---------------------------------------------------------

    def _suspects(self, incident: Incident) -> List[str]:
        """Blamed switches, falling back to the reporting switch."""
        suspects = incident.blamed_switches
        if suspects:
            return suspects
        # Unlocalized failure: the reporting (exit/drop) switch is the only
        # concrete lead the server has.
        return [incident.verification.report.outport.switch]

    def _responsible_rules(
        self, switch_id: str, incident: Incident
    ) -> List[FlowRule]:
        """The logical rules that should have handled the failing packet at
        the blamed switch — the whole lookup chain across pipeline tables,
        looked up on the deviating hop's ingress."""
        from ..netmodel.rules import GotoTable

        report = incident.verification.report
        in_port = None
        if incident.localization is not None:
            for candidate in incident.localization.candidates:
                for hop in candidate.hops:
                    if hop.switch == switch_id:
                        in_port = hop.in_port
                        break
                if in_port is not None:
                    break
        table = self.controller.topo.switch(switch_id).flow_table
        chain: List[FlowRule] = []
        header = report.header
        table_id = 0
        while True:
            rule = table.lookup(header, in_port, table_id)
            if rule is None:
                break
            chain.append(rule)
            if isinstance(rule.action, GotoTable):
                sets = rule.action.effective_sets()
                if sets:
                    header = header.with_(**dict(sets))
                if rule.action.table_id <= table_id:
                    break
                table_id = rule.action.table_id
                continue
            break
        return chain

    def _probe_passes(self, report, result: RepairResult) -> bool:
        """Re-inject the failing flow and check the fresh verification.

        Probe-triggered incidents are internal to the repair transaction and
        are absorbed here rather than left in the operator's incident log.
        """
        verified_before = self.server.verifier.verified_count
        incidents_before = len(self.server.incidents)
        self.probe(report.inport, report.header)
        result.probes_sent += 1
        got_report = self.server.verifier.verified_count > verified_before
        probe_incidents = self.server.incidents[incidents_before:]
        del self.server.incidents[incidents_before:]
        # No report at all (e.g. dead switch) is itself a failure signal.
        return got_report and not probe_incidents
