"""Flow-based traffic sampling (Section 4.5).

Tagging and verifying every packet would be prohibitive, so entry switches
sample per flow: flow ``f`` has a *sampling interval* ``T_s^f``; a packet is
marked iff at least ``T_s^f`` has elapsed since the flow's last sampled
packet.

Detection-latency dimensioning (Figure 9's worst case): with ``T_a^f`` the
maximum inter-packet gap of the flow, a fault is detected at most
``T_s^f + T_a^f`` after the first faulty packet; to guarantee a detection
latency bound ``tau`` choose ``T_s^f <= tau - T_a^f``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple

__all__ = [
    "FlowSampler",
    "AlwaysSampler",
    "NeverSampler",
    "TenantSamplerMux",
    "sampling_interval_for",
    "worst_case_detection_latency",
]


def sampling_interval_for(tau: float, max_inter_arrival: float) -> float:
    """Largest ``T_s`` guaranteeing detection latency ``tau``.

    Per Section 4.5: ``T_s <= tau - T_a``.  Raises if the bound is
    unachievable (the flow's gaps alone exceed the latency budget).
    """
    if tau <= 0:
        raise ValueError(f"latency budget tau must be positive, got {tau}")
    if max_inter_arrival < 0:
        raise ValueError(f"negative inter-arrival time {max_inter_arrival}")
    interval = tau - max_inter_arrival
    if interval <= 0:
        raise ValueError(
            f"detection latency {tau} unachievable: flow inter-arrival "
            f"gap {max_inter_arrival} alone exceeds it"
        )
    return interval


def worst_case_detection_latency(sampling_interval: float, max_inter_arrival: float) -> float:
    """The Figure 9 bound: a fault surfaces within ``T_s + T_a``."""
    if sampling_interval <= 0:
        raise ValueError(f"sampling interval must be positive, got {sampling_interval}")
    if max_inter_arrival < 0:
        raise ValueError(f"negative inter-arrival time {max_inter_arrival}")
    return sampling_interval + max_inter_arrival


class FlowSampler:
    """Per-flow interval sampling state, as kept by an entry switch.

    The paper's software pipeline keys flows by TCP 5-tuple in a hash table;
    the hardware pipeline uses a bounded array with last-hit eviction.  Pass
    ``capacity`` to emulate the bounded table: when full, the least recently
    *hit* flow is evicted (its next packet then looks like a new flow and is
    sampled immediately — a mild over-sampling, never under-sampling).
    """

    def __init__(
        self,
        default_interval: float = 1.0,
        capacity: Optional[int] = None,
    ) -> None:
        if default_interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {default_interval}")
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.default_interval = default_interval
        self.capacity = capacity
        self._interval: Dict[Hashable, float] = {}
        # flow -> (last sampling instant, last hit instant)
        self._state: Dict[Hashable, Tuple[float, float]] = {}
        self.sampled_count = 0
        self.seen_count = 0

    def set_interval(self, flow_key: Hashable, interval: float) -> None:
        """Override ``T_s`` for one flow."""
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self._interval[flow_key] = interval

    def interval_of(self, flow_key: Hashable) -> float:
        """Effective ``T_s`` of a flow."""
        return self._interval.get(flow_key, self.default_interval)

    def should_sample(self, flow_key: Hashable, now: float) -> bool:
        """Algorithm of Section 4.5: mark iff ``now - t_f > T_s^f``.

        Updates the per-flow state; the first packet of a(n evicted or new)
        flow is always sampled.
        """
        self.seen_count += 1
        # Pop + reinsert on every touch: dict insertion order then *is* hit
        # recency, making eviction O(1) instead of an O(n) min-scan.
        state = self._state.pop(flow_key, None)
        if state is None:
            self._evict_if_full(now)
            self._state[flow_key] = (now, now)
            self.sampled_count += 1
            return True
        last_sampled, _ = state
        if now - last_sampled > self.interval_of(flow_key):
            self._state[flow_key] = (now, now)
            self.sampled_count += 1
            return True
        self._state[flow_key] = (last_sampled, now)
        return False

    def _evict_if_full(self, now: float) -> None:
        if self.capacity is None or len(self._state) < self.capacity:
            return
        # Evict the least recently hit flow (the hardware array policy):
        # the front of the dict, since every hit moves its key to the back.
        # Same victim the old min-scan chose whenever hit instants are
        # strictly increasing; equal-instant ties can break differently
        # (the bounded-table emulation never specified tie order).
        del self._state[next(iter(self._state))]

    @property
    def active_flows(self) -> int:
        """Flows currently tracked."""
        return len(self._state)

    @property
    def sampling_rate(self) -> float:
        """Fraction of seen packets marked so far."""
        if self.seen_count == 0:
            return 0.0
        return self.sampled_count / self.seen_count


class TenantSamplerMux:
    """Per-tenant sampling budgets: one :class:`FlowSampler` per tenant.

    Slice-aware entry switches must not let one tenant's sampling budget
    starve another's detection-latency bound, so each tenant gets its own
    sampler (own interval, own bounded flow table — eviction pressure from
    a flow-heavy tenant stays inside its slice).  ``classify`` maps a flow
    key to a tenant name (``None`` = unattributed, served by a shared
    default sampler); ``intervals`` carries per-tenant ``T_s`` overrides,
    e.g. :meth:`repro.slice.registry.SliceRegistry.sampling_intervals`.
    """

    def __init__(
        self,
        classify: Callable[[Hashable], Optional[str]],
        default_interval: float = 1.0,
        capacity: Optional[int] = None,
        intervals: Optional[Dict[str, float]] = None,
    ) -> None:
        self._classify = classify
        self.default_interval = default_interval
        self.capacity = capacity
        self._intervals = dict(intervals or {})
        self._samplers: Dict[Optional[str], FlowSampler] = {}

    def sampler_for(self, tenant: Optional[str]) -> FlowSampler:
        """The tenant's sampler, created on first use."""
        sampler = self._samplers.get(tenant)
        if sampler is None:
            interval = self._intervals.get(tenant, self.default_interval)
            sampler = FlowSampler(
                default_interval=interval, capacity=self.capacity
            )
            self._samplers[tenant] = sampler
        return sampler

    def set_interval(self, tenant: str, interval: float) -> None:
        """Retune one tenant's default ``T_s`` (existing flows included)."""
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self._intervals[tenant] = interval
        sampler = self._samplers.get(tenant)
        if sampler is not None:
            sampler.default_interval = interval

    def should_sample(self, flow_key: Hashable, now: float) -> bool:
        """Section 4.5's check, against the owning tenant's budget."""
        return self.sampler_for(self._classify(flow_key)).should_sample(
            flow_key, now
        )

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant seen/sampled/active-flow counters."""
        out: Dict[str, Dict[str, float]] = {}
        for tenant, sampler in self._samplers.items():
            out[tenant if tenant is not None else ""] = {
                "seen": sampler.seen_count,
                "sampled": sampler.sampled_count,
                "active_flows": sampler.active_flows,
                "interval": sampler.default_interval,
            }
        return out


class AlwaysSampler:
    """Mark every packet — the setting used by the accuracy experiments."""

    default_interval = 0.0

    def should_sample(self, flow_key: Hashable, now: float) -> bool:
        """Every packet is sampled."""
        return True


class NeverSampler:
    """Mark nothing — disables VeriDP (baseline for overhead comparisons)."""

    default_interval = float("inf")

    def should_sample(self, flow_key: Hashable, now: float) -> bool:
        """No packet is ever sampled."""
        return False
