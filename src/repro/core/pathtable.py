"""The path table and its construction — Sections 3.4 and 4.1 (Algorithm 2).

The *path table* is VeriDP's control-plane abstraction: it maps each pair of
edge ports ``(inport, outport)`` to the list of forwarding paths between
them, where each path carries

* ``hops``    — the sequence of ``<in_port, switch, out_port>`` hops,
* ``headers`` — the BDD of packet headers that should follow this path,
* ``tag``     — the Bloom-filter tag a correctly forwarded packet collects.

Construction (Algorithm 2) injects the all-match header set at every edge
port and recursively splits it across each switch's transfer predicates,
recording a path entry whenever the flow reaches another edge port or the
drop port ``⊥``.  Loops are cut by refusing to revisit an ingress port on
the same path (the Section 6.1 rule) plus a TTL bound.

The builder can also record *reach records* — every (header set, partial
path) that arrives at each switch during the traversal.  The incremental
updater (Section 4.4) consumes these to continue traversals from a changed
switch without rebuilding the table.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Protocol, Tuple

from ..bdd.engine import FALSE, FlatBDD
from ..bdd.headerspace import HeaderSpace
from ..netmodel.hops import Hop
from ..netmodel.predicates import (
    SwitchPredicates,
    TransferAction,
    build_all_predicates,
)
from ..netmodel.rules import DROP_PORT
from ..netmodel.topology import PortRef, Topology
from .bloom import BloomTagScheme

__all__ = [
    "PathEntry",
    "PathTable",
    "PathTableStats",
    "PairFastIndex",
    "ReachRecord",
    "PredicateProvider",
    "SnapshotProvider",
    "PathTableBuilder",
    "BUILD_STATS",
]

#: Process-wide build telemetry, exported by the obs registry
#: (``veridp_build_parallel_fallback``): counts parallel builds downgraded
#: to serial by the small-host crossover in :meth:`PathTableBuilder.build`.
BUILD_STATS = {"parallel_fallback": 0}

#: Pairs with more entries than this skip the pairwise-disjointness probe
#: (it is quadratic in the entry count); they use the exact list-order scan.
_DISJOINT_PROBE_LIMIT = 32

#: Dirty-pair log bound.  Past this the log collapses to an "everything
#: dirty" epoch bump — delta consumers then do one full resync, which for a
#: mutation burst this large is cheaper than shipping the delta anyway.
_DIRTY_LOG_CAP = 4096

#: Process-wide dirty-epoch allocator.  Epochs are unique across *all*
#: PathTable instances so a token minted against one table can never
#: accidentally validate against another (e.g. after refresh_if_dirty swaps
#: the table object out from under a delta consumer).
_DIRTY_EPOCHS = itertools.count(1)


@dataclass
class PathEntry:
    """One path of the path table: header sets + hop sequence + tag.

    ``headers`` is the set of headers *as they enter the network* that
    follow this path; ``exit_headers`` is that set's image through the
    path's rewrite chain (what the exit switch reports).  With no rewrites
    on the path the two are the same BDD, and ``rewrites`` is empty.
    """

    headers: int  # BDD node id (owned by the builder's HeaderSpace)
    hops: Tuple[Hop, ...]
    tag: int
    exit_headers: Optional[int] = None
    rewrites: Tuple[Tuple[str, int], ...] = ()
    compiled: Optional[FlatBDD] = field(default=None, repr=False, compare=False)

    def exit_header_set(self) -> int:
        """The header set an exit-switch report is matched against."""
        return self.headers if self.exit_headers is None else self.exit_headers

    def compiled_matcher(self, hs: HeaderSpace) -> FlatBDD:
        """The flat-compiled exit-header matcher, rebuilt if stale.

        Staleness is detected by comparing the matcher's source node id with
        the entry's current exit-header BDD — canonical ids make this a
        single integer compare, so in-place header mutations (the
        incremental updater's subtract/extend phases) self-heal on the next
        verification instead of needing explicit invalidation hooks.
        """
        target = self.exit_header_set()
        matcher = self.compiled
        if matcher is None or matcher.source != target:
            matcher = hs.bdd.compile_flat(target)
            self.compiled = matcher
        return matcher

    def path_length(self) -> int:
        """Number of hops (switch traversals) on the path."""
        return len(self.hops)

    def __str__(self) -> str:
        path = " -> ".join(str(hop) for hop in self.hops)
        suffix = ""
        if self.rewrites:
            suffix = " rw[" + ",".join(f"{n}={v}" for n, v in self.rewrites) + "]"
        return f"PathEntry(tag={self.tag:#06x}, {path}){suffix}"


@dataclass
class PathTableStats:
    """The Table 2 row for one built path table."""

    num_pairs: int
    num_paths: int
    avg_path_length: float
    build_time_s: float

    def __str__(self) -> str:
        return (
            f"{self.num_pairs} entries, {self.num_paths} paths, "
            f"avg len {self.avg_path_length:.2f}, built in {self.build_time_s:.2f}s"
        )


@dataclass
class ReachRecord:
    """A (header set, partial path) pair that arrived at a switch.

    ``in_port`` is the local ingress port at the recorded switch; ``hops``
    is the path taken so far (not including any hop of this switch); ``tag``
    is the tag accumulated over ``hops``.
    """

    inport: PortRef
    switch: str
    in_port: int
    headers: int
    hops: Tuple[Hop, ...]
    tag: int


class PredicateProvider(Protocol):
    """Anything that can answer "where do headers go at this switch?".

    ``transfer_map(switch, x)`` returns ``{out_port: header_bdd}`` covering
    the full header space (``DROP_PORT`` included), exactly like
    :meth:`repro.netmodel.predicates.SwitchPredicates.transfer_map`.
    """

    def transfer_map(self, switch_id: str, in_port: int) -> Dict[int, int]:
        """Per-output-port transfer predicates for packets entering at ``in_port``."""
        ...


class SnapshotProvider:
    """Default provider: transfer predicates snapshotted from the flow tables."""

    def __init__(self, topo: Topology, hs: HeaderSpace) -> None:
        self._preds: Dict[str, SwitchPredicates] = build_all_predicates(topo, hs)
        self._action_cache: Dict[Tuple[str, int], List[TransferAction]] = {}

    def transfer_map(self, switch_id: str, in_port: int) -> Dict[int, int]:
        """Delegate to the per-switch snapshot."""
        return self._preds[switch_id].transfer_map(in_port)

    def transfer_actions(self, switch_id: str, in_port: int) -> List[TransferAction]:
        """Rewrite-aware transfer slices (cached per ingress)."""
        key = (switch_id, in_port)
        cached = self._action_cache.get(key)
        if cached is None:
            cached = self._preds[switch_id].transfer_actions(in_port)
            self._action_cache[key] = cached
        return cached

    def refresh(self, topo: Topology, hs: HeaderSpace) -> None:
        """Re-snapshot after flow-table changes."""
        self._preds = build_all_predicates(topo, hs)
        self._action_cache = {}


class PairFastIndex:
    """Verification acceleration state for one (inport, outport) pair.

    ``entries`` is a snapshot tuple of the pair's path entries (table
    order); ``by_tag`` maps each tag to the entry positions carrying it, so
    the common PASS case starts from the (usually single) candidate whose
    tag already matches the report; ``disjoint`` records whether the
    entries' exit-header sets are pairwise disjoint — only then is
    tag-first ordering provably verdict-identical to the list-order scan
    (at most one entry can contain any given header), otherwise the
    verifier falls back to scanning ``entries`` in order.
    """

    __slots__ = ("entries", "by_tag", "disjoint")

    def __init__(
        self,
        entries: Tuple[PathEntry, ...],
        by_tag: Dict[int, Tuple[int, ...]],
        disjoint: bool,
    ) -> None:
        self.entries = entries
        self.by_tag = by_tag
        self.disjoint = disjoint


def _build_pair_index(
    entries: Tuple[PathEntry, ...], hs: HeaderSpace
) -> PairFastIndex:
    buckets: Dict[int, List[int]] = {}
    for pos, entry in enumerate(entries):
        buckets.setdefault(entry.tag, []).append(pos)
        entry.compiled_matcher(hs)  # precompile while we are off the hot path
    disjoint = False
    if len(entries) <= _DISJOINT_PROBE_LIMIT:
        disjoint = True
        bdd = hs.bdd
        sets = [entry.exit_header_set() for entry in entries]
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                if bdd.and_(sets[i], sets[j]) != FALSE:
                    disjoint = False
                    break
            if not disjoint:
                break
    by_tag = {tag: tuple(positions) for tag, positions in buckets.items()}
    return PairFastIndex(entries, by_tag, disjoint)


class PathTable:
    """The verification index: ``(inport, outport) -> [PathEntry]``.

    ``version`` counts structural mutations; consumers holding derived state
    (the per-pair fast indexes kept here, the verifier's flow cache) compare
    it to decide whether their snapshots are still valid.  Code that mutates
    entries *in place* (the incremental updater) must call :meth:`touch`.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[PortRef, PortRef], List[PathEntry]] = {}
        self.build_time_s: float = 0.0
        self.build_workers: int = 1
        self.version: int = 0
        self._fast_cache: Dict[Tuple[PortRef, PortRef], PairFastIndex] = {}
        self._fast_version: int = -1
        self._fast_token: Optional[Tuple[int, int]] = None
        # Vector-kernel cache (core.vector): per-pair compiled kernels plus
        # the assembled batch kernel, both invalidated through the same
        # dirty-pair journal as the fast indexes.
        self._vector_cache: Dict[Tuple[PortRef, PortRef], object] = {}
        self._vector_version: int = -1
        self._vector_token: Optional[Tuple[int, int]] = None
        self._vector_kernel: Optional[object] = None
        self.vector_kernel_compiles: int = 0
        self._stats_cache: Optional[Tuple[Tuple[int, float], PathTableStats]] = None
        # Dirty-pair journal: every structural/in-place mutation notes the
        # affected (inport, outport) pair so delta consumers (fast-index
        # cache, sharded-daemon replica resync) can update just those pairs
        # instead of recompiling the whole table.
        self._dirty_log: List[Tuple[PortRef, PortRef]] = []
        self._dirty_epoch: int = next(_DIRTY_EPOCHS)

    def add(self, inport: PortRef, outport: PortRef, entry: PathEntry) -> None:
        """Append a path for an (inport, outport) pair."""
        self._entries.setdefault((inport, outport), []).append(entry)
        self.note_dirty(inport, outport)
        self.version += 1

    def touch(self, tracked: bool = False) -> None:
        """Record an out-of-band mutation (in-place entry edits).

        ``tracked=True`` promises every mutated pair was already reported
        via :meth:`note_dirty`; otherwise the whole table is conservatively
        marked dirty (legacy callers that edit entries directly).
        """
        self.version += 1
        if not tracked:
            self._mark_all_dirty()

    # -- dirty-pair journal (table deltas) -----------------------------------

    def note_dirty(self, inport: PortRef, outport: PortRef) -> None:
        """Report that the pair's entry list (or an entry in it) changed."""
        log = self._dirty_log
        log.append((inport, outport))
        if len(log) > _DIRTY_LOG_CAP:
            self._mark_all_dirty()

    def _mark_all_dirty(self) -> None:
        self._dirty_epoch = next(_DIRTY_EPOCHS)
        self._dirty_log.clear()

    def dirty_token(self) -> Tuple[int, int]:
        """Opaque cursor over the dirty journal, positioned at "now"."""
        return (self._dirty_epoch, len(self._dirty_log))

    def dirty_since(
        self, token: Optional[Tuple[int, int]]
    ) -> Tuple[Tuple[int, int], Optional[List[Tuple[PortRef, PortRef]]]]:
        """Pairs mutated since ``token`` plus a fresh cursor.

        Returns ``(new_token, pairs)`` where ``pairs`` is ``None`` when the
        journal overflowed (or the caller never synced): everything must be
        treated as dirty.  Pairs are deduplicated, first-mutation order.
        """
        current = (self._dirty_epoch, len(self._dirty_log))
        if token is None or token[0] != self._dirty_epoch:
            return current, None
        return current, list(dict.fromkeys(self._dirty_log[token[1] :]))

    def replace_pair(
        self, inport: PortRef, outport: PortRef, entries: List[PathEntry]
    ) -> bool:
        """Swap one pair's entry list wholesale; returns True if it changed.

        The tenant views (:mod:`repro.slice.views`) resync a dirty pair by
        re-slicing the shared table's entries and replacing their private
        copy in one step.  An empty ``entries`` removes the pair.  A
        replacement that would be a no-op (same headers/hops/tags in the
        same order) is skipped entirely, so the view's *own* dirty journal
        and version only move when its slice really changed.
        """
        key = (inport, outport)
        current = self._entries.get(key)
        if not entries:
            if current is None:
                return False
            del self._entries[key]
        else:
            if current is not None and len(current) == len(entries):
                if all(
                    old.headers == new.headers
                    and old.hops == new.hops
                    and old.tag == new.tag
                    and old.exit_headers == new.exit_headers
                    for old, new in zip(current, entries)
                ):
                    return False
            self._entries[key] = list(entries)
        self.note_dirty(inport, outport)
        self.version += 1
        return True

    def lookup(self, inport: PortRef, outport: PortRef) -> Tuple[PathEntry, ...]:
        """All paths for the pair (empty tuple if the pair is unknown).

        Returns an immutable snapshot: the table's internal lists must only
        change through :meth:`add`/:meth:`remove_empty` so the version
        counter stays truthful.
        """
        entries = self._entries.get((inport, outport))
        if entries is None:
            return ()
        return tuple(entries)

    def fast_index(
        self, inport: PortRef, outport: PortRef, hs: HeaderSpace
    ) -> Optional[PairFastIndex]:
        """The pair's :class:`PairFastIndex`, or ``None`` for unknown pairs.

        Indexes are built lazily per pair.  When the table version moves the
        dirty-pair journal says exactly which pairs changed, so only those
        indexes are dropped; a journal overflow (or untracked mutation)
        falls back to dropping everything.  Either way stale membership is
        impossible.
        """
        if self._fast_version != self.version:
            token, dirty = self.dirty_since(self._fast_token)
            if dirty is None:
                self._fast_cache.clear()
            else:
                for dirty_key in dirty:
                    self._fast_cache.pop(dirty_key, None)
            self._fast_token = token
            self._fast_version = self.version
        key = (inport, outport)
        index = self._fast_cache.get(key)
        if index is None:
            entries = self._entries.get(key)
            if entries is None:
                return None
            index = _build_pair_index(tuple(entries), hs)
            self._fast_cache[key] = index
        return index

    def vector_kernel(self, hs: HeaderSpace):
        """The table compiled for batch verification (``core.vector``).

        Returns a :class:`~repro.core.vector.TableKernel` or ``None`` when
        the vector path is unavailable (no numpy, unsupported layout).
        Mirrors :meth:`fast_index`'s journal sync: when the table version
        moves, only the dirty pairs' compiled kernels are dropped, so a
        delta resync recompiles just the touched pair kernels (counted on
        ``vector_kernel_compiles``); the cheap assembly concatenation is
        redone either way.
        """
        from .vector import build_table_kernel

        if self._vector_version != self.version:
            token, dirty = self.dirty_since(self._vector_token)
            if dirty is None:
                self._vector_cache.clear()
            else:
                for dirty_key in dirty:
                    self._vector_cache.pop(dirty_key, None)
            self._vector_token = token
            self._vector_version = self.version
            self._vector_kernel = None
        if self._vector_kernel is None:
            self._vector_kernel = build_table_kernel(self, hs, self._vector_cache)
        return self._vector_kernel

    def compile_matchers(self, hs: HeaderSpace) -> int:
        """Eagerly build every pair's fast index (and compiled matchers).

        Called at path-table build/refresh time so the first report after a
        rebuild does not pay the compilation cost; returns the number of
        path entries compiled.
        """
        compiled = 0
        for inport, outport in list(self._entries):
            index = self.fast_index(inport, outport, hs)
            if index is not None:
                compiled += len(index.entries)
        return compiled

    def pairs(self) -> List[Tuple[PortRef, PortRef]]:
        """Every indexed (inport, outport) pair."""
        return list(self._entries)

    def all_entries(self) -> Iterator[Tuple[PortRef, PortRef, PathEntry]]:
        """Iterate (inport, outport, entry) over the whole table."""
        for (inport, outport), entries in self._entries.items():
            for entry in entries:
                yield inport, outport, entry

    def remove_empty(self, hs: HeaderSpace) -> int:
        """Drop entries whose header set became empty; returns removals."""
        removed = 0
        for key in list(self._entries):
            entries = [e for e in self._entries[key] if e.headers != hs.empty]
            dropped = len(self._entries[key]) - len(entries)
            if dropped:
                removed += dropped
                self.note_dirty(*key)
            if entries:
                self._entries[key] = entries
            else:
                del self._entries[key]
        if removed:
            self.version += 1
        return removed

    def num_paths(self) -> int:
        """Total number of paths across all pairs."""
        return sum(len(entries) for entries in self._entries.values())

    def paths_per_pair(self) -> List[int]:
        """Path counts per (inport, outport) pair — the Figure 6 data."""
        return [len(entries) for entries in self._entries.values()]

    def stats(self) -> PathTableStats:
        """The Table 2 row for this table.

        Memoized per (version, build time): metrics callbacks scrape this on
        every /metrics hit, and without the memo each scrape re-walked every
        entry of the table.
        """
        cache_key = (self.version, self.build_time_s)
        cached = self._stats_cache
        if cached is not None and cached[0] == cache_key:
            return cached[1]
        num_paths = self.num_paths()
        total_hops = sum(
            entry.path_length() for _, _, entry in self.all_entries()
        )
        result = PathTableStats(
            num_pairs=len(self._entries),
            num_paths=num_paths,
            avg_path_length=(total_hops / num_paths) if num_paths else 0.0,
            build_time_s=self.build_time_s,
        )
        self._stats_cache = (cache_key, result)
        return result

    def __len__(self) -> int:
        return len(self._entries)

    def dump(
        self,
        hs: Optional[HeaderSpace] = None,
        limit: Optional[int] = None,
    ) -> str:
        """Human-readable rendering of the table (debugging/operator view).

        With a :class:`HeaderSpace`, each entry also shows one sample header
        from its set.  ``limit`` caps the number of printed entries.
        """
        lines = [f"path table: {self.stats()}"]
        printed = 0
        for inport, outport in sorted(self._entries):
            for entry in self._entries[(inport, outport)]:
                if limit is not None and printed >= limit:
                    lines.append(f"  ... ({self.num_paths() - printed} more)")
                    return "\n".join(lines)
                sample = ""
                if hs is not None:
                    header = hs.sample_header(entry.headers)
                    if header is not None:
                        from ..netmodel.packet import Header

                        sample = f"  e.g. {Header(**header)}"
                lines.append(f"  {inport} -> {outport}: {entry}{sample}")
                printed += 1
        return "\n".join(lines)


def _partition_worker(
    builder: "PathTableBuilder",
    ports: List[PortRef],
    indices: List[int],
    base: int,
    conn,
) -> None:
    """Forked child of :meth:`PathTableBuilder._build_parallel`.

    Builds the assigned entry ports' partition against the inherited BDD
    manager (every node it allocates lands at id >= ``base``) and ships back
    plain tuples: per-port path entries, per-port reach records, and the
    private node-table suffix.  ``PathEntry.compiled`` matchers are never
    shipped — the parent recompiles lazily against merged ids.
    """
    try:
        results = []
        for idx in indices:
            table = PathTable()
            builder.reach_index = {}
            builder._traverse_from(table, ports[idx])
            entries = [
                (
                    outport,
                    entry.headers,
                    entry.hops,
                    entry.tag,
                    entry.exit_headers,
                    entry.rewrites,
                )
                for (_inport, outport), port_entries in table._entries.items()
                for entry in port_entries
            ]
            reach = [
                (record.switch, record.in_port, record.headers, record.hops, record.tag)
                for records in builder.reach_index.values()
                for record in records
            ]
            results.append((idx, entries, reach))
        conn.send((results, builder.hs.bdd.export_nodes_since(base), None))
    except BaseException as exc:  # ship the failure; parent falls back serial
        try:
            conn.send((None, None, repr(exc)))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


class PathTableBuilder:
    """Algorithm 2: exhaustive symbolic traversal from every edge port."""

    def __init__(
        self,
        topo: Topology,
        hs: HeaderSpace,
        scheme: Optional[BloomTagScheme] = None,
        provider: Optional[PredicateProvider] = None,
        max_path_length: Optional[int] = None,
        record_reach: bool = False,
        entry_ports: Optional[List[PortRef]] = None,
    ) -> None:
        self.topo = topo
        self.hs = hs
        self.scheme = scheme or BloomTagScheme()
        self.provider = provider or SnapshotProvider(topo, hs)
        self.max_path_length = max_path_length or topo.diameter_bound()
        self.record_reach = record_reach
        self.reach_index: Dict[str, List[ReachRecord]] = {}
        self._entry_ports = entry_ports

    def entry_ports(self) -> List[PortRef]:
        """Ports from which header sets are injected (all edge ports)."""
        if self._entry_ports is not None:
            return list(self._entry_ports)
        return self.topo.edge_ports()

    def build(self, workers: Optional[int] = None) -> PathTable:
        """Run the traversal from every entry port and assemble the table.

        ``workers > 1`` partitions the entry ports across a fork-based
        ``multiprocessing`` pool (see :meth:`_build_parallel`); ``None``
        reads ``REPRO_BUILD_WORKERS`` (``0`` = one per CPU) and defaults to
        serial.  ``REPRO_SERIAL_BUILD=1`` force-disables the pool, as do
        platforms without the fork start method — the result is identical
        either way (asserted by fingerprint-parity tests), only wall-clock
        differs.

        Hosts with fewer CPUs than ``REPRO_BUILD_MIN_CPUS`` (default 2)
        never fork: process setup plus node-table merge costs more than the
        traversal saves when the workers just time-slice one core
        (BENCH_build.json measured a 0.466x "speedup" on 1 CPU).  Each such
        downgrade increments ``BUILD_STATS["parallel_fallback"]``, exported
        as ``veridp_build_parallel_fallback``.
        """
        resolved = self._resolve_workers(workers)
        if resolved > 1 and self._below_parallel_crossover():
            BUILD_STATS["parallel_fallback"] += 1
            resolved = 1
        if resolved > 1:
            table = self._build_parallel(resolved)
            if table is not None:
                return table
        return self._build_serial()

    @staticmethod
    def _below_parallel_crossover() -> bool:
        """True when this host has too few CPUs for a fork-based build."""
        try:
            min_cpus = int(os.environ.get("REPRO_BUILD_MIN_CPUS", "").strip() or 2)
        except ValueError:
            min_cpus = 2
        try:
            cpus = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            cpus = os.cpu_count() or 1
        return cpus < min_cpus

    @staticmethod
    def _resolve_workers(workers: Optional[int]) -> int:
        if os.environ.get("REPRO_SERIAL_BUILD") == "1":
            return 1
        if workers is None:
            raw = os.environ.get("REPRO_BUILD_WORKERS", "").strip()
            if not raw:
                return 1
            workers = int(raw)
        if workers == 0:  # auto: one worker per usable CPU
            try:
                workers = len(os.sched_getaffinity(0))
            except (AttributeError, OSError):
                workers = os.cpu_count() or 1
        return max(1, workers)

    def _build_serial(self) -> PathTable:
        table = PathTable()
        self.reach_index = {}
        started = time.perf_counter()
        for inport in self.entry_ports():
            self._traverse_from(table, inport)
        table.build_time_s = time.perf_counter() - started
        return table

    def _traverse_from(self, table: PathTable, inport: PortRef) -> None:
        """Inject the all-match set at one entry port and traverse."""
        self._traverse(
            table,
            inport=inport,
            current=inport,
            headers=self.hs.all_match,
            transformed=self.hs.all_match,
            chain=(),
            hops=(),
            tag=self.scheme.empty_tag,
            visited=frozenset(),
        )

    def _build_parallel(self, workers: int) -> Optional[PathTable]:
        """Partitioned build: entry ports striped across forked workers.

        Each worker inherits the parent's BDD node table (copy-on-write via
        fork), builds its ports' paths in its private suffix, and ships back
        ``export_nodes_since(base)`` plus plain-tuple path entries and reach
        records.  The parent grafts each suffix with
        :meth:`BDD.import_nodes` — identity below ``base``, hash-consed
        remap above it, so duplicate functions from different workers
        collapse to one node — then reassembles entries in entry-port order,
        making the result deterministic and id-compatible with serial.

        Returns ``None`` (caller falls back to serial) if fork is
        unavailable or any worker fails.
        """
        ports = self.entry_ports()
        workers = min(workers, len(ports))
        if workers <= 1:
            return None
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            return None
        started = time.perf_counter()
        base = self.hs.bdd.num_nodes()
        procs: List = []
        conns: List = []
        for w in range(workers):
            indices = list(range(w, len(ports), workers))
            recv, send = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_partition_worker,
                args=(self, ports, indices, base, send),
                daemon=True,
            )
            proc.start()
            send.close()
            procs.append(proc)
            conns.append(recv)
        payloads = []
        failed = False
        for recv, proc in zip(conns, procs):
            try:
                payload = recv.recv()
            except (EOFError, OSError):
                payload = (None, None, "worker pipe closed")
            finally:
                recv.close()
            proc.join()
            if payload[2] is not None or proc.exitcode != 0:
                failed = True
            else:
                payloads.append(payload)
        if failed:
            return None
        # Graft each worker's node suffix; remap shipped ids through it.
        # Identity below base, hash-consed merge above, so functions built
        # by two workers independently land on one canonical node.
        bdd = self.hs.bdd
        per_port_entries: List[Optional[List[Tuple]]] = [None] * len(ports)
        per_port_reach: List[Optional[List[Tuple]]] = [None] * len(ports)
        for results, nodes, _err in payloads:
            remap = bdd.import_nodes(base, *nodes)

            def local(node: int) -> int:
                return node if node < base else remap[node - base]

            for idx, entries, reach in results:
                per_port_entries[idx] = [
                    (
                        outport,
                        local(headers),
                        hops,
                        tag,
                        None if exit_headers is None else local(exit_headers),
                        rewrites,
                    )
                    for outport, headers, hops, tag, exit_headers, rewrites in entries
                ]
                per_port_reach[idx] = [
                    (switch, in_port, local(headers), hops, tag)
                    for switch, in_port, headers, hops, tag in reach
                ]
        # Reassemble in entry-port order: entry insertion order (and reach
        # record order per switch) comes out identical to a serial build.
        table = PathTable()
        self.reach_index = {}
        for idx, inport in enumerate(ports):
            entries = per_port_entries[idx]
            if entries is None:  # a worker silently skipped a port
                return None
            for outport, headers, hops, tag, exit_headers, rewrites in entries:
                table.add(
                    inport,
                    outport,
                    PathEntry(
                        headers=headers,
                        hops=hops,
                        tag=tag,
                        exit_headers=exit_headers,
                        rewrites=rewrites,
                    ),
                )
            if self.record_reach:
                for switch, in_port, headers, hops, tag in per_port_reach[idx]:
                    self.reach_index.setdefault(switch, []).append(
                        ReachRecord(
                            inport=inport,
                            switch=switch,
                            in_port=in_port,
                            headers=headers,
                            hops=hops,
                            tag=tag,
                        )
                    )
        table.build_time_s = time.perf_counter() - started
        table.build_workers = workers
        return table

    def _actions_at(self, switch_id: str, in_port: int) -> List[TransferAction]:
        """Transfer slices for one ingress, from whichever API the provider has."""
        getter = getattr(self.provider, "transfer_actions", None)
        if getter is not None:
            return getter(switch_id, in_port)
        transfer = self.provider.transfer_map(switch_id, in_port)
        return [
            TransferAction(out_port, transfer[out_port], ())
            for out_port in sorted(transfer)
        ]

    # -- Algorithm 2 (with the header-rewrite extension) ---------------------

    def _traverse(
        self,
        table: PathTable,
        inport: PortRef,
        current: PortRef,
        headers: int,
        transformed: int,
        chain: Tuple[Tuple[str, int], ...],
        hops: Tuple[Hop, ...],
        tag: int,
        visited: frozenset,
    ) -> None:
        """One recursive step: split the header set across the current switch.

        ``headers`` is the entry-relative set; ``transformed`` its image
        through the rewrite ``chain`` accumulated so far — the invariant
        ``transformed == image(headers, chain)`` is maintained using
        ``image(A ∩ t⁻¹(B)) == image(A) ∩ B``.
        """
        if current in visited:
            return  # loop cut (Section 6.1): port revisited on this path
        if len(hops) >= self.max_path_length:
            return  # TTL bound: longer paths cannot be verified anyway
        if self.record_reach:
            self.reach_index.setdefault(current.switch, []).append(
                ReachRecord(
                    inport=inport,
                    switch=current.switch,
                    in_port=current.port,
                    headers=headers,
                    hops=hops,
                    tag=tag,
                )
            )
        visited = visited | {current}
        bdd = self.hs.bdd
        for action in self._actions_at(current.switch, current.port):
            t_next = bdd.and_(transformed, action.pred)
            if t_next == self.hs.empty:
                continue
            if chain:
                h_next = bdd.and_(
                    headers, self.hs.preimage_sets(action.pred, chain)
                )
            else:
                h_next = t_next
            if action.rewrites:
                t_next = self.hs.apply_sets(t_next, action.rewrites)
                chain_next = chain + tuple(action.rewrites)
            else:
                chain_next = chain
            hop = Hop(current.port, current.switch, action.out_port)
            hops_next = hops + (hop,)
            tag_next = self.scheme.add(tag, hop)
            egress = PortRef(current.switch, action.out_port)
            peer = (
                None
                if action.out_port == DROP_PORT
                else self.topo.link(egress)
            )
            terminal = (
                action.out_port == DROP_PORT
                or self.topo.is_edge_port(egress)
                or peer is None  # defensive: unwired non-edge port
            )
            if terminal:
                self._add_entry(
                    table, inport, egress, h_next, t_next, chain_next,
                    hops_next, tag_next,
                )
                continue
            self._traverse(
                table, inport, peer, h_next, t_next, chain_next,
                hops_next, tag_next, visited,
            )

    def _add_entry(
        self,
        table: PathTable,
        inport: PortRef,
        egress: PortRef,
        headers: int,
        transformed: int,
        chain: Tuple[Tuple[str, int], ...],
        hops: Tuple[Hop, ...],
        tag: int,
    ) -> None:
        table.add(
            inport,
            egress,
            PathEntry(
                headers=headers,
                hops=hops,
                tag=tag,
                exit_headers=transformed if chain else None,
                rewrites=chain,
            ),
        )

    # -- control-plane path query (used by the localizer) --------------------

    def expected_path(self, entry: PortRef, header: Dict[str, int]) -> List[Hop]:
        """``GetPath(inport, header)``: the concrete path the control plane
        prescribes for one header injected at ``entry``.

        Walks transfer actions picking the slice containing the current
        header (applying any rewrites to it along the way), until an edge
        port, ``⊥``, a revisited port, or the TTL bound.
        """
        hops: List[Hop] = []
        current = entry
        visited = set()
        live_header = dict(header)
        while len(hops) < self.max_path_length and current not in visited:
            visited.add(current)
            chosen: Optional[TransferAction] = None
            for action in self._actions_at(current.switch, current.port):
                if self.hs.contains(action.pred, live_header):
                    chosen = action
                    break
            if chosen is None:  # defensive: transfer slices partition space
                break
            if chosen.rewrites:
                live_header = self.hs.rewrite_header(live_header, chosen.rewrites)
            hops.append(Hop(current.port, current.switch, chosen.out_port))
            egress = PortRef(current.switch, chosen.out_port)
            if chosen.out_port == DROP_PORT or self.topo.is_edge_port(egress):
                break
            peer = self.topo.link(egress)
            if peer is None:
                break
            current = peer
        return hops
