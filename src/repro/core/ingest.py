"""Frame-native ingestion helpers: socket drain loops and batch screens.

The per-datagram ingest path (one ``recvfrom``, one ``payload_precheck``,
one queue ``put`` per 27-byte report) bounds end-to-end reports/s by Python
overhead, not verification.  This module supplies the shared pieces of the
batched fast path:

* :class:`FrameBuffer` — a preallocated contiguous receive buffer that
  accumulates exact-size datagrams into one frame with zero per-report
  allocations (each receive slot is one byte larger than a report so a
  kernel-truncated oversize datagram is *detected*, not silently eaten),
* :func:`drain_socket` — the non-blocking opportunistic drain loop used by
  :class:`~repro.core.daemon.UdpReportListener` and the cluster frontend's
  ingest engines after their one blocking wakeup,
* :func:`screen_frame` — the vectorized equivalent of running
  :func:`~repro.core.reports.payload_precheck` over every row of a frame,
* column extractors (:func:`pair_keys`, :func:`dst_ips`,
  :func:`frame_columns`) and :func:`shard_split` — batch field access used
  for shard routing and tenant LPM attribution.

Everything degrades to a scalar loop when numpy is unavailable; results are
bit-identical either way (the hypothesis parity suite pins this).
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional, Tuple

from .reports import REPORT_SIZE, REPORT_VERSION, payload_precheck

try:  # pragma: no cover - exercised via both branches in CI matrices
    import numpy as np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = [
    "DEFAULT_INGEST_BATCH",
    "FrameBuffer",
    "drain_socket",
    "screen_frame",
    "frame_columns",
    "pair_keys",
    "dst_ips",
    "shard_split",
    "HAVE_NUMPY",
]

#: Default maximum datagrams drained per socket wakeup.  Large enough to
#: amortise the per-wakeup costs (version screen, queue handoff) well past
#: the point of diminishing returns, small enough that one drain never
#: holds the socket for a latency-visible stretch.
DEFAULT_INGEST_BATCH = 128

#: Knuth multiplicative hash constant — must match the scalar
#: ``ShardedVeriDPDaemon._shard_of`` exactly (parity-tested).
_HASH_MULT = 2654435761


class FrameBuffer:
    """Preallocated receive buffer assembling exact-size datagrams into a frame.

    Each receive slot is ``REPORT_SIZE + 1`` bytes: a well-formed report
    fills exactly ``REPORT_SIZE`` of them, while any longer datagram is
    truncated by the kernel to ``REPORT_SIZE + 1`` — so ``nbytes`` alone
    distinguishes valid / undersized / oversized without a second syscall.
    Slots overlap by one byte; the spillover byte of slot *i* is the first
    byte of slot *i+1* and is only ever observed before that slot commits.
    """

    __slots__ = ("capacity", "rows", "_buf", "_mv")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.rows = 0
        self._buf = bytearray(capacity * REPORT_SIZE + 1)
        self._mv = memoryview(self._buf)

    @property
    def full(self) -> bool:
        return self.rows >= self.capacity

    def slot(self) -> memoryview:
        """The next receive slot (``REPORT_SIZE + 1`` bytes)."""
        off = self.rows * REPORT_SIZE
        return self._mv[off : off + REPORT_SIZE + 1]

    def commit(self) -> None:
        """Accept the current slot's first ``REPORT_SIZE`` bytes as a row."""
        self.rows += 1

    def slot_bytes(self, nbytes: int) -> bytes:
        """Copy out the current (uncommitted) slot's first ``nbytes`` bytes."""
        off = self.rows * REPORT_SIZE
        return bytes(self._mv[off : off + nbytes])

    def take(self) -> bytes:
        """Return the accumulated frame bytes and reset for the next drain."""
        frame = bytes(self._mv[: self.rows * REPORT_SIZE])
        self.rows = 0
        return frame


def drain_socket(
    sock: socket.socket,
    fb: FrameBuffer,
    limit: Optional[int] = None,
) -> Tuple[int, List[Tuple[bytes, int]]]:
    """Non-blocking drain of pending datagrams into ``fb``.

    The socket must be in non-blocking mode.  Returns ``(datagrams,
    oddballs)`` where ``oddballs`` lists every datagram whose size was not
    exactly ``REPORT_SIZE`` as ``(payload_bytes, nbytes)`` — ``nbytes ==
    REPORT_SIZE + 1`` flags an oversize datagram the kernel truncated.
    Stops at the buffer capacity, the optional ``limit``, or an empty
    socket queue, whichever comes first.
    """
    count = 0
    odd: List[Tuple[bytes, int]] = []
    while not fb.full and (limit is None or count < limit):
        try:
            nbytes = sock.recv_into(fb.slot())
        except OSError:
            # Empty queue (EWOULDBLOCK), a signal, or a real socket fault:
            # either way the drain ends and the caller's next *blocking*
            # receive surfaces any persistent error through its own
            # recovery path.
            break
        count += 1
        if nbytes == REPORT_SIZE:
            fb.commit()
        else:
            odd.append((fb.slot_bytes(nbytes), nbytes))
    return count, odd


# ---------------------------------------------------------------------------
# vectorized frame screens and column extraction
# ---------------------------------------------------------------------------


def _rows_view(payload: bytes) -> "np.ndarray":
    """``(n, REPORT_SIZE)`` uint8 view over a frame's bytes (no copy)."""
    return np.frombuffer(payload, dtype=np.uint8).reshape(-1, REPORT_SIZE)


def _check_frame_len(payload: bytes) -> int:
    nrows, rem = divmod(len(payload), REPORT_SIZE)
    if rem:
        raise ValueError(
            f"frame length {len(payload)} is not a multiple of {REPORT_SIZE}"
        )
    return nrows


def screen_frame(payload: bytes) -> Tuple[bytes, List[Tuple[bytes, str]]]:
    """Batch ``payload_precheck`` over every row of a frame.

    Returns ``(clean_frame, rejected)`` where ``clean_frame`` holds the
    rows that pass the screen (in order) and ``rejected`` lists each bad
    row as ``(payload, reason)`` with the *same reason string* the scalar
    :func:`~repro.core.reports.payload_precheck` produces.  Rows are
    ``REPORT_SIZE`` bytes by construction, so only the version byte can
    disqualify one here.
    """
    nrows = _check_frame_len(payload)
    if nrows == 0:
        return b"", []
    if HAVE_NUMPY:
        raw = _rows_view(payload)
        ok = raw[:, 0] == REPORT_VERSION
        if ok.all():
            return (payload if isinstance(payload, bytes) else bytes(payload)), []
        rejected = [
            (
                bytes(raw[i]),
                f"unsupported report version {int(raw[i, 0])}",
            )
            for i in (~ok).nonzero()[0]
        ]
        return raw[ok].tobytes(), rejected
    clean: List[bytes] = []
    rejected = []
    for i in range(nrows):
        row = bytes(payload[i * REPORT_SIZE : (i + 1) * REPORT_SIZE])
        reason = payload_precheck(row)
        if reason is None:
            clean.append(row)
        else:
            rejected.append((row, reason))
    if not rejected:
        return (payload if isinstance(payload, bytes) else bytes(payload)), []
    return b"".join(clean), rejected


def frame_columns(payload: bytes) -> Dict[str, "np.ndarray"]:
    """Every wire field of every row as a numpy column (requires numpy).

    Keys mirror the ``pack_report`` layout: ``version``, ``flags``,
    ``inport``, ``outport``, ``tag``, ``src_ip``, ``dst_ip``, ``proto``,
    ``src_port``, ``dst_port`` — all native-order arrays of per-row values.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("frame_columns requires numpy")
    _check_frame_len(payload)
    raw = _rows_view(payload)
    return {
        "version": raw[:, 0].copy(),
        "flags": raw[:, 1].copy(),
        "inport": raw[:, 2:4].copy().view(">u2").ravel(),
        "outport": raw[:, 4:6].copy().view(">u2").ravel(),
        "tag": raw[:, 6:14].copy().view(">u8").ravel(),
        "src_ip": raw[:, 14:18].copy().view(">u4").ravel(),
        "dst_ip": raw[:, 18:22].copy().view(">u4").ravel(),
        "proto": raw[:, 22].copy(),
        "src_port": raw[:, 23:25].copy().view(">u2").ravel(),
        "dst_port": raw[:, 25:27].copy().view(">u2").ravel(),
    }


def pair_keys(payload: bytes) -> "np.ndarray":
    """Per-row packed ``(inport, outport)`` routing key (``payload[2:6]``)."""
    if not HAVE_NUMPY:
        raise RuntimeError("pair_keys requires numpy")
    _check_frame_len(payload)
    return _rows_view(payload)[:, 2:6].copy().view(">u4").ravel()


def dst_ips(payload: bytes) -> "np.ndarray":
    """Per-row destination IP column (for tenant LPM attribution)."""
    if not HAVE_NUMPY:
        raise RuntimeError("dst_ips requires numpy")
    _check_frame_len(payload)
    return _rows_view(payload)[:, 18:22].copy().view(">u4").ravel()


def shard_split(payload: bytes, workers: int) -> List[bytes]:
    """Partition a frame's rows across ``workers`` shards by pair key.

    Uses the same Knuth multiplicative hash as the scalar
    ``ShardedVeriDPDaemon._shard_of`` — exact in uint64 because both the
    key and the multiplier fit in 32 bits.  Returns one (possibly empty)
    sub-frame per shard; row order is preserved within a shard.
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    nrows = _check_frame_len(payload)
    if workers == 1 or nrows == 0:
        out = [b""] * workers
        if nrows:
            out[0] = payload if isinstance(payload, bytes) else bytes(payload)
        return out
    if HAVE_NUMPY:
        keys = pair_keys(payload).astype(np.uint64)
        shards = ((keys * np.uint64(_HASH_MULT)) >> np.uint64(16)) % np.uint64(
            workers
        )
        raw = _rows_view(payload)
        out = []
        for shard in range(workers):
            mask = shards == shard
            out.append(raw[mask].tobytes() if mask.any() else b"")
        return out
    buckets: List[List[bytes]] = [[] for _ in range(workers)]
    for i in range(nrows):
        row = bytes(payload[i * REPORT_SIZE : (i + 1) * REPORT_SIZE])
        key = int.from_bytes(row[2:6], "big")
        buckets[((key * _HASH_MULT) >> 16) % workers].append(row)
    return [b"".join(rows) for rows in buckets]
