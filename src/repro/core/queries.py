"""Policy queries over the path table.

The paper's Section 7 observes that raw packet trajectories "are not very
useful unless we know whether they are correct" — correctness is always
relative to a *policy*.  The path table is exactly the artifact to ask:
it enumerates every (header set, path) the configuration allows.  This
module turns the intents of Section 2.3 into decidable queries:

* **reachability** — can headers H get from port A to port B?
* **black holes** — which traffic entering at A is dropped, and where?
* **waypoint traversal** — does *all* H-traffic from A to B pass a switch
  or middlebox (Figure 2's firewall policy)?
* **isolation** — is there *no* path carrying H from A to B (ACL intent)?
* **path diversity** — over how many distinct paths does H-traffic split
  (Figure 3's TE intent)?

These are control-plane checks (what the *configuration* says, à la
HSA/VeriFlow); VeriDP's runtime tag verification then guarantees the data
plane actually obeys it.  Combining both closes the ``I = R`` and
``R = F`` halves of the paper's Figure 1 chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd.headerspace import HeaderSpace
from ..netmodel.hops import Hop
from ..netmodel.rules import DROP_PORT, Match
from ..netmodel.topology import PortRef, Topology
from .pathtable import PathEntry, PathTable

__all__ = ["QueryResult", "PolicyChecker"]


@dataclass
class QueryResult:
    """Outcome of one policy query: verdict + evidence."""

    holds: bool
    witnesses: List[Tuple[PortRef, PortRef, PathEntry]] = field(default_factory=list)
    violations: List[Tuple[PortRef, PortRef, PathEntry]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds

    def __str__(self) -> str:
        verdict = "HOLDS" if self.holds else "VIOLATED"
        return (
            f"{verdict} ({len(self.witnesses)} witnesses, "
            f"{len(self.violations)} violations)"
        )


class PolicyChecker:
    """Decide Section 2.3-style intents against a built path table."""

    def __init__(self, table: PathTable, hs: HeaderSpace, topo: Topology) -> None:
        self.table = table
        self.hs = hs
        self.topo = topo

    # -- helpers -----------------------------------------------------------

    def _headers_bdd(self, headers: Optional[Match]) -> int:
        if headers is None:
            return self.hs.all_match
        return headers.to_bdd(self.hs)

    def _entries_between(
        self, src: PortRef, dst: Optional[PortRef], headers_bdd: int
    ):
        """(inport, outport, entry) whose header set intersects the query."""
        bdd = self.hs.bdd
        for inport, outport, entry in self.table.all_entries():
            if inport != src:
                continue
            if dst is not None and outport != dst:
                continue
            if bdd.and_(entry.headers, headers_bdd) != self.hs.empty:
                yield inport, outport, entry

    def _host_port(self, endpoint: str) -> PortRef:
        """Accept a host id or a ``PortRef`` directly."""
        if isinstance(endpoint, PortRef):
            return endpoint
        return self.topo.host_port(endpoint)

    # -- queries ---------------------------------------------------------

    def reachability(
        self, src, dst, headers: Optional[Match] = None
    ) -> QueryResult:
        """Can any queried traffic get from ``src`` to ``dst``?

        Witnesses are the delivering paths.
        """
        src_port, dst_port = self._host_port(src), self._host_port(dst)
        pred = self._headers_bdd(headers)
        result = QueryResult(holds=False)
        for item in self._entries_between(src_port, dst_port, pred):
            result.witnesses.append(item)
        result.holds = bool(result.witnesses)
        return result

    def isolation(
        self, src, dst, headers: Optional[Match] = None
    ) -> QueryResult:
        """Is there *no* path carrying the queried traffic src -> dst?

        The access-control intent: violations are the paths that leak.
        """
        reach = self.reachability(src, dst, headers)
        return QueryResult(holds=not reach.holds, violations=reach.witnesses)

    def black_holes(
        self, src, headers: Optional[Match] = None
    ) -> QueryResult:
        """Which queried traffic entering at ``src`` is dropped, and where?

        ``holds`` is True when *no* queried traffic is dropped
        (black-hole-freedom); the violations list the drop paths, whose last
        hop names the dropping switch.
        """
        src_port = self._host_port(src)
        pred = self._headers_bdd(headers)
        result = QueryResult(holds=True)
        for inport, outport, entry in self._entries_between(src_port, None, pred):
            if outport.port == DROP_PORT:
                result.violations.append((inport, outport, entry))
        result.holds = not result.violations
        return result

    def waypoint(
        self,
        src,
        dst,
        via: str,
        headers: Optional[Match] = None,
    ) -> QueryResult:
        """Must *all* queried src -> dst traffic traverse switch ``via``?

        Figure 2's middlebox-chaining intent.  ``via`` is a switch id (for
        a transparent middlebox, the switch it hangs off — or pass the
        middlebox id to check the detour port itself).
        """
        src_port, dst_port = self._host_port(src), self._host_port(dst)
        pred = self._headers_bdd(headers)
        mb_port: Optional[PortRef] = None
        if via in self.topo.middleboxes():
            mb_port = self.topo.middlebox_port(via)
        result = QueryResult(holds=True)
        for item in self._entries_between(src_port, dst_port, pred):
            _, _, entry = item
            if mb_port is not None:
                traverses = any(
                    hop.switch == mb_port.switch and hop.out_port == mb_port.port
                    for hop in entry.hops
                )
            else:
                traverses = any(hop.switch == via for hop in entry.hops)
            (result.witnesses if traverses else result.violations).append(item)
        result.holds = not result.violations and bool(result.witnesses)
        return result

    def path_diversity(
        self, src, dst, headers: Optional[Match] = None
    ) -> Dict[Tuple[Hop, ...], int]:
        """Distinct hop sequences carrying the queried traffic src -> dst.

        Returns ``{hops: count_of_entries}`` — the Figure 3 TE intent is
        ``len(result) >= 2``.
        """
        src_port, dst_port = self._host_port(src), self._host_port(dst)
        pred = self._headers_bdd(headers)
        paths: Dict[Tuple[Hop, ...], int] = {}
        for _, _, entry in self._entries_between(src_port, dst_port, pred):
            paths[entry.hops] = paths.get(entry.hops, 0) + 1
        return paths

    def max_path_length(self, headers: Optional[Match] = None) -> int:
        """Longest configured path any queried traffic can take.

        Dimension the verification TTL (Algorithm 1's MAX_PATH_LENGTH)
        against this instead of the coarse topology bound.
        """
        pred = self._headers_bdd(headers)
        bdd = self.hs.bdd
        longest = 0
        for _, _, entry in self.table.all_entries():
            if bdd.and_(entry.headers, pred) != self.hs.empty:
                longest = max(longest, entry.path_length())
        return longest

    def all_pairs_reachability(
        self, headers: Optional[Match] = None
    ) -> Dict[Tuple[str, str], bool]:
        """Host-to-host reachability matrix for the queried traffic."""
        hosts = self.topo.hosts()
        matrix: Dict[Tuple[str, str], bool] = {}
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                matrix[(src, dst)] = self.reachability(src, dst, headers).holds
        return matrix
