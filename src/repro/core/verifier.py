"""Tag verification — Algorithm 3 of the paper.

On receiving a tag report ``<inport, outport, header, tag>`` the server
looks up the path list for ``(inport, outport)``, finds the path whose
header set contains the reported header, and compares tags:

* header matches a path and the tags are equal  -> **PASS**
  (by construction this has *zero false positives*: identical paths always
  produce identical tags),
* header matches a path but the tags differ     -> **FAIL (tag mismatch)** —
  the packet took a different path than configured,
* no path's header set contains the header      -> **FAIL (no path)** —
  the packet exited somewhere it should never have reached (includes drops
  of packets that should have been delivered, and vice versa),
* the ``(inport, outport)`` pair is not indexed -> **FAIL (unknown pair)** —
  a special case of "no path" kept distinct for diagnostics; TTL-expiry
  reports from forwarding loops land here.

Two implementations of the membership test coexist:

* the **slow path** (``fast_path=False``) — the paper-literal list-order
  scan with recursive ``HeaderSpace.contains``; it is the reference
  semantics every optimisation is checked against,
* the **fast path** (default) — compiled flat-array matchers
  (:class:`repro.bdd.engine.FlatBDD`), tag-first candidate ordering when
  the pair's header sets are disjoint, and a bounded per-flow cache mapping
  a report's canonical ``(inport, outport, header)`` to its matched entry.
  Verdicts are bit-identical to the slow path (property-tested).

:meth:`Verifier.verify_batch` amortises timing and result allocation over a
whole batch of reports — the per-report path pays two ``perf_counter``
calls and a dataclass allocation per report, which at microsecond-scale
verification costs is pure overhead.  With ``vector=True`` the batch is
additionally routed through the numpy kernel (:mod:`repro.core.vector`)
when it is available and worthwhile, with automatic scalar fallback (and a
counted fallback event) otherwise; verdicts, matched entries and counters
are identical either way.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd.headerspace import HeaderSpace
from .pathtable import PathEntry, PathTable
from .reports import TagReport

__all__ = [
    "Verdict",
    "VerificationResult",
    "BatchVerificationResult",
    "Verifier",
]

#: Flow-cache miss sentinel (``None`` is a valid cached value: "no path").
_MISS = object()


def _code_to_verdict():
    """Vector verdict code -> Verdict, aligned with ``vector.VPASS`` etc."""
    return (
        Verdict.PASS,
        Verdict.FAIL_TAG_MISMATCH,
        Verdict.FAIL_NO_PATH,
        Verdict.FAIL_UNKNOWN_PAIR,
    )


class Verdict(enum.Enum):
    """Outcome classes of Algorithm 3."""

    PASS = "pass"
    FAIL_TAG_MISMATCH = "fail-tag-mismatch"
    FAIL_NO_PATH = "fail-no-path"
    FAIL_UNKNOWN_PAIR = "fail-unknown-pair"

    @property
    def passed(self) -> bool:
        """True only for PASS."""
        return self is Verdict.PASS


@dataclass
class VerificationResult:
    """A verdict plus the matched path (when one exists) and timing."""

    verdict: Verdict
    report: TagReport
    matched_entry: Optional[PathEntry] = None
    expected_tag: Optional[int] = None
    elapsed_s: float = 0.0

    @property
    def passed(self) -> bool:
        """Convenience mirror of ``verdict.passed``."""
        return self.verdict.passed

    def __str__(self) -> str:
        return f"{self.verdict.value}: {self.report}"


@dataclass
class BatchVerificationResult:
    """Aggregate outcome of one :meth:`Verifier.verify_batch` call.

    ``verdicts`` is positionally aligned with the submitted reports;
    ``failures`` carries a full :class:`VerificationResult` for every
    non-PASS report (in submission order) so callers can localize and log
    without re-verifying; timing is batch-level — one clock read pair for
    the whole batch instead of two per report.
    """

    verdicts: List[Verdict]
    failures: List[VerificationResult]
    elapsed_s: float
    counts: Dict[Verdict, int]

    @property
    def reports(self) -> int:
        """Number of reports verified in this batch."""
        return len(self.verdicts)

    @property
    def passed_count(self) -> int:
        """Reports that verified clean."""
        return self.counts.get(Verdict.PASS, 0)

    @property
    def all_passed(self) -> bool:
        """True iff every report in the batch passed."""
        return self.passed_count == len(self.verdicts)

    @property
    def mean_us(self) -> float:
        """Mean per-report verification time in microseconds."""
        if not self.verdicts:
            return 0.0
        return self.elapsed_s / len(self.verdicts) * 1e6

    def __str__(self) -> str:
        return (
            f"batch of {self.reports}: {self.passed_count} passed, "
            f"{self.reports - self.passed_count} failed, "
            f"{self.mean_us:.2f} us/report"
        )


class Verifier:
    """Algorithm 3 over one path table.

    The linear scan over the pair's path list mirrors the paper's design;
    Figure 6 justifies it (few paths per pair), and our Figure 6 benchmark
    re-validates the assumption for the bundled topologies.  With
    ``fast_path`` enabled (the default) the scan runs over compiled
    flat-array matchers with tag-first ordering and a per-flow cache; the
    verdicts are identical, only the constant factor changes.
    """

    def __init__(
        self,
        table: PathTable,
        hs: HeaderSpace,
        fast_path: bool = True,
        flow_cache_size: int = 8192,
    ) -> None:
        self.table = table
        self.hs = hs
        self.fast_path = fast_path
        self.flow_cache_size = flow_cache_size
        self.counters: Dict[Verdict, int] = {v: 0 for v in Verdict}
        self.total_time_s = 0.0
        self.flow_cache_hits = 0
        self.fast_verifications = 0
        self.slow_verifications = 0
        self.vector_batches = 0
        self.vector_verifications = 0
        self.vector_fallbacks = 0
        self.vector_scalar_rows = 0
        #: Optional callable fed each vector batch's size (the obs registry
        #: hooks its batch-size histogram here).
        self.vector_batch_observer = None
        self._flow_cache: Dict[tuple, Optional[PathEntry]] = {}
        self._flow_cache_table: Optional[PathTable] = None
        self._flow_cache_version = -1

    # -- the membership test, both implementations ----------------------------

    def _match_slow(
        self, report: TagReport
    ) -> Tuple[Verdict, Optional[PathEntry]]:
        """Reference semantics: list-order scan, recursive BDD containment."""
        entries = self.table.lookup(report.inport, report.outport)
        if not entries:
            return Verdict.FAIL_UNKNOWN_PAIR, None
        header = report.header.as_dict()
        contains = self.hs.contains
        for entry in entries:
            # Reports carry the header as it *exits* (after any rewrites on
            # the path), so they are matched against the entry's exit-header
            # set — identical to ``headers`` when the path rewrites nothing.
            if contains(entry.exit_header_set(), header):
                if entry.tag == report.tag:
                    return Verdict.PASS, entry
                return Verdict.FAIL_TAG_MISMATCH, entry
        return Verdict.FAIL_NO_PATH, None

    def _match_fast(
        self, report: TagReport
    ) -> Tuple[Verdict, Optional[PathEntry]]:
        """Compiled matchers + tag-first ordering + per-flow cache."""
        table = self.table
        if (
            table is not self._flow_cache_table
            or table.version != self._flow_cache_version
        ):
            self._flow_cache.clear()
            self._flow_cache_table = table
            self._flow_cache_version = table.version
        key = (report.inport, report.outport, report.header)
        cache = self._flow_cache
        cached = cache.get(key, _MISS)
        if cached is not _MISS:
            self.flow_cache_hits += 1
            matched: Optional[PathEntry] = cached
        else:
            index = table.fast_index(report.inport, report.outport, self.hs)
            if index is None:
                return Verdict.FAIL_UNKNOWN_PAIR, None
            hs = self.hs
            value = hs.header_value(report.header.as_dict())
            entries = index.entries
            matched = None
            if index.disjoint:
                # Tag-first: with pairwise-disjoint header sets at most one
                # entry can contain the header, so probing the report-tag
                # bucket first cannot change the verdict — it only lets the
                # common PASS case finish after a dict hit + one matcher.
                positions = index.by_tag.get(report.tag)
                if positions is not None:
                    for pos in positions:
                        entry = entries[pos]
                        if entry.compiled_matcher(hs).evaluate_value(value):
                            matched = entry
                            break
                if matched is None:
                    tag = report.tag
                    for entry in entries:
                        if entry.tag != tag and entry.compiled_matcher(
                            hs
                        ).evaluate_value(value):
                            matched = entry
                            break
            else:
                for entry in entries:
                    if entry.compiled_matcher(hs).evaluate_value(value):
                        matched = entry
                        break
            if self.flow_cache_size > 0:
                if len(cache) >= self.flow_cache_size:
                    cache.pop(next(iter(cache)))  # FIFO eviction
                cache[key] = matched
        if matched is None:
            return Verdict.FAIL_NO_PATH, None
        if matched.tag == report.tag:
            return Verdict.PASS, matched
        return Verdict.FAIL_TAG_MISMATCH, matched

    def _match(self, report: TagReport) -> Tuple[Verdict, Optional[PathEntry]]:
        if self.fast_path:
            return self._match_fast(report)
        return self._match_slow(report)

    # -- public verification API ----------------------------------------------

    def verify(self, report: TagReport) -> VerificationResult:
        """Verify one tag report against the path table."""
        started = time.perf_counter()
        verdict, matched = self._match(report)
        elapsed = time.perf_counter() - started
        self.counters[verdict] += 1
        self.total_time_s += elapsed
        if self.fast_path:
            self.fast_verifications += 1
        else:
            self.slow_verifications += 1
        return VerificationResult(
            verdict=verdict,
            report=report,
            matched_entry=matched,
            expected_tag=None if matched is None else matched.tag,
            elapsed_s=elapsed,
        )

    def verify_batch(
        self, reports: Sequence[TagReport], vector: bool = False
    ) -> BatchVerificationResult:
        """Verify many reports with one clock read pair for the whole batch.

        Counters and total time accumulate exactly as under repeated
        :meth:`verify` calls, but PASS reports allocate nothing — only
        failures materialise a :class:`VerificationResult`.

        ``vector=True`` routes the batch through the numpy kernel
        (:mod:`repro.core.vector`) when possible — verdict-for-verdict
        identical to the scalar paths (oracle-tested) — and falls back to
        the scalar loop (counted on ``vector_fallbacks``) when numpy is
        missing, the batch is below the crossover size, or the table/layout
        cannot be packed.  Note the vector path bypasses the per-flow
        cache; it is opt-in here and enabled by default in the sharded
        daemon, whose dispatch batches rarely repeat flows back-to-back.
        """
        if vector:
            result = self._verify_batch_vector(reports)
            if result is not None:
                return result
            self.vector_fallbacks += 1
        match = self._match_fast if self.fast_path else self._match_slow
        counters = self.counters
        verdicts: List[Verdict] = []
        append = verdicts.append
        failures: List[VerificationResult] = []
        pass_verdict = Verdict.PASS
        counts: Dict[Verdict, int] = {}
        started = time.perf_counter()
        for report in reports:
            verdict, matched = match(report)
            counters[verdict] += 1
            counts[verdict] = counts.get(verdict, 0) + 1
            append(verdict)
            if verdict is not pass_verdict:
                failures.append(
                    VerificationResult(
                        verdict=verdict,
                        report=report,
                        matched_entry=matched,
                        expected_tag=None if matched is None else matched.tag,
                    )
                )
        elapsed = time.perf_counter() - started
        self.total_time_s += elapsed
        if self.fast_path:
            self.fast_verifications += len(verdicts)
        else:
            self.slow_verifications += len(verdicts)
        return BatchVerificationResult(
            verdicts=verdicts,
            failures=failures,
            elapsed_s=elapsed,
            counts=counts,
        )

    def _verify_batch_vector(
        self, reports: Sequence[TagReport]
    ) -> Optional[BatchVerificationResult]:
        """The numpy kernel path; ``None`` means "use the scalar loop".

        Rows whose pair was too irregular to pack come back as
        :data:`~repro.core.vector.VSCALAR` and are resolved one-by-one via
        the scalar matcher (counted on ``vector_scalar_rows``), so the
        batch result is complete either way.
        """
        from . import vector as vec

        if not vec.HAVE_NUMPY or len(reports) < vec.MIN_BATCH:
            return None
        started = time.perf_counter()
        kernel = self.table.vector_kernel(self.hs)
        if kernel is None:
            return None
        import numpy as np

        n = len(reports)
        names = kernel.field_names
        pack = kernel.pack.pack
        slots_map = kernel.slots
        slot_list = [0] * n
        parts: List[bytes] = [b""] * n
        try:
            tags = np.fromiter((r.tag for r in reports), dtype=np.uint64, count=n)
            for i, report in enumerate(reports):
                slot_list[i] = slots_map.get(
                    (report.inport, report.outport), vec.SLOT_UNKNOWN
                )
                as_dict = report.header.as_dict()
                parts[i] = pack(*(as_dict[name] for name in names))
        except Exception:
            # Out-of-range tags/fields or exotic header objects: the scalar
            # paths define the semantics for those, so hand the batch back.
            return None
        hdr = np.frombuffer(b"".join(parts), dtype=np.uint8).reshape(n, -1)
        slot = np.asarray(slot_list, dtype=np.int64)
        lane0, lane1 = vec.lanes_from_bytes(hdr)
        codes, matched = kernel.assembly.verify(slot, tags, lane0, lane1, hdr)
        to_verdict = _code_to_verdict()
        counters = self.counters
        entry_objs = kernel.entry_objs
        verdicts: List[Verdict] = []
        failures: List[VerificationResult] = []
        counts: Dict[Verdict, int] = {}
        scalar_rows = 0
        pass_verdict = Verdict.PASS
        for i, code in enumerate(codes.tolist()):
            if code == vec.VSCALAR:
                scalar_rows += 1
                verdict, entry = self._match(reports[i])
            else:
                verdict = to_verdict[code]
                gidx = matched[i]
                entry = entry_objs[gidx] if gidx >= 0 else None
            counters[verdict] += 1
            counts[verdict] = counts.get(verdict, 0) + 1
            verdicts.append(verdict)
            if verdict is not pass_verdict:
                failures.append(
                    VerificationResult(
                        verdict=verdict,
                        report=reports[i],
                        matched_entry=entry,
                        expected_tag=None if entry is None else entry.tag,
                    )
                )
        elapsed = time.perf_counter() - started
        self.total_time_s += elapsed
        self.vector_batches += 1
        self.vector_verifications += n - scalar_rows
        self.vector_scalar_rows += scalar_rows
        if scalar_rows:
            if self.fast_path:
                self.fast_verifications += scalar_rows
            else:
                self.slow_verifications += scalar_rows
        observer = self.vector_batch_observer
        if observer is not None:
            observer(n)
        return BatchVerificationResult(
            verdicts=verdicts,
            failures=failures,
            elapsed_s=elapsed,
            counts=counts,
        )

    # -- cache control ---------------------------------------------------------

    def invalidate_fast_path(self) -> None:
        """Drop the flow cache (table-version tracking usually suffices)."""
        self._flow_cache.clear()
        self._flow_cache_table = None
        self._flow_cache_version = -1

    @property
    def flow_cache_len(self) -> int:
        """Current number of cached flows."""
        return len(self._flow_cache)

    # -- statistics -----------------------------------------------------------

    @property
    def verified_count(self) -> int:
        """Total reports verified."""
        return sum(self.counters.values())

    @property
    def failure_count(self) -> int:
        """Reports that failed verification (any failure class)."""
        return self.verified_count - self.counters[Verdict.PASS]

    @property
    def flow_cache_misses(self) -> int:
        """Fast-path verifications that had to run the full matcher scan."""
        return max(0, self.fast_verifications - self.flow_cache_hits)

    @property
    def flow_cache_hit_ratio(self) -> float:
        """Fraction of fast-path verifications served from the flow cache."""
        if self.fast_verifications == 0:
            return 0.0
        return self.flow_cache_hits / self.fast_verifications

    @property
    def fast_path_ratio(self) -> float:
        """Fraction of all verifications that took the compiled fast path."""
        total = self.verified_count
        if total == 0:
            return 0.0
        return self.fast_verifications / total

    def mean_verification_time_s(self) -> float:
        """Average wall-clock time per verification (Figure 13's metric)."""
        if self.verified_count == 0:
            return 0.0
        return self.total_time_s / self.verified_count

    def reset_counters(self) -> None:
        """Zero the statistics (the table is untouched)."""
        self.counters = {v: 0 for v in Verdict}
        self.total_time_s = 0.0
        self.flow_cache_hits = 0
        self.fast_verifications = 0
        self.slow_verifications = 0
        self.vector_batches = 0
        self.vector_verifications = 0
        self.vector_fallbacks = 0
        self.vector_scalar_rows = 0
