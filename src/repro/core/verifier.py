"""Tag verification — Algorithm 3 of the paper.

On receiving a tag report ``<inport, outport, header, tag>`` the server
looks up the path list for ``(inport, outport)``, finds the path whose
header set contains the reported header, and compares tags:

* header matches a path and the tags are equal  -> **PASS**
  (by construction this has *zero false positives*: identical paths always
  produce identical tags),
* header matches a path but the tags differ     -> **FAIL (tag mismatch)** —
  the packet took a different path than configured,
* no path's header set contains the header      -> **FAIL (no path)** —
  the packet exited somewhere it should never have reached (includes drops
  of packets that should have been delivered, and vice versa),
* the ``(inport, outport)`` pair is not indexed -> **FAIL (unknown pair)** —
  a special case of "no path" kept distinct for diagnostics; TTL-expiry
  reports from forwarding loops land here.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bdd.headerspace import HeaderSpace
from .pathtable import PathEntry, PathTable
from .reports import TagReport

__all__ = ["Verdict", "VerificationResult", "Verifier"]


class Verdict(enum.Enum):
    """Outcome classes of Algorithm 3."""

    PASS = "pass"
    FAIL_TAG_MISMATCH = "fail-tag-mismatch"
    FAIL_NO_PATH = "fail-no-path"
    FAIL_UNKNOWN_PAIR = "fail-unknown-pair"

    @property
    def passed(self) -> bool:
        """True only for PASS."""
        return self is Verdict.PASS


@dataclass
class VerificationResult:
    """A verdict plus the matched path (when one exists) and timing."""

    verdict: Verdict
    report: TagReport
    matched_entry: Optional[PathEntry] = None
    expected_tag: Optional[int] = None
    elapsed_s: float = 0.0

    @property
    def passed(self) -> bool:
        """Convenience mirror of ``verdict.passed``."""
        return self.verdict.passed

    def __str__(self) -> str:
        return f"{self.verdict.value}: {self.report}"


class Verifier:
    """Algorithm 3 over one path table.

    The linear scan over the pair's path list mirrors the paper's design;
    Figure 6 justifies it (few paths per pair), and our Figure 6 benchmark
    re-validates the assumption for the bundled topologies.
    """

    def __init__(self, table: PathTable, hs: HeaderSpace) -> None:
        self.table = table
        self.hs = hs
        self.counters: Dict[Verdict, int] = {v: 0 for v in Verdict}
        self.total_time_s = 0.0

    def verify(self, report: TagReport) -> VerificationResult:
        """Verify one tag report against the path table."""
        started = time.perf_counter()
        verdict = Verdict.FAIL_UNKNOWN_PAIR
        matched: Optional[PathEntry] = None
        expected_tag: Optional[int] = None

        entries = self.table.lookup(report.inport, report.outport)
        if entries:
            verdict = Verdict.FAIL_NO_PATH
            header = report.header.as_dict()
            for entry in entries:
                # Reports carry the header as it *exits* (after any rewrites
                # on the path), so they are matched against the entry's
                # exit-header set — identical to ``headers`` when the path
                # rewrites nothing.
                if self.hs.contains(entry.exit_header_set(), header):
                    matched = entry
                    expected_tag = entry.tag
                    if entry.tag == report.tag:
                        verdict = Verdict.PASS
                    else:
                        verdict = Verdict.FAIL_TAG_MISMATCH
                    break

        elapsed = time.perf_counter() - started
        self.counters[verdict] += 1
        self.total_time_s += elapsed
        return VerificationResult(
            verdict=verdict,
            report=report,
            matched_entry=matched,
            expected_tag=expected_tag,
            elapsed_s=elapsed,
        )

    # -- statistics -----------------------------------------------------------

    @property
    def verified_count(self) -> int:
        """Total reports verified."""
        return sum(self.counters.values())

    @property
    def failure_count(self) -> int:
        """Reports that failed verification (any failure class)."""
        return self.verified_count - self.counters[Verdict.PASS]

    def mean_verification_time_s(self) -> float:
        """Average wall-clock time per verification (Figure 13's metric)."""
        if self.verified_count == 0:
            return 0.0
        return self.total_time_s / self.verified_count

    def reset_counters(self) -> None:
        """Zero the statistics (the table is untouched)."""
        self.counters = {v: 0 for v in Verdict}
        self.total_time_s = 0.0
