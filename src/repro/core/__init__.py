"""VeriDP core: tags, path table, verification, localization, updates.

This package is the paper's primary contribution:

* :mod:`repro.core.bloom`        — Bloom-filter path tags (Section 5),
* :mod:`repro.core.pathtable`    — the path table + Algorithm 2,
* :mod:`repro.core.verifier`     — Algorithm 3,
* :mod:`repro.core.localization` — Algorithm 4 + the strawman,
* :mod:`repro.core.incremental`  — Section 4.4 incremental updates,
* :mod:`repro.core.sampling`     — Section 4.5 flow sampling,
* :mod:`repro.core.reports`      — tag-report wire formats (Section 5),
* :mod:`repro.core.server`       — the VeriDP server tying it together,
* :mod:`repro.core.resilience`   — backpressure, dead-lettering and worker
  supervision for the monitoring plane itself,
* :mod:`repro.core.repair`       — automatic flow-table repair (the paper's
  future work #2).
"""

from .atomic_builder import AtomicPathTableBuilder
from .daemon import ShardedVeriDPDaemon, UdpReportListener, VeriDPDaemon
from .bloom import BloomTagScheme, XorTagScheme, murmur3_32
from .incremental import IncrementalPathTable, LpmProvider, PrefixRuleTree, RuleDelta
from .localization import (
    CandidatePath,
    LocalizationResult,
    PathInferLocalizer,
    StrawmanLocalizer,
)
from .pathtable import (
    PathEntry,
    PathTable,
    PathTableBuilder,
    PathTableStats,
    ReachRecord,
    SnapshotProvider,
)
from .repair import RepairAction, RepairEngine, RepairOutcome, RepairResult
from .queries import PolicyChecker, QueryResult
from .reports import (
    PortCodec,
    ReportDecodeError,
    TagReport,
    pack_report,
    unpack_report,
)
from .resilience import (
    DeadLetter,
    DeadLetterQueue,
    OverflowPolicy,
    PolicyQueue,
    RestartBackoff,
    WorkerSupervisor,
)
from .sampling import (
    AlwaysSampler,
    FlowSampler,
    NeverSampler,
    sampling_interval_for,
    worst_case_detection_latency,
)
from .server import Incident, VeriDPServer
from .verifier import BatchVerificationResult, VerificationResult, Verdict, Verifier

__all__ = [
    "BatchVerificationResult",
    "ShardedVeriDPDaemon",
    "BloomTagScheme",
    "XorTagScheme",
    "murmur3_32",
    "PathEntry",
    "PathTable",
    "PathTableBuilder",
    "AtomicPathTableBuilder",
    "PathTableStats",
    "ReachRecord",
    "SnapshotProvider",
    "Verifier",
    "Verdict",
    "VerificationResult",
    "PathInferLocalizer",
    "StrawmanLocalizer",
    "LocalizationResult",
    "CandidatePath",
    "IncrementalPathTable",
    "LpmProvider",
    "PrefixRuleTree",
    "RuleDelta",
    "FlowSampler",
    "AlwaysSampler",
    "NeverSampler",
    "sampling_interval_for",
    "worst_case_detection_latency",
    "TagReport",
    "PortCodec",
    "ReportDecodeError",
    "pack_report",
    "unpack_report",
    "OverflowPolicy",
    "PolicyQueue",
    "DeadLetter",
    "DeadLetterQueue",
    "RestartBackoff",
    "WorkerSupervisor",
    "VeriDPServer",
    "Incident",
    "VeriDPDaemon",
    "UdpReportListener",
    "RepairEngine",
    "RepairResult",
    "RepairAction",
    "RepairOutcome",
    "PolicyChecker",
    "QueryResult",
]
