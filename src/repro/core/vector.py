"""Vectorized batch verification kernel (numpy-compiled FlatBDD matchers).

The scalar fast path walks one :class:`~repro.bdd.engine.FlatBDD` per
report in interpreted Python (~2 µs/report).  This module compiles the
matchers one level further — into numpy arrays — and verifies a whole
dispatch batch as array operations, so the per-report cost is a few
*nanoseconds* of vectorized work instead of microseconds of interpreter
dispatch.

Two evaluation tiers coexist inside one kernel, chosen per path entry at
compile time:

* **cube tier** — a matcher whose BDD has at most :data:`CUBE_CAP` paths
  to TRUE is flattened into its cubes (conjunctions of literals).  A cube
  is a ``(mask, want)`` pair over the packed header, and membership is a
  masked compare: ``(header & mask) == want``.  Headers and cubes are
  split into two overlapping ``uint64`` lanes (levels ``0..63`` and
  ``total-64..total-1``), so the whole batch evaluates as a handful of
  ``uint64`` AND/compare sweeps — the same trick the tag comparison and
  Bloom membership checks use.  Cubes touching only one lane (the common
  case: pure dst-prefix matchers) skip the other lane's ops entirely.
* **descent tier** — cube-rich matchers keep their BDD shape: node
  ``shifts``/``low``/``high`` arrays concatenate into one assembly and the
  whole batch descends simultaneously, one gather (``np.take``-style fancy
  index) and compare per BDD level, with masked early-exit compacting the
  active set as rows reach terminals.

Candidate selection mirrors the scalar fast path: a vectorized
open-addressing hash probes ``(pair, tag)`` to the tag-first candidate
(provably verdict-identical for disjoint pairs); rows it cannot resolve
fall back to the paper-literal list-order scan, whose first match is
recovered with a segmented ``minimum.reduceat``.

Everything degrades gracefully: no numpy, an unsupported header layout,
a tiny batch, or a pair too irregular to pack (too many entries, too many
nodes) all fall back to the scalar path — per batch or per row — with the
fallbacks counted.  Invalidation rides the existing machinery:
``FlatBDD.source`` staleness, ``PathTable.version`` and the dirty-pair
journal, so delta resyncs recompile only the touched pair kernels.
"""

from __future__ import annotations

import os
import struct
from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via the HAVE_NUMPY fallbacks
    import numpy as np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from ..bdd.engine import _FLAT_FALSE, _FLAT_TRUE, FlatBDD

__all__ = [
    "HAVE_NUMPY",
    "MIN_BATCH",
    "CUBE_CAP",
    "NODE_CAP",
    "ENTRY_CAP",
    "witness_cube",
    "VPASS",
    "VMISMATCH",
    "VNOPATH",
    "VUNKNOWN",
    "VSCALAR",
    "VMALFORMED",
    "SLOT_UNKNOWN",
    "SLOT_SCALAR",
    "PairKernel",
    "compile_pair_kernel",
    "KernelAssembly",
    "TableKernel",
    "build_table_kernel",
    "WireBatchVerifier",
    "layout_pack_struct",
    "lanes_from_bytes",
    "bloom_member_batch",
    "bloom_first_miss",
]


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "").strip() or default)
    except ValueError:
        return default


#: Batches below this size are not worth the numpy fixed costs; the caller
#: falls back to the scalar loop (the crossover heuristic, DESIGN.md §11).
MIN_BATCH = _env_int("REPRO_VECTOR_MIN_BATCH", 32)
#: Matchers with more cubes than this use the descent tier instead.
CUBE_CAP = _env_int("REPRO_VECTOR_CUBE_CAP", 64)
#: Pairs whose descent-tier nodes exceed this are "too irregular to pack".
NODE_CAP = _env_int("REPRO_VECTOR_NODE_CAP", 1 << 15)
#: Pairs with more entries than this are "too irregular to pack".
ENTRY_CAP = _env_int("REPRO_VECTOR_ENTRY_CAP", 512)
#: Column-block width for wide cube buckets (early-exit granularity).
_BLOCK_COLS = _env_int("REPRO_VECTOR_BLOCK_COLS", 8)

#: Per-block lane compare modes: full 64-bit, one 32-bit half (when every
#: mask/want in the block fits it — headers are mostly prefix matches, so
#: this is the common case), or mask-free constant.
_LANE_U64 = 0
_LANE_LO32 = 1
_LANE_HI32 = 2
_LANE_CONST = 3

#: Verdict codes (array dtype uint8), aligned with ``Verdict`` ordering.
VPASS = 0
VMISMATCH = 1
VNOPATH = 2
VUNKNOWN = 3
#: Row sentinel: the pair is known but irregular — resolve via scalar path.
VSCALAR = 255
#: Row sentinel (wire tier): the payload cannot decode.
VMALFORMED = 254

#: Slot sentinels for per-report pair lookups.
SLOT_UNKNOWN = -1
SLOT_SCALAR = -2

#: Entry evaluation classes inside an assembly.
_CLS_CUBE_LANE0 = 0
_CLS_CUBE_LANE1 = 1
_CLS_CUBE_DUAL = 2
_CLS_DESCENT = 3

_U64_MASK = (1 << 64) - 1
#: Hash-mixing constants (splitmix64 flavour), mirrored in numpy lookups.
_MIX1 = 0x9E3779B97F4A7C15
_MIX2 = 0xC2B2AE3D27D4EB4F

_MISSING = object()


# ---------------------------------------------------------------------------
# cube extraction
# ---------------------------------------------------------------------------


def cubes_of(flat: FlatBDD, cap: int = CUBE_CAP) -> Optional[List[Tuple[int, int]]]:
    """Enumerate a matcher's cubes — its BDD paths to TRUE.

    Each cube is ``(mask, want)`` over the packed header value (bit ``i``
    of either is the variable whose right-shift is ``i``), and the matcher
    accepts ``v`` iff some cube has ``v & mask == want``.  Returns ``None``
    when the matcher has more than ``cap`` cubes (or ``cap <= 0``) — the
    caller then keeps the BDD shape and uses the descent tier.
    """
    if cap <= 0:
        return None
    if flat.root == _FLAT_FALSE:
        return []
    if flat.root == _FLAT_TRUE:
        return [(0, 0)]
    shifts = flat.shifts
    low = flat.low
    high = flat.high
    out: List[Tuple[int, int]] = []
    stack: List[Tuple[int, int, int]] = [(flat.root, 0, 0)]
    while stack:
        u, mask, want = stack.pop()
        if u == _FLAT_TRUE:
            out.append((mask, want))
            if len(out) > cap:
                return None
            continue
        if u == _FLAT_FALSE:
            continue
        bit = 1 << shifts[u]
        stack.append((low[u], mask | bit, want))
        stack.append((high[u], mask | bit, want | bit))
    return out


def witness_cube(flat: FlatBDD) -> Optional[Tuple[int, int]]:
    """One satisfying cube ``(mask, want)`` of a matcher, or ``None`` if FALSE.

    The active prober's fallback when :func:`cubes_of` gives up: a single
    greedy descent to TRUE instead of full path enumeration.  In a reduced
    OBDD every internal node reaches TRUE (a node reaching only FALSE *is*
    FALSE), so preferring the high branch whenever it is not FALSE finds a
    witness in at most one node per level — O(levels), never exponential.
    ``want`` itself (don't-cares zero-filled) is a satisfying packed header
    value for :meth:`~repro.bdd.engine.FlatBDD.evaluate_value`.
    """
    u = flat.root
    if u == _FLAT_FALSE:
        return None
    shifts = flat.shifts
    low = flat.low
    high = flat.high
    mask = 0
    want = 0
    while u != _FLAT_TRUE:
        bit = 1 << shifts[u]
        mask |= bit
        if high[u] != _FLAT_FALSE:
            want |= bit
            u = high[u]
        else:
            u = low[u]
    return (mask, want)


# ---------------------------------------------------------------------------
# per-pair compilation
# ---------------------------------------------------------------------------


class PairKernel:
    """One pair's matchers compiled for the vector kernel.

    Cube entries carry their cube lists; descent entries carry a pair-local
    node pool (``levels`` + interleaved ``children``).  ``primary`` maps a
    tag to its single tag-first candidate position — populated only when
    the pair is disjoint and the tag bucket has exactly one entry, the case
    where tag-first probing is provably verdict-identical to list order.
    """

    __slots__ = (
        "tags",
        "sources",
        "classes",
        "cubes",
        "roots",
        "levels",
        "children",
        "primary",
    )

    def __init__(
        self,
        tags: Tuple[int, ...],
        sources: Tuple[int, ...],
        classes: Tuple[int, ...],
        cubes: Tuple[Tuple[Tuple[int, int], ...], ...],
        roots: Tuple[int, ...],
        levels: Tuple[int, ...],
        children: Tuple[int, ...],
        primary: Dict[int, int],
    ) -> None:
        self.tags = tags
        self.sources = sources
        self.classes = classes
        self.cubes = cubes
        self.roots = roots
        self.levels = levels
        self.children = children
        self.primary = primary

    @property
    def n_entries(self) -> int:
        return len(self.tags)


def compile_pair_kernel(
    tags: Sequence[int],
    flats: Sequence[FlatBDD],
    by_tag: Dict[int, Tuple[int, ...]],
    disjoint: bool,
    total_bits: int,
    cube_cap: int = None,  # type: ignore[assignment]
    node_cap: int = None,  # type: ignore[assignment]
    entry_cap: int = None,  # type: ignore[assignment]
) -> Optional[PairKernel]:
    """Compile one pair's ``(tags, flats)`` into a :class:`PairKernel`.

    Returns ``None`` when the candidate set is too irregular to pack
    (more than ``entry_cap`` entries, or descent-tier node pool beyond
    ``node_cap``) — callers route such pairs to the scalar path.
    """
    if cube_cap is None:
        cube_cap = CUBE_CAP
    if node_cap is None:
        node_cap = NODE_CAP
    if entry_cap is None:
        entry_cap = ENTRY_CAP
    if len(flats) > entry_cap:
        return None
    lane1_mask = _U64_MASK
    lane0_low = (1 << max(total_bits - 64, 0)) - 1  # bits outside lane0
    classes: List[int] = []
    cube_lists: List[Tuple[Tuple[int, int], ...]] = []
    roots: List[int] = []
    levels: List[int] = []
    children: List[int] = []
    for flat in flats:
        cubes = cubes_of(flat, cube_cap)
        if cubes is not None:
            if not cubes:
                # Never-matching entry: one unsatisfiable cube keeps every
                # entry at >= 1 cube so segment boundaries stay distinct.
                cubes = [(0, 1)]
            if all(mask & lane0_low == 0 for mask, _ in cubes):
                classes.append(_CLS_CUBE_LANE0)
            elif all(mask >> 64 == 0 for mask, _ in cubes):
                classes.append(_CLS_CUBE_LANE1)
            else:
                classes.append(_CLS_CUBE_DUAL)
            cube_lists.append(tuple(cubes))
            roots.append(0)
            continue
        classes.append(_CLS_DESCENT)
        cube_lists.append(())
        base = len(levels)
        top = total_bits - 1
        levels.extend(top - s for s in flat.shifts)
        for lo, hi in zip(flat.low, flat.high):
            children.append(lo + base if lo >= 0 else lo)
            children.append(hi + base if hi >= 0 else hi)
        roots.append(flat.root + base if flat.root >= 0 else flat.root)
        if len(levels) > node_cap:
            return None
    primary: Dict[int, int] = {}
    if disjoint:
        for tag, positions in by_tag.items():
            if len(positions) == 1:
                primary[tag] = positions[0]
    return PairKernel(
        tags=tuple(tags),
        sources=tuple(f.source for f in flats),
        classes=tuple(classes),
        cubes=tuple(cube_lists),
        roots=tuple(roots),
        levels=tuple(levels),
        children=tuple(children),
        primary=primary,
    )


# ---------------------------------------------------------------------------
# the assembly: all pair kernels concatenated, batch evaluation
# ---------------------------------------------------------------------------


def _mix_py(a: int, b: int) -> int:
    h = (a * _MIX1 + b * _MIX2) & _U64_MASK
    h ^= h >> 31
    h = (h * _MIX1) & _U64_MASK
    return h >> 32


class _ProbeTable:
    """Vectorized open-addressing map ``(key_a, key_b) -> value``.

    Build is Python (small, compile-time); lookup is numpy linear probing
    bounded by the worst probe length seen at build time.
    """

    __slots__ = ("ka", "kb", "val", "mask", "max_probe")

    def __init__(self, items: Sequence[Tuple[int, int, int]]) -> None:
        size = 4
        while size < 4 * (len(items) + 1):
            size <<= 1
        ka = [-1] * size
        kb = [0] * size
        val = [0] * size
        mask = size - 1
        max_probe = 0
        for a, b, v in items:
            h = _mix_py(b, a) & mask
            probe = 0
            while ka[h] != -1:
                h = (h + 1) & mask
                probe += 1
            ka[h] = a
            kb[h] = b
            val[h] = v
            max_probe = max(max_probe, probe)
        self.ka = np.asarray(ka, dtype=np.int64)
        self.kb = np.asarray(kb, dtype=np.uint64)
        self.val = np.asarray(val, dtype=np.int64)
        self.mask = np.int64(mask)
        self.max_probe = max_probe

    def lookup(self, a, b):
        """Vectorized ``get((a, b), -1)`` over aligned key arrays.

        The first probe is unrolled over the whole batch — at a 1/4 load
        factor almost every present key sits in its home slot, so the loop
        below usually starts from a near-empty remainder.
        """
        h = b * np.uint64(_MIX1) + a.astype(np.uint64) * np.uint64(_MIX2)
        h = h ^ (h >> np.uint64(31))
        h = h * np.uint64(_MIX1)
        idx = (h >> np.uint64(32)).astype(np.int64) & self.mask
        stored = self.ka[idx]
        hit = (stored == a) & (self.kb[idx] == b)
        out = np.where(hit, self.val[idx], np.int64(-1))
        active = np.flatnonzero((stored != -1) & ~hit)
        if active.size == 0:
            return out
        aa = a[active]
        ab = b[active]
        cur = idx[active]
        for _ in range(self.max_probe):
            cur = (cur + 1) & self.mask
            stored = self.ka[cur]
            hit = (stored == aa) & (self.kb[cur] == ab)
            if hit.any():
                out[active[hit]] = self.val[cur[hit]]
            cont = (stored != -1) & ~hit
            active = active[cont]
            if active.size == 0:
                break
            aa = aa[cont]
            ab = ab[cont]
            cur = cur[cont]
        return out


def _lane_block(m, w):
    """Pick the cheapest compare mode for one lane of one column block.

    Returns ``(mode, a, b)``: for ``_LANE_CONST`` ``a`` is the precomputed
    ``(lane & 0) == want`` boolean matrix; for the 32-bit modes ``a``/``b``
    are the halved mask/want matrices; otherwise the uint64 originals.
    """
    if not m.any():
        return _LANE_CONST, np.ascontiguousarray(w == 0), None
    s32 = np.uint64(32)
    if not (m >> s32).any() and not (w >> s32).any():
        return (
            _LANE_LO32,
            np.ascontiguousarray(m.astype(np.uint32)),
            np.ascontiguousarray(w.astype(np.uint32)),
        )
    lo = np.uint64(0xFFFFFFFF)
    if not (m & lo).any() and not (w & lo).any():
        return (
            _LANE_HI32,
            np.ascontiguousarray((m >> s32).astype(np.uint32)),
            np.ascontiguousarray((w >> s32).astype(np.uint32)),
        )
    return _LANE_U64, np.ascontiguousarray(m), np.ascontiguousarray(w)


class KernelAssembly:
    """Every regular pair kernel concatenated into flat batch arrays.

    Cube entries are stored as *padded rectangular* matrices, bucketed by
    power-of-two cube count: entry ``e`` in bucket ``b`` owns row
    ``ent_brow[e]`` of the bucket's ``(rows, pad_b)`` mask/want matrices,
    with unused cells filled by an unsatisfiable cube.  Evaluation is then
    a handful of 2-D broadcasts per bucket instead of ragged
    repeat/cumsum/reduceat machinery — the difference between ~3M and
    >6M verifs/s on the fig13 batches.
    """

    def __init__(self, kernels: Sequence[PairKernel], total_bits: int) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError("KernelAssembly requires numpy")
        self.total_bits = total_bits
        self.nbytes = total_bits // 8
        ent_off = [0]
        tags: List[int] = []
        classes: List[int] = []
        ent_cubes: List[Tuple[Tuple[int, int], ...]] = []
        roots: List[int] = []
        levels: List[int] = []
        children: List[int] = []
        primary_items: List[Tuple[int, int, int]] = []
        for slot, kern in enumerate(kernels):
            base_ent = ent_off[-1]
            node_base = len(levels)
            tags.extend(kern.tags)
            classes.extend(kern.classes)
            ent_cubes.extend(kern.cubes)
            for root in kern.roots:
                roots.append(root + node_base if root >= 0 else root)
            levels.extend(kern.levels)
            for child in kern.children:
                children.append(child + node_base if child >= 0 else child)
            for tag, pos in kern.primary.items():
                primary_items.append((slot, tag, base_ent + pos))
            ent_off.append(base_ent + kern.n_entries)
        self.ent_off = np.asarray(ent_off, dtype=np.int64)
        self.ent_tags = np.asarray(tags, dtype=np.uint64)
        self.ent_class = np.asarray(classes, dtype=np.uint8)
        self.ent_root = np.asarray(roots, dtype=np.int64)
        self.node_levels = np.asarray(levels, dtype=np.int64)
        self.node_children = np.asarray(children, dtype=np.int64)
        self.primary = _ProbeTable(primary_items) if primary_items else None
        self.n_entries = int(self.ent_off[-1])
        # Bucket cube entries by padded (power-of-two) cube count.  The
        # lane split happens on Python ints — cube masks can exceed 64 bits.
        shift0 = max(total_bits - 64, 0)
        pad_fill = (0, 1)  # mask 0 / want 1: unsatisfiable on lane1
        by_pad: Dict[int, List[int]] = {}
        for ent, cubes in enumerate(ent_cubes):
            if not cubes:  # descent entry
                continue
            pad = 1
            while pad < len(cubes):
                pad <<= 1
            by_pad.setdefault(pad, []).append(ent)
        self.ent_bucket = np.full(self.n_entries, -1, dtype=np.int8)
        self.ent_brow = np.zeros(self.n_entries, dtype=np.int64)
        self.buckets: List[Tuple] = []
        for pad in sorted(by_pad):
            members = by_pad[pad]
            m0 = np.empty((len(members), pad), dtype=np.uint64)
            w0 = np.empty_like(m0)
            m1 = np.empty_like(m0)
            w1 = np.empty_like(m0)
            for row, ent in enumerate(members):
                cubes = ent_cubes[ent]
                padded = cubes + (pad_fill,) * (pad - len(cubes))
                for col, (mask, want) in enumerate(padded):
                    m0[row, col] = mask >> shift0
                    w0[row, col] = want >> shift0
                    m1[row, col] = mask & _U64_MASK
                    w1[row, col] = want & _U64_MASK
                self.ent_bucket[ent] = len(self.buckets)
                self.ent_brow[ent] = row
            # Wide buckets split into column blocks: rows that match an
            # early block (the common healthy case) skip the rest.
            blocks = []
            step = _BLOCK_COLS
            for lo in range(0, pad, step):
                hi = min(lo + step, pad)
                mode0, a0, b0 = _lane_block(m0[:, lo:hi], w0[:, lo:hi])
                mode1, a1, b1 = _lane_block(m1[:, lo:hi], w1[:, lo:hi])
                blocks.append((mode0, a0, b0, mode1, a1, b1))
            self.buckets.append(tuple(blocks))

    # -- entry evaluation ----------------------------------------------------

    def _eval_descent(self, rows, gidx, hdr_bytes):
        """Gather-based simultaneous descent with masked early exit."""
        uniq, inv = np.unique(rows, return_inverse=True)
        bits = np.unpackbits(hdr_bytes[uniq], axis=1)
        nbits = bits.shape[1]
        bits_flat = bits.ravel().astype(np.int64)
        rowmul = inv.astype(np.int64) * nbits
        res = np.zeros(gidx.shape[0], dtype=bool)
        nodes = self.ent_root[gidx]
        res[nodes == _FLAT_TRUE] = True
        pidx = np.flatnonzero(nodes >= 0)
        nodes = nodes[pidx]
        levels = self.node_levels
        children = self.node_children
        guard = 0
        while nodes.size:
            guard += 1
            if guard > self.total_bits + 1:  # pragma: no cover - corrupt kernel
                raise RuntimeError("vector descent did not terminate")
            b = bits_flat[rowmul[pidx] + levels[nodes]]
            nxt = children[(nodes << 1) + b]
            alive = nxt >= 0
            if alive.all():
                nodes = nxt
                continue
            dead = ~alive
            res[pidx[dead]] = nxt[dead] == _FLAT_TRUE
            pidx = pidx[alive]
            nodes = nxt[alive]
        return res

    def _eval_entries(self, rows, gidx, lane0, lane1, hdr_bytes):
        bk = self.ent_bucket[gidx]
        out = np.zeros(gidx.shape[0], dtype=bool)
        views = {}

        def lane_view(which, mode):
            if mode == _LANE_U64:
                return lane0 if which == 0 else lane1
            key = (which, mode)
            v = views.get(key)
            if v is None:
                base = lane0 if which == 0 else lane1
                if mode == _LANE_LO32:
                    v = base.astype(np.uint32)
                else:
                    v = (base >> np.uint64(32)).astype(np.uint32)
                views[key] = v
            return v

        for b, blocks in enumerate(self.buckets):
            sel = np.flatnonzero(bk == b)
            if not sel.size:
                continue
            br = self.ent_brow[gidx[sel]]
            r = rows[sel]
            last = len(blocks) - 1
            for i, (mode0, a0, b0, mode1, a1, b1) in enumerate(blocks):
                single = (a0.shape[1] if a0.ndim == 2 else 1) == 1
                if mode0 == _LANE_CONST:
                    t0 = a0[br, 0] if single else a0[br]
                else:
                    lv = lane_view(0, mode0)
                    if single:
                        t0 = (lv[r] & a0[br, 0]) == b0[br, 0]
                    else:
                        t0 = (lv[r, None] & a0[br]) == b0[br]
                if mode1 == _LANE_CONST:
                    t1 = a1[br, 0] if single else a1[br]
                else:
                    lv = lane_view(1, mode1)
                    if single:
                        t1 = (lv[r] & a1[br, 0]) == b1[br, 0]
                    else:
                        t1 = (lv[r, None] & a1[br]) == b1[br]
                okb = t0 & t1
                if not single:
                    okb = okb.any(axis=1)
                if i == last:
                    out[sel] = okb
                    break
                out[sel[okb]] = True
                miss = ~okb
                sel = sel[miss]
                if not sel.size:
                    break
                br = br[miss]
                r = r[miss]
        sel = np.flatnonzero(bk == -1)
        if sel.size:
            out[sel] = self._eval_descent(rows[sel], gidx[sel], hdr_bytes)
        return out

    # -- batch verification ----------------------------------------------------

    def verify(self, slot, tag, lane0, lane1, hdr_bytes):
        """Verdict codes + matched entry indexes for one marshalled batch.

        ``slot`` holds per-row pair slots (:data:`SLOT_UNKNOWN` /
        :data:`SLOT_SCALAR` sentinels included); returns ``(codes,
        matched)`` where ``matched[i]`` is the assembly entry index the row
        matched (``-1`` when none).  Scalar-sentinel rows come back as
        :data:`VSCALAR` for the caller to resolve.
        """
        n = slot.shape[0]
        codes = np.full(n, VNOPATH, dtype=np.uint8)
        matched = np.full(n, -1, dtype=np.int64)
        codes[slot == SLOT_UNKNOWN] = VUNKNOWN
        codes[slot == SLOT_SCALAR] = VSCALAR
        rows = np.flatnonzero(slot >= 0)
        if rows.size == 0:
            return codes, matched
        # Phase A — tag-first primary probe (disjoint pairs, single-entry
        # tag buckets): membership of the probed entry implies PASS, since
        # the bucket's tag equals the report's by construction.
        if self.primary is not None:
            gidx = self.primary.lookup(slot[rows], tag[rows])
            has = gidx >= 0
            if has.any():
                arows = rows[has]
                agidx = gidx[has]
                ok = self._eval_entries(arows, agidx, lane0, lane1, hdr_bytes)
                hit = arows[ok]
                matched[hit] = agidx[ok]
                codes[hit] = VPASS
                keep = np.ones(n, dtype=bool)
                keep[hit] = False
                rows = rows[keep[rows]]
        # Phase B — the paper-literal list-order scan over every entry of
        # the row's pair, first match recovered per row.  For disjoint
        # pairs the match is unique, so this is verdict- and entry-
        # identical to the scalar tag-first ordering.
        if rows.size:
            s = slot[rows]
            counts = self.ent_off[s + 1] - self.ent_off[s]
            nz = counts > 0
            rows = rows[nz]
            s = s[nz]
            counts = counts[nz]
        if rows.size:
            total = int(counts.sum())
            expand = np.repeat(np.arange(rows.shape[0]), counts)
            starts = np.zeros(rows.shape[0], dtype=np.int64)
            np.cumsum(counts[:-1], out=starts[1:])
            local = np.arange(total, dtype=np.int64) - starts[expand]
            gidx = self.ent_off[s][expand] + local
            ok = self._eval_entries(rows[expand], gidx, lane0, lane1, hdr_bytes)
            big = np.int64(1 << 60)
            cand = np.where(ok, local, big)
            segmin = np.minimum.reduceat(cand, starts)
            found = segmin < big
            if found.any():
                frows = rows[found]
                mg = self.ent_off[s[found]] + segmin[found]
                matched[frows] = mg
                tag_ok = self.ent_tags[mg] == tag[frows]
                codes[frows] = np.where(tag_ok, VPASS, VMISMATCH).astype(np.uint8)
        return codes, matched


# ---------------------------------------------------------------------------
# header marshalling helpers
# ---------------------------------------------------------------------------

_WIDTH_FMT = {8: "B", 16: "H", 32: "I", 64: "Q"}


def layout_pack_struct(layout) -> Optional[struct.Struct]:
    """Big-endian packer for a header layout, ``None`` when unsupported.

    The vector kernel needs byte-granular fields and a total width in
    ``(64, 128]`` bits so headers split into two ``uint64`` lanes; exotic
    layouts simply keep the scalar path.
    """
    if not 64 < layout.total_bits <= 128:
        return None
    fmt = ">"
    for field in layout.fields:
        code = _WIDTH_FMT.get(field.width)
        if code is None:
            return None
        fmt += code
    return struct.Struct(fmt)


def lanes_from_bytes(hdr_bytes):
    """Split packed big-endian header bytes into two ``uint64`` lanes.

    ``lane0`` is the first 8 bytes (levels ``0..63``), ``lane1`` the last
    8 (levels ``total-64..total-1``); they overlap when ``total < 128``,
    which is harmless — cube masks are built with the same split.
    """
    lane0 = hdr_bytes[:, :8].copy().view(">u8").ravel().astype(np.uint64)
    lane1 = hdr_bytes[:, -8:].copy().view(">u8").ravel().astype(np.uint64)
    return lane0, lane1


# ---------------------------------------------------------------------------
# table-level kernel (TagReport objects, used by Verifier)
# ---------------------------------------------------------------------------


class TableKernel:
    """A path table compiled for `Verifier.verify_batch(vector=True)`."""

    __slots__ = ("assembly", "slots", "entry_objs", "pack", "field_names")

    def __init__(self, assembly, slots, entry_objs, pack, field_names) -> None:
        self.assembly = assembly
        #: ``(inport, outport) -> slot`` (irregular pairs map to SLOT_SCALAR).
        self.slots = slots
        #: Flat entry objects aligned with the assembly's entry indexes.
        self.entry_objs = entry_objs
        self.pack = pack
        self.field_names = field_names


def build_table_kernel(table, hs, kernel_cache: Dict) -> Optional[TableKernel]:
    """Compile ``table`` into a :class:`TableKernel`.

    ``kernel_cache`` maps pair keys to compiled :class:`PairKernel` values
    (``None`` = irregular); the caller owns it and evicts dirty pairs via
    the table's journal, so only touched pairs recompile here.  Counts
    compilations on ``table.vector_kernel_compiles``.
    """
    if not HAVE_NUMPY:
        return None
    pack = layout_pack_struct(hs.layout)
    if pack is None:
        return None
    total_bits = hs.layout.total_bits
    slots: Dict = {}
    kernels: List[PairKernel] = []
    entry_objs: List = []
    for key in table.pairs():
        cached = kernel_cache.get(key, _MISSING)
        if cached is _MISSING:
            index = table.fast_index(key[0], key[1], hs)
            if index is None:  # pragma: no cover - pairs() lists known keys
                continue
            kern = compile_pair_kernel(
                tuple(entry.tag for entry in index.entries),
                tuple(entry.compiled_matcher(hs) for entry in index.entries),
                index.by_tag,
                index.disjoint,
                total_bits,
            )
            cached = (kern, tuple(index.entries))
            kernel_cache[key] = cached
            table.vector_kernel_compiles += 1
        kern, entries = cached
        if kern is None:
            slots[key] = SLOT_SCALAR
            continue
        slots[key] = len(kernels)
        kernels.append(kern)
        entry_objs.extend(entries)
    assembly = KernelAssembly(kernels, total_bits)
    return TableKernel(
        assembly, slots, entry_objs, pack, tuple(hs.layout.field_names())
    )


# ---------------------------------------------------------------------------
# wire-level batch verifier (daemon shard workers, fig13 vector bench)
# ---------------------------------------------------------------------------

#: Byte spans of the wire header fields inside a report payload, indexed by
#: their ``_WIRE_FIELD_POS`` position (src_ip, dst_ip, proto, sport, dport).
_WIRE_SPANS = ((14, 18), (18, 22), (22, 23), (23, 25), (25, 27))
_WIRE_WIDTHS = (32, 32, 8, 16, 16)

_REPORT_DTYPE_SPEC = [
    ("version", "u1"),
    ("flags", "u1"),
    ("inport", ">u2"),
    ("outport", ">u2"),
    ("tag", ">u8"),
]


class WireBatchVerifier:
    """Verify batches of wire report payloads with the vector kernel.

    Construction takes the same ``pairs`` replica dict and field
    ``packing`` a shard worker holds; kernels compile lazily on first use
    and are invalidated per pair (``invalidate(keys)``, the dirty-journal
    delta path) or wholesale (``reload``).  ``verify`` returns one verdict
    code per payload — including :data:`VMALFORMED` for undecodable
    payloads and :data:`VSCALAR` for rows the caller must re-run through
    the scalar matcher.
    """

    def __init__(self, pairs: Dict, packing, report_size: int = 27) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError("WireBatchVerifier requires numpy")
        self._pairs = pairs
        self._packing = tuple(packing)
        self.report_size = report_size
        byte_cols: List[int] = []
        total_bits = 0
        for pos, width in self._packing:
            span = _WIRE_SPANS[pos]
            if width != _WIRE_WIDTHS[pos]:
                raise ValueError(
                    f"field width {width} does not match the wire field at "
                    f"position {pos} ({_WIRE_WIDTHS[pos]} bits)"
                )
            byte_cols.extend(range(span[0], span[1]))
            total_bits += width
        if not 64 < total_bits <= 128:
            raise ValueError(
                f"vector kernel needs a 65..128-bit header, got {total_bits}"
            )
        self.total_bits = total_bits
        cols = np.asarray(byte_cols, dtype=np.int64)
        #: None = identity (skip the permutation gather on the hot path).
        self._byte_cols = None if (cols == np.arange(14, 27)).all() else cols
        self._kernels: Dict = {}
        self._assembly: Optional[KernelAssembly] = None
        self._slot_table: Optional[_ProbeTable] = None
        self._fused: Optional[_ProbeTable] = None
        self.kernel_compiles = 0
        self.irregular_pairs = 0

    # -- invalidation (FlatBDD.source / table-version / dirty journal) -------

    def reload(self, pairs: Dict) -> None:
        """Swap the whole replica (full resync / worker reload)."""
        self._pairs = pairs
        self._kernels.clear()
        self._assembly = None

    def invalidate(self, keys=None) -> None:
        """Drop compiled state for ``keys`` (``None`` = everything).

        The delta path: after a dirty-journal patch only the touched pair
        kernels recompile; the assembly (cheap concatenation) rebuilds on
        the next batch either way.
        """
        if keys is None:
            self._kernels.clear()
        else:
            for key in keys:
                self._kernels.pop(key, None)
        self._assembly = None

    def _ensure(self) -> None:
        if self._assembly is not None:
            return
        kernels: List[PairKernel] = []
        slot_items: List[Tuple[int, int, int]] = []
        fused_items: List[Tuple[int, int, int]] = []
        base_ent = 0
        self.irregular_pairs = 0
        for (in_wire, out_wire), spec in self._pairs.items():
            kern = self._kernels.get((in_wire, out_wire), _MISSING)
            if kern is _MISSING:
                tags, flats, by_tag, disjoint = spec
                kern = compile_pair_kernel(
                    tags, flats, by_tag, disjoint, self.total_bits
                )
                self._kernels[(in_wire, out_wire)] = kern
                self.kernel_compiles += 1
            packed = (in_wire << 16) | out_wire
            if kern is None:
                self.irregular_pairs += 1
                slot_items.append((packed, 0, SLOT_SCALAR))
            else:
                slot_items.append((packed, 0, len(kernels)))
                kernels.append(kern)
                for tag, pos in kern.primary.items():
                    fused_items.append((packed, tag, base_ent + pos))
                base_ent += kern.n_entries
        self._assembly = KernelAssembly(kernels, self.total_bits)
        self._slot_table = _ProbeTable(slot_items)
        # One probe keyed (pair, tag) -> global entry lets healthy rows skip
        # the per-row slot lookup entirely; only the remainder resolves its
        # pair slot and runs the two-phase assembly scan.
        self._fused = _ProbeTable(fused_items) if fused_items else None

    # -- verification ---------------------------------------------------------

    def verify(self, payloads: Sequence[bytes]):
        """Verdict codes (uint8, one per payload) for a list batch."""
        self._ensure()
        n = len(payloads)
        size = self.report_size
        if n == 0:
            return np.empty(0, dtype=np.uint8)
        # One C pass over the lengths; wrong-size payloads are VMALFORMED
        # and the well-formed subset re-enters on the fast path below.
        lens = np.fromiter(map(len, payloads), dtype=np.int64, count=n)
        if (lens != size).any():
            good = np.flatnonzero(lens == size)
            codes = np.full(n, VMALFORMED, dtype=np.uint8)
            if good.size:
                sub = [payloads[i] for i in good.tolist()]
                codes[good] = self.verify(sub)
            return codes
        buf = b"".join(payloads)
        return self._verify_raw(
            np.frombuffer(buf, dtype=np.uint8).reshape(n, size)
        )

    def verify_frame(self, frame: bytes):
        """Verdict codes for a pre-framed batch (concatenated payloads).

        The sharded daemon ships each batch to its workers as one
        concatenated frame, so the hot path skips both the join and the
        per-payload length screen of :meth:`verify` — frame boundaries are
        fixed at ``report_size``, and a frame whose length is not a
        multiple of it is rejected outright (the framer only concatenates
        well-sized payloads).
        """
        self._ensure()
        size = self.report_size
        n, trailing = divmod(len(frame), size)
        if trailing:
            raise ValueError(
                f"frame length {len(frame)} is not a multiple of {size}"
            )
        if n == 0:
            return np.empty(0, dtype=np.uint8)
        return self._verify_raw(
            np.frombuffer(frame, dtype=np.uint8).reshape(n, size)
        )

    def _verify_raw(self, raw):
        """The shared batch pipeline over an ``(n, report_size)`` array."""
        n, size = raw.shape
        # Bytes 2..5 are inport/outport big-endian back to back, so one
        # ``>u4`` view is exactly the packed ``(inport << 16) | outport``.
        pk = raw[:, 2:6].copy().view(">u4").ravel().astype(np.int64)
        tags = raw[:, 6:14].copy().view(">u8").ravel().astype(np.uint64)
        if self._byte_cols is None:
            hdr = raw[:, 14:size]
        else:
            hdr = raw[:, self._byte_cols]
        lane0, lane1 = lanes_from_bytes(hdr)
        codes = np.full(n, VNOPATH, dtype=np.uint8)
        # Fast phase: (pair, tag) probe straight to the primary entry; a
        # hit whose matcher accepts the header is a PASS, everything else
        # falls through to the full two-phase scan on the remainder.
        if self._fused is not None:
            gidx = self._fused.lookup(pk, tags)
            arows = np.flatnonzero(gidx >= 0)
            if arows.size:
                ok = self._assembly._eval_entries(
                    arows, gidx[arows], lane0, lane1, hdr
                )
                codes[arows[ok]] = VPASS
        rem = np.flatnonzero(codes != VPASS)
        if rem.size:
            # Probe misses return -1 == SLOT_UNKNOWN already.
            slot = self._slot_table.lookup(
                pk[rem], np.zeros(rem.size, dtype=np.uint64)
            )
            sub, _ = self._assembly.verify(
                slot, tags[rem], lane0[rem], lane1[rem], hdr[rem]
            )
            codes[rem] = sub
        from .reports import REPORT_VERSION

        codes[raw[:, 0] != REPORT_VERSION] = VMALFORMED
        return codes


# ---------------------------------------------------------------------------
# Bloom membership as uint64 AND/compare over a batch
# ---------------------------------------------------------------------------


def bloom_member_batch(tags, hop_filter: int):
    """``scheme.may_contain(tag, hop)`` for a whole batch of tags at once.

    A tag may contain a hop iff the hop's filter bits are all set in the
    tag: ``(tag & filter) == filter`` — one vectorized AND/compare.
    """
    hf = np.uint64(hop_filter)
    t = np.asarray(tags, dtype=np.uint64)
    return (t & hf) == hf


def bloom_first_miss(tag: int, hop_filters) -> int:
    """Index of the first hop filter *not* contained in ``tag`` (-1 = none).

    The localization walk's inner loop, vectorized: all hops of a candidate
    path are tested with one AND/compare sweep instead of a Python loop.
    """
    hf = np.asarray(hop_filters, dtype=np.uint64)
    if hf.size == 0:
        return -1
    t = np.uint64(tag)
    miss = (hf & t) != hf
    if not miss.any():
        return -1
    return int(miss.argmax())
