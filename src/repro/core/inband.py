"""In-band VeriDP state encoding — the packet format of Section 5.

The paper carries three fields inside each sampled packet:

* ``marker`` — one bit in the IP TOS field ("whether the packet is sampled
  for verification"),
* ``tag`` — the 16-bit Bloom filter, in the Tag Control Information (TCI)
  of the **first** (outer, 802.1ad S-) VLAN tag,
* ``inport`` — the 14-bit entry-port id (8-bit switch + 6-bit port), in
  the TCI of the **second** (inner, C-) VLAN tag.

This module packs/unpacks those bytes exactly as they would sit on the
wire, so the encoding constraints (16-bit tag ceiling, 14-bit port space,
TCI layout with PCP/DEI bits) are exercised by real serialisation rather
than assumed.  The double-tag stack is 8 bytes::

    [TPID 0x88A8][TCI = tag] [TPID 0x8100][TCI = inport (low 14 bits)]
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "InbandState",
    "encode_vlan_stack",
    "decode_vlan_stack",
    "set_marker",
    "get_marker",
    "TPID_OUTER",
    "TPID_INNER",
    "VLAN_STACK_BYTES",
]

#: 802.1ad service-tag TPID (the outer tag of a QinQ stack).
TPID_OUTER = 0x88A8
#: 802.1Q customer-tag TPID (the inner tag).
TPID_INNER = 0x8100
#: Size of the double-tag stack on the wire.
VLAN_STACK_BYTES = 8

#: The TOS bit used as the sampling marker (one of the two reserved bits).
_MARKER_BIT = 0x01

_STACK = struct.Struct(">HHHH")


@dataclass(frozen=True)
class InbandState:
    """The VeriDP in-band fields of one sampled packet."""

    marker: bool
    tag: int
    inport_id: int

    def __post_init__(self) -> None:
        if not 0 <= self.tag <= 0xFFFF:
            raise ValueError(
                f"tag {self.tag:#x} does not fit the 16-bit VLAN TCI"
            )
        if not 0 <= self.inport_id < (1 << 14):
            raise ValueError(
                f"inport id {self.inport_id:#x} does not fit in 14 bits"
            )


def encode_vlan_stack(tag: int, inport_id: int) -> bytes:
    """Serialise tag + inport into the 8-byte double-VLAN stack."""
    state = InbandState(marker=True, tag=tag, inport_id=inport_id)  # validates
    return _STACK.pack(TPID_OUTER, state.tag, TPID_INNER, state.inport_id)


def decode_vlan_stack(data: bytes) -> Tuple[int, int]:
    """Parse an 8-byte double-VLAN stack back into ``(tag, inport_id)``.

    Raises ``ValueError`` on wrong length or unexpected TPIDs (a packet
    without the VeriDP stack must not be misparsed as one).
    """
    if len(data) != VLAN_STACK_BYTES:
        raise ValueError(
            f"VLAN stack is {len(data)} bytes, expected {VLAN_STACK_BYTES}"
        )
    tpid_outer, tci_outer, tpid_inner, tci_inner = _STACK.unpack(data)
    if tpid_outer != TPID_OUTER or tpid_inner != TPID_INNER:
        raise ValueError(
            f"unexpected TPIDs {tpid_outer:#06x}/{tpid_inner:#06x}; "
            "not a VeriDP double-tag stack"
        )
    return tci_outer, tci_inner & 0x3FFF


def set_marker(tos: int, marker: bool) -> int:
    """Set/clear the sampling-marker bit in an IP TOS byte."""
    if not 0 <= tos <= 0xFF:
        raise ValueError(f"TOS byte out of range: {tos}")
    return (tos | _MARKER_BIT) if marker else (tos & ~_MARKER_BIT)


def get_marker(tos: int) -> bool:
    """Read the sampling-marker bit from an IP TOS byte."""
    if not 0 <= tos <= 0xFF:
        raise ValueError(f"TOS byte out of range: {tos}")
    return bool(tos & _MARKER_BIT)
