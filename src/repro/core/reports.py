"""Tag reports and the VeriDP wire formats (Section 5, "Packet format").

A *tag report* is the 4-tuple ``<inport, outport, header, tag>`` an exit (or
dropping, or TTL-expiring) switch sends to the VeriDP server, encapsulated in
a plain UDP packet in the paper.  This module provides:

* :class:`TagReport` — the in-memory report record,
* :class:`PortCodec` — the 14-bit port encoding (8-bit switch id + 6-bit
  local port id) carried in the second VLAN tag,
* :func:`pack_report` / :func:`unpack_report` — the UDP payload layout, so
  the simulated switches and server exchange real bytes and the encoding
  rules (field widths, drop-port sentinel) are actually exercised.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..netmodel.packet import Header
from ..netmodel.rules import DROP_PORT
from ..netmodel.topology import PortRef

__all__ = [
    "TagReport",
    "PortCodec",
    "ReportDecodeError",
    "Frame",
    "pack_report",
    "unpack_report",
    "REPORT_VERSION",
    "REPORT_SIZE",
    "payload_precheck",
]

REPORT_VERSION = 1


class ReportDecodeError(ValueError):
    """A wire payload could not be decoded into a :class:`TagReport`.

    Every decode failure — truncated payload, unknown version, unknown
    switch index, out-of-range port — surfaces as this one typed error, so
    ingestion paths can catch it without also swallowing programming bugs
    (it still subclasses :class:`ValueError` for older call sites).
    """


#: Local port id meaning ``⊥`` inside the 6-bit port field (all ones).
_WIRE_DROP_PORT = 0x3F
#: Maximum encodable real port id (⊥ steals the top code point).
MAX_PORT_ID = 0x3E
#: Maximum number of switches addressable by the 8-bit switch field.
MAX_SWITCHES = 0xFF


class PortCodec:
    """Bidirectional mapping between :class:`PortRef` and 14-bit wire ids.

    The paper encodes the entry port as 8 bits of switch id plus 6 bits of
    port id.  Switch ids are strings in our model, so the codec assigns each
    switch a stable small integer in first-registration order (the real
    system would use datapath ids).
    """

    def __init__(self, switch_ids: Iterable[str] = ()) -> None:
        self._index: Dict[str, int] = {}
        self._names: List[str] = []
        for sid in switch_ids:
            self.register(sid)

    def register(self, switch_id: str) -> int:
        """Assign (or return) the wire index of a switch."""
        index = self._index.get(switch_id)
        if index is None:
            if len(self._names) > MAX_SWITCHES:
                raise ValueError(
                    f"cannot register {switch_id!r}: 8-bit switch space exhausted"
                )
            index = len(self._names)
            self._index[switch_id] = index
            self._names.append(switch_id)
        return index

    def encode(self, ref: PortRef) -> int:
        """``PortRef -> 14-bit id``; ``⊥`` ports use the reserved port code."""
        try:
            switch_index = self._index[ref.switch]
        except KeyError:
            raise KeyError(f"switch {ref.switch!r} not registered in codec") from None
        if ref.port == DROP_PORT:
            port_code = _WIRE_DROP_PORT
        elif 0 <= ref.port <= MAX_PORT_ID:
            port_code = ref.port
        else:
            raise ValueError(
                f"port {ref.port} of {ref.switch} does not fit in 6 bits"
            )
        return (switch_index << 6) | port_code

    def decode(self, wire_id: int) -> PortRef:
        """``14-bit id -> PortRef``."""
        if not 0 <= wire_id < (1 << 14):
            raise ValueError(f"wire port id {wire_id} does not fit in 14 bits")
        switch_index = wire_id >> 6
        port_code = wire_id & 0x3F
        try:
            switch_id = self._names[switch_index]
        except IndexError:
            raise ValueError(f"unknown switch index {switch_index}") from None
        port = DROP_PORT if port_code == _WIRE_DROP_PORT else port_code
        return PortRef(switch_id, port)

    def __len__(self) -> int:
        return len(self._names)


@dataclass(frozen=True)
class TagReport:
    """The 4-tuple a reporting switch sends to the VeriDP server.

    ``outport.port == DROP_PORT`` reports a rule-level drop; ``ttl_expired``
    marks reports forced by the verification TTL hitting zero (loops).
    """

    inport: PortRef
    outport: PortRef
    header: Header
    tag: int
    ttl_expired: bool = False

    def __str__(self) -> str:
        flag = " (ttl-expired)" if self.ttl_expired else ""
        return f"report {self.inport} -> {self.outport} tag={self.tag:#06x}{flag}"


# UDP payload layout (big-endian):
#   version:1  flags:1  inport:2  outport:2  tag:8
#   src_ip:4  dst_ip:4  proto:1  src_port:2  dst_port:2
_REPORT_STRUCT = struct.Struct(">BBHHQ" + "IIBHH")
#: Exact wire size of one report payload; transports use it to pre-screen
#: datagrams (anything of a different length cannot possibly decode).
REPORT_SIZE = _REPORT_STRUCT.size
_FLAG_TTL_EXPIRED = 0x01


def pack_report(report: TagReport, codec: PortCodec) -> bytes:
    """Serialize a report to its UDP payload bytes."""
    if not 0 <= report.tag < (1 << 64):
        raise ValueError(f"tag {report.tag:#x} exceeds the 64-bit report field")
    flags = _FLAG_TTL_EXPIRED if report.ttl_expired else 0
    header = report.header
    return _REPORT_STRUCT.pack(
        REPORT_VERSION,
        flags,
        codec.encode(report.inport),
        codec.encode(report.outport),
        report.tag,
        header.src_ip,
        header.dst_ip,
        header.proto,
        header.src_port,
        header.dst_port,
    )


def unpack_report(payload: bytes, codec: PortCodec) -> TagReport:
    """Parse UDP payload bytes back into a :class:`TagReport`.

    Raises :class:`ReportDecodeError` for *any* malformed payload —
    truncation, oversize, unknown version, or port ids the codec cannot
    resolve — never a bare ``struct.error``/``KeyError``, so a daemon
    worker thread can treat decode failure as data, not as a crash.
    """
    if len(payload) != _REPORT_STRUCT.size:
        raise ReportDecodeError(
            f"report payload is {len(payload)} bytes, expected {_REPORT_STRUCT.size}"
        )
    try:
        (
            version,
            flags,
            inport_id,
            outport_id,
            tag,
            src_ip,
            dst_ip,
            proto,
            src_port,
            dst_port,
        ) = _REPORT_STRUCT.unpack(payload)
    except struct.error as exc:  # pragma: no cover - length already checked
        raise ReportDecodeError(f"undecodable report payload: {exc}") from None
    if version != REPORT_VERSION:
        raise ReportDecodeError(f"unsupported report version {version}")
    try:
        inport = codec.decode(inport_id)
        outport = codec.decode(outport_id)
    except (ValueError, KeyError, IndexError) as exc:
        raise ReportDecodeError(f"undecodable report port: {exc}") from None
    return TagReport(
        inport=inport,
        outport=outport,
        header=Header(
            src_ip=src_ip,
            dst_ip=dst_ip,
            proto=proto,
            src_port=src_port,
            dst_port=dst_port,
        ),
        tag=tag,
        ttl_expired=bool(flags & _FLAG_TTL_EXPIRED),
    )


class Frame:
    """A contiguous run of wire-format report rows, handled as one unit.

    The batched ingestion path (socket drain loop -> queue -> verifier)
    moves reports around as frames so a report only becomes an individual
    ``bytes`` object on error/salvage paths.  A frame is a window
    ``[start, stop)`` of ``REPORT_SIZE``-byte rows over a shared buffer:
    partial admission (overflow policies) narrows the window instead of
    copying, and ``tenants`` — when set by the quota queue — carries the
    per-row tenant attribution aligned to *absolute* row indexes of
    ``data`` so evictions can release the right occupancy slot.
    """

    __slots__ = ("data", "start", "stop", "tenants")

    def __init__(
        self,
        data: bytes,
        start: int = 0,
        stop: Optional[int] = None,
        tenants: Optional[Tuple[Optional[str], ...]] = None,
    ) -> None:
        nrows, rem = divmod(len(data), REPORT_SIZE)
        if rem:
            raise ValueError(
                f"frame length {len(data)} is not a multiple of {REPORT_SIZE}"
            )
        if stop is None:
            stop = nrows
        if not 0 <= start <= stop <= nrows:
            raise ValueError(f"bad frame window [{start}, {stop}) over {nrows} rows")
        self.data = data
        self.start = start
        self.stop = stop
        self.tenants = tenants

    @property
    def count(self) -> int:
        """Number of rows still in the window."""
        return self.stop - self.start

    def payload(self) -> bytes:
        """The window's rows as one contiguous bytes object (zero-copy when
        the window spans the whole underlying buffer)."""
        if self.start == 0 and self.stop * REPORT_SIZE == len(self.data):
            data = self.data
            return data if isinstance(data, bytes) else bytes(data)
        return bytes(self.data[self.start * REPORT_SIZE : self.stop * REPORT_SIZE])

    def row(self, i: int) -> bytes:
        """Row ``i`` (relative to the window start) as bytes — salvage path."""
        if not 0 <= i < self.count:
            raise IndexError(f"row {i} out of range for {self.count}-row frame")
        off = (self.start + i) * REPORT_SIZE
        return bytes(self.data[off : off + REPORT_SIZE])

    def rows(self) -> "Iterable[bytes]":
        """Iterate the window's rows as individual bytes objects."""
        for i in range(self.count):
            yield self.row(i)

    def row_tenant(self, i: int) -> Optional[str]:
        """Tenant attributed to row ``i`` of the window (None if unstamped)."""
        if self.tenants is None:
            return None
        return self.tenants[self.start + i]

    def split(self, n: int) -> "Frame":
        """Carve the first ``n`` window rows into a new frame (shared buffer)
        and advance this frame's window past them."""
        if not 0 <= n <= self.count:
            raise ValueError(f"cannot split {n} rows off a {self.count}-row frame")
        head = Frame.__new__(Frame)
        head.data = self.data
        head.start = self.start
        head.stop = self.start + n
        head.tenants = self.tenants
        self.start += n
        return head

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Frame({self.count} rows [{self.start}:{self.stop}])"


def payload_precheck(payload: bytes) -> Optional[str]:
    """Codec-free screen of a raw datagram; ``None`` means plausibly valid.

    Transports use this at the socket edge to route payloads that *cannot*
    decode (wrong length, unknown version byte) straight to dead-lettering
    without spending a queue slot or a worker decode on them.  It is a
    necessary check only — payloads that pass may still fail
    :func:`unpack_report` (e.g. an out-of-range switch index).
    """
    if len(payload) != REPORT_SIZE:
        return f"wrong size {len(payload)} (a wire report is {REPORT_SIZE} bytes)"
    if payload[0] != REPORT_VERSION:
        return f"unsupported report version {payload[0]}"
    return None
