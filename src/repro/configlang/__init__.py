"""A mini router-configuration language (the paper's Cisco-config front end).

The paper builds its Stanford path table from Cisco IOS configuration files
(Section 4.1).  This package provides the equivalent toolchain for the
reproduction: an IOS-flavoured text format for static routes, numbered ACLs
and interface bindings, with a parser (:mod:`~repro.configlang.parser`),
a writer (:mod:`~repro.configlang.writer`) and a directory loader/exporter
(:mod:`~repro.configlang.loader`) that round-trip whole scenarios.
"""

from .loader import TOPOLOGY_FILE, export_network, load_network
from .parser import (
    AclStatement,
    ConfigError,
    RouteStatement,
    SwitchConfig,
    parse_config,
)
from .writer import UnrepresentableError, write_config

__all__ = [
    "parse_config",
    "write_config",
    "load_network",
    "export_network",
    "SwitchConfig",
    "RouteStatement",
    "AclStatement",
    "ConfigError",
    "UnrepresentableError",
    "TOPOLOGY_FILE",
]
