"""Parser for the mini router-configuration language.

The paper's Stanford experiments start from Cisco IOS configuration files,
"specify[ing] forwarding rules, in-bound ACLs, out-bound ACLs, VLAN, etc.",
which are compiled into port predicates (Section 4.1, following [56]).
Real IOS is a jungle; this module implements the faithful core the paper
actually consumes — static routes, numbered ACLs, and per-interface ACL
bindings — in an IOS-flavoured syntax:

.. code-block:: text

    hostname boza
    !
    ! static routes: destination prefix -> egress interface
    ip route 171.64.0.0/16 port1
    ip route 172.20.10.32/27 port3
    ip route 10.9.0.0/16 drop
    !
    ! numbered ACLs, first-match, implicit deny
    access-list 101 deny ip any 10.0.0.0/8
    access-list 101 permit tcp 171.64.0.0/16 any eq 22
    access-list 101 permit ip any any
    !
    interface port1
      ip access-group 101 in
    interface port3
      ip access-group 101 out

Semantics:

* routes use longest-prefix match (priority = prefix length, as real FIBs),
* ``access-list`` entries are first-match with an implicit trailing deny,
* ``ip access-group <id> in|out`` binds an ACL to an interface direction.

:func:`parse_config` returns a :class:`SwitchConfig`;
:meth:`SwitchConfig.apply_to` installs it into a
:class:`~repro.netmodel.topology.SwitchInfo`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bdd.headerspace import parse_prefix
from ..netmodel.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP
from ..netmodel.rules import Acl, AclEntry, Drop, FlowRule, Forward, Match
from ..netmodel.topology import SwitchInfo

__all__ = ["ConfigError", "RouteStatement", "AclStatement", "SwitchConfig", "parse_config"]

_PROTO_NAMES = {"ip": None, "tcp": PROTO_TCP, "udp": PROTO_UDP, "icmp": PROTO_ICMP}
_PORT_RE = re.compile(r"^port(\d+)$")


class ConfigError(ValueError):
    """A syntax or semantic error in a configuration file."""

    def __init__(self, line_no: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_no}: {reason}: {line.strip()!r}")
        self.line_no = line_no
        self.reason = reason


@dataclass(frozen=True)
class RouteStatement:
    """One ``ip route`` line."""

    prefix: Tuple[int, int]
    out_port: Optional[int]  # None = drop route

    @property
    def priority(self) -> int:
        """Longest-prefix-match as priority: /24 beats /16."""
        return self.prefix[1]


@dataclass(frozen=True)
class AclStatement:
    """One ``access-list`` line."""

    acl_id: int
    permit: bool
    match: Match


@dataclass
class SwitchConfig:
    """The parsed content of one router's configuration file."""

    hostname: str = ""
    routes: List[RouteStatement] = field(default_factory=list)
    acls: Dict[int, List[AclStatement]] = field(default_factory=dict)
    # interface port -> (direction, acl id)
    bindings: List[Tuple[int, str, int]] = field(default_factory=list)

    def apply_to(self, info: SwitchInfo) -> List[FlowRule]:
        """Install routes and ACL bindings into a switch's tables.

        Returns the created flow rules (so a controller can replay them on
        its channel).  Routes become dst-prefix rules at priority =
        prefix length; bound ACLs become first-match
        :class:`~repro.netmodel.rules.Acl` objects with implicit deny.
        """
        rules: List[FlowRule] = []
        for route in self.routes:
            action = Forward(route.out_port) if route.out_port is not None else Drop()
            rule = FlowRule(
                route.priority, Match(dst_prefix=route.prefix), action
            )
            info.flow_table.add(rule)
            rules.append(rule)
        for port, direction, acl_id in self.bindings:
            statements = self.acls.get(acl_id)
            if statements is None:
                raise ConfigError(
                    0, f"ip access-group {acl_id} {direction}",
                    f"interface port{port} binds undefined access-list {acl_id}",
                )
            acl = Acl(
                [AclEntry(s.match, s.permit) for s in statements],
                default_permit=False,  # Cisco's implicit deny
            )
            target = info.in_acl if direction == "in" else info.out_acl
            target[port] = acl
        return rules


def _parse_port(token: str, line_no: int, line: str) -> int:
    matched = _PORT_RE.match(token)
    if not matched:
        raise ConfigError(line_no, line, f"bad interface name {token!r}")
    port = int(matched.group(1))
    if port <= 0:
        raise ConfigError(line_no, line, "interface numbers start at 1")
    return port


def _parse_endpoint(token: str, line_no: int, line: str) -> Optional[Tuple[int, int]]:
    """``any`` or ``a.b.c.d/len`` (or a bare host address)."""
    if token == "any":
        return None
    try:
        return parse_prefix(token)
    except ValueError as exc:
        raise ConfigError(line_no, line, f"bad address {token!r} ({exc})") from None


def parse_config(text: str) -> SwitchConfig:
    """Parse one configuration file's text into a :class:`SwitchConfig`."""
    config = SwitchConfig()
    current_interface: Optional[int] = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("!", 1)[0].rstrip()
        stripped = line.strip()
        if not stripped:
            continue
        tokens = stripped.split()
        keyword = tokens[0]

        if keyword == "hostname":
            if len(tokens) != 2:
                raise ConfigError(line_no, raw, "hostname takes one argument")
            config.hostname = tokens[1]
            current_interface = None

        elif keyword == "interface":
            if len(tokens) != 2:
                raise ConfigError(line_no, raw, "interface takes one argument")
            current_interface = _parse_port(tokens[1], line_no, raw)

        elif stripped.startswith("ip access-group"):
            if current_interface is None:
                raise ConfigError(
                    line_no, raw, "ip access-group outside an interface block"
                )
            if len(tokens) != 4 or tokens[3] not in ("in", "out"):
                raise ConfigError(
                    line_no, raw, "expected: ip access-group <id> in|out"
                )
            try:
                acl_id = int(tokens[2])
            except ValueError:
                raise ConfigError(line_no, raw, "ACL id must be an integer") from None
            config.bindings.append((current_interface, tokens[3], acl_id))

        elif stripped.startswith("ip route"):
            current_interface = None
            if len(tokens) != 4:
                raise ConfigError(
                    line_no, raw, "expected: ip route <prefix> <portN|drop>"
                )
            prefix = _parse_endpoint(tokens[2], line_no, raw)
            if prefix is None:
                raise ConfigError(line_no, raw, "route destination cannot be 'any'")
            if tokens[3] == "drop":
                config.routes.append(RouteStatement(prefix, None))
            else:
                config.routes.append(
                    RouteStatement(prefix, _parse_port(tokens[3], line_no, raw))
                )

        elif keyword == "access-list":
            current_interface = None
            config.acls.setdefault(_acl_id(tokens, line_no, raw), []).append(
                _parse_acl_entry(tokens, line_no, raw)
            )

        else:
            raise ConfigError(line_no, raw, f"unknown statement {keyword!r}")

    return config


def _acl_id(tokens: List[str], line_no: int, raw: str) -> int:
    if len(tokens) < 3:
        raise ConfigError(line_no, raw, "truncated access-list")
    try:
        return int(tokens[1])
    except ValueError:
        raise ConfigError(line_no, raw, "ACL id must be an integer") from None


def _parse_acl_entry(tokens: List[str], line_no: int, raw: str) -> AclStatement:
    # access-list <id> permit|deny <proto> <src> <dst> [eq <dport>]
    if len(tokens) < 6:
        raise ConfigError(
            line_no, raw,
            "expected: access-list <id> permit|deny <proto> <src> <dst> [eq <port>]",
        )
    acl_id = _acl_id(tokens, line_no, raw)
    verdict = tokens[2]
    if verdict not in ("permit", "deny"):
        raise ConfigError(line_no, raw, f"bad ACL action {verdict!r}")
    proto_name = tokens[3]
    if proto_name not in _PROTO_NAMES:
        raise ConfigError(line_no, raw, f"unknown protocol {proto_name!r}")
    src = _parse_endpoint(tokens[4], line_no, raw)
    dst = _parse_endpoint(tokens[5], line_no, raw)
    dst_port = None
    rest = tokens[6:]
    if rest:
        if len(rest) != 2 or rest[0] != "eq":
            raise ConfigError(line_no, raw, "trailing tokens; expected 'eq <port>'")
        try:
            dst_port = int(rest[1])
        except ValueError:
            raise ConfigError(line_no, raw, "eq port must be an integer") from None
        if not 0 <= dst_port <= 0xFFFF:
            raise ConfigError(line_no, raw, "eq port out of range")
    match = Match(
        src_prefix=src,
        dst_prefix=dst,
        proto=_PROTO_NAMES[proto_name],
        dst_port_range=(dst_port, dst_port) if dst_port is not None else None,
    )
    return AclStatement(acl_id=acl_id, permit=(verdict == "permit"), match=match)
