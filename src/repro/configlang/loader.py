"""Load whole networks from configuration directories.

A *config directory* is the on-disk form of a network the way the paper's
toolchain consumed the Stanford backbone: a ``topology.json`` (structure +
addressing, see :mod:`repro.topologies.io`) plus one ``<switch>.cfg`` per
router.  :func:`load_network` parses everything and pushes the rules
through a real controller channel, so a VeriDP server and data plane
attached to the returned scenario see the same FlowMod stream they would
in a live deployment.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..netmodel.rules import FlowRule
from ..topologies.base import Scenario, wire_scenario
from ..topologies.io import topology_from_dict
from .parser import ConfigError, SwitchConfig, parse_config
from .writer import write_config

__all__ = ["load_network", "export_network", "TOPOLOGY_FILE"]

TOPOLOGY_FILE = "topology.json"


def load_network(directory: str) -> Scenario:
    """Build a fully wired scenario from a config directory.

    Every switch in ``topology.json`` must have a matching ``<id>.cfg``;
    extra config files are rejected (they indicate a stale directory).
    """
    import json

    topo_path = os.path.join(directory, TOPOLOGY_FILE)
    if not os.path.exists(topo_path):
        raise FileNotFoundError(f"no {TOPOLOGY_FILE} in {directory}")
    with open(topo_path) as handle:
        topo, subnets, host_ips = topology_from_dict(json.load(handle))

    configs: Dict[str, SwitchConfig] = {}
    for switch_id in sorted(topo.switches):
        cfg_path = os.path.join(directory, f"{switch_id}.cfg")
        if not os.path.exists(cfg_path):
            raise FileNotFoundError(f"missing config file {cfg_path}")
        with open(cfg_path) as handle:
            config = parse_config(handle.read())
        if config.hostname and config.hostname != switch_id:
            raise ConfigError(
                0, cfg_path,
                f"hostname {config.hostname!r} does not match file name",
            )
        configs[switch_id] = config

    stray = [
        name
        for name in os.listdir(directory)
        if name.endswith(".cfg") and name[: -len(".cfg")] not in topo.switches
    ]
    if stray:
        raise ValueError(f"config files for unknown switches: {sorted(stray)}")

    scenario = wire_scenario(
        topo, subnets, host_ips, install_routes=False,
        notes=f"loaded from {directory}",
    )
    # Apply each config through the controller so the FlowMods hit the
    # channel (and thus any attached data plane / VeriDP server).
    for switch_id, config in sorted(configs.items()):
        staging = type(topo.switch(switch_id))(switch_id)  # scratch SwitchInfo
        rules = config.apply_to(staging)
        for rule in rules:
            scenario.controller.install(switch_id, rule)
        info = topo.switch(switch_id)
        info.in_acl.update(staging.in_acl)
        info.out_acl.update(staging.out_acl)
    return scenario


def export_network(scenario: Scenario, directory: str) -> List[str]:
    """Write a scenario out as a config directory; returns written paths.

    The inverse of :func:`load_network` for networks whose rules fit the
    config language (plain destination routes + ACLs).
    """
    from ..topologies.io import save_scenario

    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    topo_path = os.path.join(directory, TOPOLOGY_FILE)
    save_scenario(scenario, topo_path)
    written.append(topo_path)
    for switch_id in sorted(scenario.topo.switches):
        path = os.path.join(directory, f"{switch_id}.cfg")
        with open(path, "w") as handle:
            handle.write(write_config(scenario.topo.switch(switch_id)))
        written.append(path)
    return written
