"""Emit configuration files from a switch's logical state.

The inverse of :mod:`repro.configlang.parser`: serialise a
:class:`~repro.netmodel.topology.SwitchInfo`'s destination-prefix routes and
ACLs back into the mini-IOS text format, so whole scenarios can be exported
as config directories (and re-imported bit-for-bit — round-trip tested).

Only the config-language-expressible subset is serialisable: dst-prefix
``Forward``/``Drop`` rules and ACLs whose entries fit the
``proto/src/dst/eq-port`` shape.  Anything richer (ingress-pinned waypoint
rules, rewrites, port ranges) raises ``UnrepresentableError`` rather than
silently dropping semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bdd.headerspace import format_ipv4
from ..netmodel.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP
from ..netmodel.rules import Acl, Drop, Forward, Match
from ..netmodel.topology import SwitchInfo

__all__ = ["UnrepresentableError", "write_config"]

_PROTO_TO_NAME = {None: "ip", PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}


class UnrepresentableError(ValueError):
    """The switch state does not fit the config language."""


def _format_prefix(prefix: Optional[Tuple[int, int]]) -> str:
    if prefix is None:
        return "any"
    value, plen = prefix
    return f"{format_ipv4(value)}/{plen}"


def _acl_entry_line(acl_id: int, entry) -> str:
    match = entry.match
    if (
        match.in_port is not None
        or match.src_port_range is not None
    ):
        raise UnrepresentableError(
            f"ACL match {match.describe()} uses fields outside the config language"
        )
    proto = _PROTO_TO_NAME.get(match.proto)
    if proto is None:
        raise UnrepresentableError(f"protocol {match.proto} has no config name")
    suffix = ""
    if match.dst_port_range is not None:
        lo, hi = match.dst_port_range
        if lo != hi:
            raise UnrepresentableError(
                f"port range {match.dst_port_range} is not expressible (eq only)"
            )
        suffix = f" eq {lo}"
    verdict = "permit" if entry.permit else "deny"
    return (
        f"access-list {acl_id} {verdict} {proto} "
        f"{_format_prefix(match.src_prefix)} {_format_prefix(match.dst_prefix)}"
        f"{suffix}"
    )


def write_config(info: SwitchInfo) -> str:
    """Serialise one switch's routes + ACLs to config text."""
    lines: List[str] = [f"hostname {info.switch_id}", "!"]

    # Routes: dst-prefix rules.  The config language implies longest-prefix
    # match, so the switch's priorities must *agree with* LPM wherever two
    # prefixes overlap (equal-priority disjoint prefixes are fine).
    routes = info.flow_table.sorted_rules()
    for rule in routes:
        match = rule.match
        if (
            match.src_prefix is not None
            or match.proto is not None
            or match.src_port_range is not None
            or match.dst_port_range is not None
            or match.in_port is not None
            or match.dst_prefix is None
        ):
            raise UnrepresentableError(
                f"rule {rule.describe()} is not a plain destination route"
            )
    for i, a in enumerate(routes):
        for b in routes[i + 1 :]:
            va, pa = a.match.dst_prefix
            vb, pb = b.match.dst_prefix
            shorter = min(pa, pb)
            overlap = shorter == 0 or (va >> (32 - shorter)) == (vb >> (32 - shorter))
            if not overlap or pa == pb:
                continue
            # a precedes b in lookup order; LPM demands the longer wins.
            if pa < pb:
                raise UnrepresentableError(
                    f"rules {a.describe()} and {b.describe()}: priority order "
                    "contradicts longest-prefix match, not expressible"
                )
    for rule in routes:
        match = rule.match
        if isinstance(rule.action, Forward):
            target = f"port{rule.action.port}"
        elif isinstance(rule.action, Drop):
            target = "drop"
        else:
            raise UnrepresentableError(
                f"rule {rule.describe()}: action not expressible"
            )
        lines.append(f"ip route {_format_prefix(match.dst_prefix)} {target}")
    lines.append("!")

    # ACLs: deterministically numbered per (direction, port).
    acl_ids: Dict[Tuple[str, int], int] = {}
    next_id = 101
    bindings: List[Tuple[int, str, int]] = []
    for direction, table in (("in", info.in_acl), ("out", info.out_acl)):
        for port in sorted(table):
            acl_ids[(direction, port)] = next_id
            bindings.append((port, direction, next_id))
            next_id += 1

    for direction, table in (("in", info.in_acl), ("out", info.out_acl)):
        for port in sorted(table):
            acl: Acl = table[port]
            if acl.default_permit:
                raise UnrepresentableError(
                    f"{direction} ACL on port{port}: the config language has an "
                    "implicit deny; append an explicit 'permit ip any any' entry"
                )
            acl_id = acl_ids[(direction, port)]
            for entry in acl.entries:
                lines.append(_acl_entry_line(acl_id, entry))
    if acl_ids:
        lines.append("!")

    for port, direction, acl_id in bindings:
        lines.append(f"interface port{port}")
        lines.append(f"  ip access-group {acl_id} {direction}")
    lines.append("")
    return "\n".join(lines)
