"""Baseline systems the paper positions VeriDP against (Sections 3.1 & 7).

* :mod:`repro.baselines.atpg`     — reachability probing (ATPG [57]):
  checks probe *reception* only, blind to path-dependent policies,
* :mod:`repro.baselines.monocle`  — per-rule probing (Monocle [41]):
  exact rule-presence tests, but probe generation limits update rates,
* :mod:`repro.baselines.netsight` — per-hop postcards (NetSight [29]):
  exact histories at per-hop message cost.

Each is a faithful miniature: enough mechanism to measure the comparative
claims (what each system can detect, and at what overhead) in
``benchmarks/test_baseline_comparison.py``.
"""

from .atpg import AtpgProber, AtpgReport, Probe
from .monocle import MonocleProber, MonocleReport, RuleProbe
from .netsight import (
    NetSightCollector,
    PacketHistory,
    POSTCARD_BYTES,
    Postcard,
)

__all__ = [
    "AtpgProber",
    "AtpgReport",
    "Probe",
    "MonocleProber",
    "MonocleReport",
    "RuleProbe",
    "NetSightCollector",
    "PacketHistory",
    "Postcard",
    "POSTCARD_BYTES",
]
