"""A reachability-probing baseline in the style of ATPG [57].

ATPG generates a minimal set of probe packets that exercises every rule and
checks that each probe is *received* where expected.  Crucially it inspects
only reception, not the path taken — the limitation the paper's Section 3.1
and Section 7 dwell on: a probe that arrives via the wrong route (waypoint
bypassed, TE split collapsed) still counts as a pass.

Implementation notes:

* probe generation derives one *representative* header per deliverable
  path-table entry (:func:`repro.probe.headers.representative_header`, the
  same deterministic cube-extraction the active prober uses), then greedily
  drops probes that add no new hop coverage — a faithful miniature of
  ATPG's rule-covering test packet selection,
* :meth:`AtpgProber.run` injects every probe and compares only the
  delivery status and exit port against expectation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.pathtable import PathTable, PathTableBuilder
from ..dataplane.network import DataPlaneNetwork, DeliveryStatus
from ..netmodel.hops import Hop
from ..netmodel.packet import Header
from ..netmodel.rules import DROP_PORT
from ..netmodel.topology import PortRef

__all__ = ["Probe", "AtpgProber", "AtpgReport"]


@dataclass(frozen=True)
class Probe:
    """One test packet: where it enters and where it must come out."""

    entry: PortRef
    header: Header
    expected_exit: PortRef
    covers: Tuple[Hop, ...]


@dataclass
class AtpgReport:
    """Outcome of one probing round."""

    sent: int = 0
    passed: int = 0
    failures: List[Probe] = field(default_factory=list)

    @property
    def detected_fault(self) -> bool:
        """ATPG's verdict: did any probe miss its expected exit?"""
        return bool(self.failures)

    def __str__(self) -> str:
        return f"ATPG: {self.passed}/{self.sent} probes passed"


class AtpgProber:
    """Generate and run reachability probes against a data plane."""

    def __init__(self, builder: PathTableBuilder, table: PathTable) -> None:
        self.builder = builder
        self.table = table
        self.generation_time_s = 0.0
        self.probes: List[Probe] = self._generate()

    def _generate(self) -> List[Probe]:
        """Greedy hop-covering probe selection from the path table."""
        from ..probe.headers import representative_header

        started = time.perf_counter()
        hs = self.builder.hs
        candidates: List[Probe] = []
        for inport, outport, entry in self.table.all_entries():
            if outport.port == DROP_PORT:
                continue  # ATPG probes test reachability, not drops
            header = representative_header(hs, entry.headers)
            if header is None:
                continue
            candidates.append(
                Probe(
                    entry=inport,
                    header=Header(**header),
                    expected_exit=outport,
                    covers=entry.hops,
                )
            )
        # Greedy set cover over hops: prefer probes covering more new hops.
        candidates.sort(key=lambda p: len(p.covers), reverse=True)
        covered: Set[Hop] = set()
        probes: List[Probe] = []
        for probe in candidates:
            new_hops = set(probe.covers) - covered
            if new_hops:
                probes.append(probe)
                covered |= new_hops
        self.generation_time_s = time.perf_counter() - started
        return probes

    def run(self, net: DataPlaneNetwork) -> AtpgReport:
        """Inject all probes; check reception only (ATPG's test)."""
        report = AtpgReport()
        for probe in self.probes:
            report.sent += 1
            result = net.inject(probe.entry, probe.header)
            received_ok = (
                result.status == DeliveryStatus.DELIVERED
                and result.exit_port == probe.expected_exit
            )
            if received_ok:
                report.passed += 1
            else:
                report.failures.append(probe)
        return report

    def covered_hops(self) -> Set[Hop]:
        """Hops exercised by the probe set (the coverage metric)."""
        covered: Set[Hop] = set()
        for probe in self.probes:
            covered |= set(probe.covers)
        return covered
