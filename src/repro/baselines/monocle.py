"""A rule-presence probing baseline in the style of Monocle [41].

Monocle checks whether a specific rule is installed in a switch's flow
table by crafting a probe that (a) matches the rule under test and (b) is
guaranteed *not* to be claimed by any other rule of the switch, then
observing which port the probe leaves on.  Probe *generation* is the hard
part — the published system needs ~43 seconds for 10K rules — and is what
prevents Monocle from tracking fast rule churn (the paper's §3.1 critique).

Our generator does the same work with BDDs: for rule ``R`` it computes::

    exclusive(R) = match(R) ∧ ¬(∨ higher-priority matches)
                            ∧ ¬(∨ overlapping same/lower-priority matches)

and samples a concrete header from it.  Rules whose exclusive set is empty
are *untestable* (fully shadowed), which Monocle reports as well.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bdd.headerspace import HeaderSpace
from ..dataplane.switch import DataPlaneSwitch
from ..netmodel.packet import Header
from ..netmodel.rules import DROP_PORT, FlowRule, FlowTable

__all__ = ["RuleProbe", "MonocleProber", "MonocleReport"]


@dataclass(frozen=True)
class RuleProbe:
    """A probe pinned to exactly one rule of one switch."""

    switch_id: str
    rule_id: int
    header: Header
    in_port: int
    expected_port: int


@dataclass
class MonocleReport:
    """Outcome of probing one switch's table."""

    tested: int = 0
    confirmed: int = 0
    missing_or_modified: List[RuleProbe] = field(default_factory=list)
    untestable_rules: List[int] = field(default_factory=list)

    @property
    def detected_fault(self) -> bool:
        """Monocle's verdict for this switch."""
        return bool(self.missing_or_modified)

    def __str__(self) -> str:
        return (
            f"Monocle: {self.confirmed}/{self.tested} rules confirmed, "
            f"{len(self.untestable_rules)} untestable"
        )


class MonocleProber:
    """Generate per-rule probes for one switch and execute them."""

    def __init__(
        self,
        switch_id: str,
        table: FlowTable,
        hs: Optional[HeaderSpace] = None,
        probe_in_port: int = 1,
    ) -> None:
        self.switch_id = switch_id
        self.hs = hs or HeaderSpace()
        self.probe_in_port = probe_in_port
        self.generation_time_s = 0.0
        self.untestable: List[int] = []
        self.probes: List[RuleProbe] = self._generate(table)

    def _generate(self, table: FlowTable) -> List[RuleProbe]:
        started = time.perf_counter()
        hs = self.hs
        bdd = hs.bdd
        rules = [
            r
            for r in table.sorted_rules()
            if r.match.in_port is None or r.match.in_port == self.probe_in_port
        ]
        skipped = {
            r.rule_id
            for r in table.sorted_rules()
            if r.match.in_port is not None and r.match.in_port != self.probe_in_port
        }
        self.untestable.extend(sorted(skipped))
        match_bdds = [r.match.to_bdd(hs) for r in rules]
        probes: List[RuleProbe] = []
        for index, rule in enumerate(rules):
            # 1. The probe must actually trigger this rule: subtract every
            #    higher-precedence match.
            exclusive = match_bdds[index]
            for higher in range(index):
                exclusive = bdd.diff(exclusive, match_bdds[higher])
                if exclusive == hs.empty:
                    break
            if exclusive == hs.empty:
                self.untestable.append(rule.rule_id)  # fully shadowed
                continue
            # 2. The probe must be *distinguishing*: if this rule were
            #    absent, the switch must output it somewhere else.  Resolve
            #    where the exclusive region falls through to.
            distinguishable = hs.empty
            remaining = exclusive
            for lower in range(index + 1, len(rules)):
                claimed = bdd.and_(remaining, match_bdds[lower])
                if claimed != hs.empty:
                    if rules[lower].output_port() != rule.output_port():
                        distinguishable = bdd.or_(distinguishable, claimed)
                    remaining = bdd.diff(remaining, claimed)
                    if remaining == hs.empty:
                        break
            # Fall-through to table miss (DROP) is distinguishing unless
            # the rule itself drops.
            if rule.output_port() != DROP_PORT:
                distinguishable = bdd.or_(distinguishable, remaining)
            if distinguishable == hs.empty:
                self.untestable.append(rule.rule_id)
                continue
            header = hs.sample_header(distinguishable)
            probes.append(
                RuleProbe(
                    switch_id=self.switch_id,
                    rule_id=rule.rule_id,
                    header=Header(**header),
                    in_port=self.probe_in_port,
                    expected_port=rule.output_port(),
                )
            )
        self.generation_time_s = time.perf_counter() - started
        return probes

    def run(self, switch: DataPlaneSwitch) -> MonocleReport:
        """Fire every probe at the (physical) switch and compare egress."""
        report = MonocleReport(untestable_rules=list(self.untestable))
        for probe in self.probes:
            report.tested += 1
            actual = switch.forward(probe.header, probe.in_port)
            if actual == probe.expected_port:
                report.confirmed += 1
            else:
                report.missing_or_modified.append(probe)
        return report
