"""A postcard-collection baseline in the style of NetSight [29].

NetSight has every switch emit a *postcard* — (switch, in_port, out_port,
header digest) — for **every packet at every hop**, and a collector that
reassembles exact packet histories.  Detection and localization are then
trivial (the collector sees the literal path), but "since each packet will
trigger a postcard at each hop, NetSight will incur a huge volume of
postcards traffic on the data plane" (Section 7).

This module implements the collector and the per-hop postcard stream so
the overhead comparison against VeriDP's single sampled tag report per
packet can be measured rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.pathtable import PathTableBuilder
from ..netmodel.hops import Hop
from ..netmodel.packet import Header
from ..netmodel.topology import PortRef

__all__ = ["Postcard", "PacketHistory", "NetSightCollector", "POSTCARD_BYTES"]

#: Wire size of one postcard: the paper's design compresses to ~40B
#: (truncated header + switch/port ids + version); we count 40.
POSTCARD_BYTES = 40


@dataclass(frozen=True)
class Postcard:
    """One per-hop record emitted by a switch for one packet."""

    packet_id: int
    hop: Hop
    header: Header


@dataclass
class PacketHistory:
    """The collector's reassembled journey of one packet."""

    packet_id: int
    header: Header
    hops: List[Hop] = field(default_factory=list)

    def path(self) -> Tuple[Hop, ...]:
        """The exact hop sequence (postcards arrive in order here)."""
        return tuple(self.hops)


class NetSightCollector:
    """Collects postcards and reconstructs + checks packet histories."""

    def __init__(self, builder: Optional[PathTableBuilder] = None) -> None:
        self.builder = builder
        self._histories: Dict[int, PacketHistory] = {}
        self.postcards_received = 0

    # -- ingestion ---------------------------------------------------------

    def receive(self, postcard: Postcard) -> None:
        """Ingest one postcard."""
        history = self._histories.get(postcard.packet_id)
        if history is None:
            history = PacketHistory(postcard.packet_id, postcard.header)
            self._histories[postcard.packet_id] = history
        history.hops.append(postcard.hop)
        self.postcards_received += 1

    def record_walk(self, packet_id: int, header: Header, hops: List[Hop]) -> None:
        """Convenience: emit one postcard per hop of a finished walk."""
        for hop in hops:
            self.receive(Postcard(packet_id, hop, header))

    # -- queries ---------------------------------------------------------

    def history(self, packet_id: int) -> Optional[PacketHistory]:
        """The assembled history of one packet, if any postcards arrived."""
        return self._histories.get(packet_id)

    def histories(self) -> List[PacketHistory]:
        """All packet histories."""
        return list(self._histories.values())

    def traffic_bytes(self) -> int:
        """Total postcard bytes shipped to the collector."""
        return self.postcards_received * POSTCARD_BYTES

    def check_history(self, packet_id: int) -> Optional[bool]:
        """Compare a history against the control-plane expected path.

        Requires a builder; returns ``None`` when the packet is unknown.
        Detection here is exact — NetSight's strength — at the cost of the
        per-hop postcard volume the caller can read off
        :meth:`traffic_bytes`.
        """
        if self.builder is None:
            raise ValueError("collector needs a PathTableBuilder to check histories")
        history = self._histories.get(packet_id)
        if history is None:
            return None
        if not history.hops:
            return False
        entry_port = PortRef(history.hops[0].switch, history.hops[0].in_port)
        expected = self.builder.expected_path(entry_port, history.header.as_dict())
        return tuple(expected) == history.path()
