"""Fault injection: the Section 2.2 taxonomy as first-class operations.

Each fault is a small dataclass with an ``apply(network)`` method mutating
the data plane only — the controller's logical view stays intact, which is
precisely the control-data plane gap VeriDP exists to detect.

| Fault class            | Paper cause                                    |
|------------------------|------------------------------------------------|
| DropRuleInstall        | lack of data-plane acknowledgement; sw bugs    |
| ModifyRuleOutput       | external modification (dpctl / compromised OS) |
| DeleteRule             | external modification; bad rule replacement    |
| InjectRule             | external rule insertion (ill-inserted R2, §3.1)|
| IgnorePriorities       | premature switch implementation (ProCurve)     |
| KillSwitch             | hardware failure (acknowledged blind spot)     |
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..netmodel.rules import DROP_PORT, FlowRule, Forward
from .network import DataPlaneNetwork

__all__ = [
    "Fault",
    "DropRuleInstall",
    "ModifyRuleOutput",
    "DeleteRule",
    "InjectRule",
    "IgnorePriorities",
    "KillSwitch",
    "random_misforward_fault",
]


class Fault:
    """Base class so campaigns can treat faults uniformly."""

    def apply(self, network: DataPlaneNetwork) -> None:
        """Mutate the data plane."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable description for experiment logs."""
        return repr(self)


@dataclass
class DropRuleInstall(Fault):
    """The switch silently ignores the (future) install of one rule.

    Must be applied *before* the controller sends the FlowMod.
    """

    switch_id: str
    rule_id: int

    def apply(self, network: DataPlaneNetwork) -> None:
        network.switch(self.switch_id).blacklist_install(self.rule_id)

    def describe(self) -> str:
        return f"{self.switch_id}: silently ignore install of rule {self.rule_id}"


@dataclass
class ModifyRuleOutput(Fault):
    """An installed rule's output port is rewritten out-of-band."""

    switch_id: str
    rule_id: int
    new_port: int

    def apply(self, network: DataPlaneNetwork) -> None:
        network.switch(self.switch_id).external_modify_output(
            self.rule_id, self.new_port
        )

    def describe(self) -> str:
        target = "⊥" if self.new_port == DROP_PORT else str(self.new_port)
        return f"{self.switch_id}: rule {self.rule_id} output rewritten to {target}"


@dataclass
class DeleteRule(Fault):
    """An installed rule disappears out-of-band."""

    switch_id: str
    rule_id: int

    def apply(self, network: DataPlaneNetwork) -> None:
        network.switch(self.switch_id).external_delete(self.rule_id)

    def describe(self) -> str:
        return f"{self.switch_id}: rule {self.rule_id} deleted out-of-band"


@dataclass
class InjectRule(Fault):
    """A rule the controller never sent appears in the physical table."""

    switch_id: str
    rule: FlowRule

    def apply(self, network: DataPlaneNetwork) -> None:
        network.switch(self.switch_id).external_insert(self.rule)

    def describe(self) -> str:
        return f"{self.switch_id}: foreign rule injected ({self.rule.describe()})"


@dataclass
class IgnorePriorities(Fault):
    """The switch resolves overlapping rules by *lowest* priority."""

    switch_id: str

    def apply(self, network: DataPlaneNetwork) -> None:
        network.switch(self.switch_id).ignore_priority = True

    def describe(self) -> str:
        return f"{self.switch_id}: rule priorities ignored"


@dataclass
class KillSwitch(Fault):
    """Hardware failure: the switch swallows packets and sends no reports."""

    switch_id: str

    def apply(self, network: DataPlaneNetwork) -> None:
        network.switch(self.switch_id).dead = True

    def describe(self) -> str:
        return f"{self.switch_id}: hardware failure (silent)"


def random_misforward_fault(
    network: DataPlaneNetwork,
    rng: random.Random,
    switch_ids: Optional[Sequence[str]] = None,
) -> Optional[ModifyRuleOutput]:
    """Pick a random installed forwarding rule and rewire it to a wrong port.

    This is the fault generator of the Section 6.3 experiments: "select a
    random rule from a random switch, and change its output port to a
    different one".  Returns ``None`` if no eligible rule exists.
    """
    candidates = []
    pool = switch_ids if switch_ids is not None else sorted(network.switches)
    for sid in pool:
        switch = network.switch(sid)
        for rule in switch.table:
            if isinstance(rule.action, Forward):
                wrong_ports = sorted(switch.ports - {rule.action.port})
                if wrong_ports:
                    candidates.append((sid, rule.rule_id, wrong_ports))
    if not candidates:
        return None
    sid, rule_id, wrong_ports = rng.choice(candidates)
    fault = ModifyRuleOutput(sid, rule_id, rng.choice(wrong_ports))
    fault.apply(network)
    return fault
