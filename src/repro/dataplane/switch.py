"""A simulated data-plane switch: the physical flow table (``R'``).

Each :class:`DataPlaneSwitch` holds its own copy of the flow table, populated
from FlowMods.  The whole point of VeriDP is that this copy can *diverge*
from the controller's logical table, so the switch exposes exactly the
misbehaviours catalogued in Section 2.2:

* **silently ignored installs** (lack of data-plane acknowledgement /
  software bugs) — via an install blacklist,
* **priority-less lookup** (premature implementations such as the HP
  ProCurve 5406zl) — via :attr:`ignore_priority`,
* **external rule modification/insertion/deletion** (dpctl, compromised
  switch OS) — via the ``external_*`` methods that bypass the FlowMod path,
* **hardware death** — via :attr:`dead` (packets vanish, no tag reports;
  the paper's acknowledged blind spot).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..netmodel.packet import Header
from ..netmodel.rules import DROP_PORT, Drop, FlowRule, FlowTable, Forward, GotoTable, Rewrite

__all__ = ["DataPlaneSwitch", "PortCounters"]


@dataclass
class PortCounters:
    """Per-port traffic counters (the SNMP ifTable miniature)."""

    rx_packets: int = 0
    rx_bytes: int = 0
    tx_packets: int = 0
    tx_bytes: int = 0


class DataPlaneSwitch:
    """One switch's data-plane state: physical table plus fault flags."""

    def __init__(self, switch_id: str, ports: Set[int]) -> None:
        self.switch_id = switch_id
        self.ports = set(ports)
        self.table = FlowTable()
        self.ignore_priority = False
        self.dead = False
        self._install_blacklist: Set[int] = set()
        self.ignored_installs: List[int] = []
        self.port_counters: Dict[int, PortCounters] = defaultdict(PortCounters)
        self.dropped_packets = 0

    # -- FlowMod path (the legitimate channel) ---------------------------

    def blacklist_install(self, rule_id: int) -> None:
        """Arrange for the next install/modify of ``rule_id`` to be ignored."""
        self._install_blacklist.add(rule_id)

    def install(self, rule: FlowRule) -> bool:
        """Apply a FlowMod ADD/MODIFY; returns False if silently ignored."""
        if rule.rule_id in self._install_blacklist:
            self.ignored_installs.append(rule.rule_id)
            return False
        self.table.add(rule)
        return True

    def uninstall(self, rule_id: int) -> bool:
        """Apply a FlowMod DELETE; missing rules are ignored (idempotent)."""
        if rule_id in self._install_blacklist:
            self.ignored_installs.append(rule_id)
            return False
        if rule_id in self.table:
            self.table.remove(rule_id)
            return True
        return False

    # -- external (out-of-band) mutations ----------------------------------

    def external_modify_output(self, rule_id: int, new_port: int) -> FlowRule:
        """Rewrite an installed rule's action behind the controller's back.

        ``new_port == DROP_PORT`` turns the rule into a black hole.
        """
        rule = self.table.get(rule_id)
        if rule is None:
            raise KeyError(f"rule {rule_id} not installed on {self.switch_id}")
        action = Drop() if new_port == DROP_PORT else Forward(new_port)
        mutated = FlowRule(
            rule.priority, rule.match, action,
            rule_id=rule.rule_id, table_id=rule.table_id,
        )
        self.table.add(mutated)
        return mutated

    def external_delete(self, rule_id: int) -> FlowRule:
        """Delete an installed rule behind the controller's back."""
        return self.table.remove(rule_id)

    def external_insert(self, rule: FlowRule) -> None:
        """Insert a rule that the controller never sent."""
        self.table.add(rule)

    # -- forwarding -----------------------------------------------------------

    def process(self, header: Header, in_port: int) -> "tuple[int, Header]":
        """The OpenFlow pipeline: resolve output port *and* apply actions.

        Returns ``(out_port, header_after_actions)``.  ``out_port`` is
        ``DROP_PORT`` on an explicit drop, a table miss, or an action
        pointing at a nonexistent port.  ``Rewrite``/``GotoTable`` set-field
        actions modify the header; ``GotoTable`` continues matching in a
        later table (the §3.3 "cascade of flow tables"; a non-forward jump
        drops, per the OpenFlow constraint).  With :attr:`ignore_priority`
        set, the *lowest*-priority matching rule wins in every table —
        modelling the ProCurve bug (Section 2.2).
        """
        table_id = 0
        while True:
            rule = self._match_in_table(header, in_port, table_id)
            if rule is None:
                return DROP_PORT, header
            if isinstance(rule.action, GotoTable):
                header = self._apply_sets(header, rule.action.effective_sets())
                if rule.action.table_id <= table_id:
                    return DROP_PORT, header  # invalid backward jump
                table_id = rule.action.table_id
                continue
            out = rule.output_port()
            if out != DROP_PORT and out not in self.ports:
                return DROP_PORT, header
            if isinstance(rule.action, Rewrite):
                header = self._apply_sets(header, rule.action.effective_sets())
            return out, header

    def _match_in_table(
        self, header: Header, in_port: int, table_id: int
    ) -> Optional[FlowRule]:
        if not self.ignore_priority:
            return self.table.lookup(header, in_port, table_id)
        candidates = [
            r
            for r in self.table.sorted_rules(table_id)
            if r.match.matches(header, in_port)
        ]
        return candidates[-1] if candidates else None

    @staticmethod
    def _apply_sets(header: Header, sets) -> Header:
        if not sets:
            return header
        return header.with_(**dict(sets))

    def forward(self, header: Header, in_port: int) -> int:
        """Output port only (convenience over :meth:`process`)."""
        out_port, _ = self.process(header, in_port)
        return out_port

    def account(self, in_port: int, out_port: int, size: int) -> None:
        """Update the port counters for one forwarded/dropped packet."""
        rx = self.port_counters[in_port]
        rx.rx_packets += 1
        rx.rx_bytes += size
        if out_port == DROP_PORT:
            self.dropped_packets += 1
            return
        tx = self.port_counters[out_port]
        tx.tx_packets += 1
        tx.tx_bytes += size

    def __str__(self) -> str:
        flags = []
        if self.dead:
            flags.append("dead")
        if self.ignore_priority:
            flags.append("no-priority")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"DataPlaneSwitch({self.switch_id}, {len(self.table)} rules){suffix}"
