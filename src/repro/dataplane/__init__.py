"""Data-plane substrate: simulated switches, the VeriDP pipeline, faults.

This package replaces the paper's Mininet/OVS testbed and ONetSwitch FPGA
prototype (see DESIGN.md, substitutions table).  It executes real flow-table
lookups per packet, runs Algorithm 1 verbatim beside them, serialises tag
reports to their UDP byte format, and exposes the Section 2.2 fault taxonomy
for injection experiments.  A sibling taxonomy in
:mod:`repro.dataplane.report_faults` perturbs the monitoring plane itself
(lost/duplicated/reordered/corrupted tag reports, stale replicas, worker
kills) for chaos campaigns against the verification daemons.
"""

from .faults import (
    DeleteRule,
    DropRuleInstall,
    Fault,
    IgnorePriorities,
    InjectRule,
    KillSwitch,
    ModifyRuleOutput,
    random_misforward_fault,
)
from .latency import HardwarePipelineModel, PAPER_NATIVE_POINTS, PAPER_PACKET_SIZES
from .report_faults import (
    BitFlipReports,
    Delivery,
    DuplicateReports,
    InjectionResult,
    LoseReports,
    ReorderReports,
    ReportPlaneFault,
    ReportStreamFault,
    ReportStreamFaultInjector,
    StaleReplica,
    TruncateReports,
    WorkerKill,
)
from .network import DataPlaneNetwork, DeliveryResult, DeliveryStatus
from .pipeline import PipelineResult, VeriDPPipeline
from .switch import DataPlaneSwitch

__all__ = [
    "DataPlaneNetwork",
    "DeliveryResult",
    "DeliveryStatus",
    "DataPlaneSwitch",
    "VeriDPPipeline",
    "PipelineResult",
    "Fault",
    "DropRuleInstall",
    "ModifyRuleOutput",
    "DeleteRule",
    "InjectRule",
    "IgnorePriorities",
    "KillSwitch",
    "random_misforward_fault",
    "ReportPlaneFault",
    "ReportStreamFault",
    "LoseReports",
    "DuplicateReports",
    "ReorderReports",
    "TruncateReports",
    "BitFlipReports",
    "StaleReplica",
    "WorkerKill",
    "Delivery",
    "InjectionResult",
    "ReportStreamFaultInjector",
    "HardwarePipelineModel",
    "PAPER_NATIVE_POINTS",
    "PAPER_PACKET_SIZES",
]
