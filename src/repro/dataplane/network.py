"""Network-wide data-plane simulation.

:class:`DataPlaneNetwork` wires one :class:`~repro.dataplane.switch.DataPlaneSwitch`
per topology switch to the control channel (installing FlowMods into the
*physical* tables) and to the VeriDP pipeline, then walks injected packets
switch-by-switch exactly as the wire would carry them: OpenFlow lookup →
VeriDP tagging → link traversal, until the packet exits the monitored
domain, is dropped, or its verification TTL expires.

Tag reports are serialised to their UDP payload bytes and handed to the
report sink — the same byte stream a modified OVS would send the VeriDP
server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..controlplane.messages import Barrier, Channel, FlowMod, FlowModOp, TableFlush
from ..core.bloom import BloomTagScheme
from ..core.reports import PortCodec, TagReport, pack_report
from ..netmodel.hops import Hop
from ..netmodel.packet import Header, Packet
from ..netmodel.rules import DROP_PORT, FlowTable
from ..netmodel.topology import PortRef, Topology
from .pipeline import VeriDPPipeline
from .switch import DataPlaneSwitch

__all__ = ["DataPlaneNetwork", "DeliveryResult", "DeliveryStatus"]


class DeliveryStatus:
    """Terminal states of a packet walk."""

    DELIVERED = "delivered"  # exited at an edge port
    DROPPED = "dropped"  # hit ⊥ (explicit drop / table miss / bad port)
    LOST = "lost"  # swallowed by a dead switch (no report possible)
    LOOPED = "looped"  # walk cut by the hop limit (forwarding loop)


@dataclass
class DeliveryResult:
    """Outcome of injecting one packet."""

    status: str
    hops: List[Hop] = field(default_factory=list)
    exit_port: Optional[PortRef] = None
    delivered_to: Optional[str] = None
    reports: List[TagReport] = field(default_factory=list)

    def path_string(self) -> str:
        """Readable hop sequence for logs."""
        return " -> ".join(str(hop) for hop in self.hops) or "(no hops)"


class DataPlaneNetwork:
    """The simulated data plane: physical switches + VeriDP pipelines."""

    def __init__(
        self,
        topo: Topology,
        channel: Channel,
        codec: Optional[PortCodec] = None,
        scheme: Optional[BloomTagScheme] = None,
        report_sink: Optional[Callable[[bytes], None]] = None,
        sampler_factory: Optional[Callable[[str], object]] = None,
    ) -> None:
        self.topo = topo
        self.codec = codec or PortCodec(sorted(topo.switches))
        self.scheme = scheme or BloomTagScheme()
        self.switches: Dict[str, DataPlaneSwitch] = {
            sid: DataPlaneSwitch(sid, set(info.ports))
            for sid, info in topo.switches.items()
        }
        self.pipeline = VeriDPPipeline(
            topo, self.codec, self.scheme, sampler_factory=sampler_factory
        )
        #: Where wire-format report bytes go.  Public and swappable: a
        #: repair transaction may need a synchronous sink while the normal
        #: path ships datagrams to a collector (see examples/production_deployment.py).
        self.report_sink = report_sink
        self.emitted_reports: List[TagReport] = []
        # Catch up on FlowMods sent before this data plane existed (scenario
        # builders install routes at construction time), then live-subscribe.
        for message in channel.history:
            self._on_message(message)
        channel.subscribe(self._on_message)

    # -- control channel ---------------------------------------------------

    def _on_message(self, message: object) -> None:
        if isinstance(message, FlowMod):
            switch = self.switches[message.switch_id]
            if switch.dead:
                return  # a dead switch processes nothing
            if message.op in (FlowModOp.ADD, FlowModOp.MODIFY):
                switch.install(message.rule)
            elif message.op is FlowModOp.DELETE:
                switch.uninstall(message.rule.rule_id)
        elif isinstance(message, TableFlush):
            switch = self.switches[message.switch_id]
            if not switch.dead:
                switch.table = FlowTable()
        elif isinstance(message, Barrier):
            pass  # ordering marker only; see messages.Barrier docstring

    # -- packet injection -----------------------------------------------------

    def inject_from_host(
        self,
        host_id: str,
        header: Header,
        size: int = 512,
        now: float = 0.0,
        force_sample: bool = False,
    ) -> DeliveryResult:
        """Send a packet from a host into its attachment port."""
        attach = self.topo.host_port(host_id)
        return self.inject(
            attach, header, size=size, now=now, force_sample=force_sample
        )

    def inject(
        self,
        entry: PortRef,
        header: Header,
        size: int = 512,
        now: float = 0.0,
        force_sample: bool = False,
    ) -> DeliveryResult:
        """Walk a packet through the network starting at an edge port.

        ``entry`` is the switch port the packet arrives on (the host side of
        an edge port).  The walk ends at an edge egress, a drop, a dead
        switch, or the safety hop cap (which flags a forwarding loop).
        ``force_sample`` injects the packet with the VeriDP marker pre-set
        (a verification probe), bypassing the entry sampler.
        """
        if not self.topo.is_edge_port(entry):
            raise ValueError(f"{entry} is not an edge port; packets enter at edges")
        packet = Packet(header=header, size=size)
        result = DeliveryResult(status=DeliveryStatus.DROPPED)
        current = entry
        hop_budget = self.pipeline.max_path_length

        while True:
            switch = self.switches[current.switch]
            if switch.dead:
                # Hardware failure: the packet vanishes and, crucially, no
                # tag report is ever emitted (the paper's blind spot).
                result.status = DeliveryStatus.LOST
                return result

            # The OpenFlow pipeline resolves the output AND applies actions
            # (rewrites); the VeriDP pipeline runs after it (Section 5:
            # "after all actions have been executed on a packet").
            out_port, packet.header = switch.process(packet.header, current.port)
            switch.account(current.port, out_port, packet.size)
            hop = Hop(current.port, current.switch, out_port)
            result.hops.append(hop)
            packet.hops_taken.append(hop)

            pipe = self.pipeline.process(
                current.switch, current.port, out_port, packet, now=now,
                force_sample=force_sample,
            )
            if pipe.report is not None:
                self._emit(pipe.report)
                result.reports.append(pipe.report)

            if out_port == DROP_PORT:
                result.status = DeliveryStatus.DROPPED
                result.exit_port = PortRef(current.switch, DROP_PORT)
                return result

            egress = PortRef(current.switch, out_port)
            if self.topo.is_edge_port(egress):
                result.status = DeliveryStatus.DELIVERED
                result.exit_port = egress
                result.delivered_to = self.topo.host_at(egress)
                return result

            peer = self.topo.link(egress)
            if peer is None:  # defensive: is_edge_port should have caught it
                result.status = DeliveryStatus.DELIVERED
                result.exit_port = egress
                return result

            hop_budget -= 1
            if hop_budget <= 0:
                result.status = DeliveryStatus.LOOPED
                result.exit_port = egress
                return result
            current = peer

    def _emit(self, report: TagReport) -> None:
        self.emitted_reports.append(report)
        if self.report_sink is not None:
            self.report_sink(pack_report(report, self.codec))

    # -- convenience -----------------------------------------------------------

    def switch(self, switch_id: str) -> DataPlaneSwitch:
        """The physical switch object (KeyError with context)."""
        try:
            return self.switches[switch_id]
        except KeyError:
            raise KeyError(
                f"unknown switch {switch_id!r}; have {sorted(self.switches)}"
            ) from None

    def drain_reports(self) -> List[TagReport]:
        """Return and clear the accumulated report objects."""
        reports = self.emitted_reports
        self.emitted_reports = []
        return reports

    def total_physical_rules(self) -> int:
        """Rules actually installed across all switches (R' size)."""
        return sum(len(s.table) for s in self.switches.values())

    def link_utilization(self) -> Dict[tuple, int]:
        """Bytes transmitted per physical link, both directions summed.

        Keys are the sorted ``(PortRef, PortRef)`` link pairs of the
        topology; values come from the transmit counters of both endpoint
        ports.  Lets experiments (e.g. the Figure 3 TE scenario) see the
        congestion picture VeriDP's verdicts explain.
        """
        usage: Dict[tuple, int] = {}
        for a, b in self.topo.internal_links():
            tx_a = self.switches[a.switch].port_counters[a.port].tx_bytes
            tx_b = self.switches[b.switch].port_counters[b.port].tx_bytes
            usage[(a, b)] = tx_a + tx_b
        return usage
