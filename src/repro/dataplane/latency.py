"""Hardware pipeline latency model (the Table 4 substitute).

The paper measures per-packet processing delay on ONetSwitch, an FPGA switch
clocked at 125 MHz, by counting CPU cycles: ``T = c * 0.008 us``.  We have no
FPGA, so we model the three pipeline components with cycle costs:

* the **native OpenFlow pipeline** is store-and-forward: a fixed lookup cost
  plus a per-byte streaming cost.  The default calibration interpolates the
  paper's measured native delays (128 B -> 4.32 us ... 1500 B -> 36.68 us),
  so the baseline row of Table 4 is reproduced exactly at the measured
  sizes and sensibly in between;
* the **sampling module** hashes the 5-tuple and probes the flow array —
  a size-independent ~19 cycles (0.15 us);
* the **tagging module** computes the hop Bloom filter and ORs it into the
  VLAN tag — a size-independent ~34 cycles (0.27 us).

The *shape* claims of Table 4 — both VeriDP stages constant in packet size,
overhead ratios shrinking as packets grow, tagging ≈ 2x sampling — follow
from the structure, not the calibration, which is the point of the
reproduction.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["HardwarePipelineModel", "PAPER_NATIVE_POINTS", "PAPER_PACKET_SIZES"]

#: Packet sizes (bytes) reported in Table 4.
PAPER_PACKET_SIZES: Tuple[int, ...] = (128, 256, 512, 1024, 1500)

#: The paper's measured native OpenFlow pipeline delays, in microseconds.
PAPER_NATIVE_POINTS: Tuple[Tuple[int, float], ...] = (
    (128, 4.32),
    (256, 7.33),
    (512, 19.89),
    (1024, 26.21),
    (1500, 36.68),
)

#: FPGA clock period in microseconds (125 MHz).
CYCLE_US = 0.008


@dataclass
class HardwarePipelineModel:
    """Cycle-level delay model of the ONetSwitch pipelines.

    ``sampling_cycles``/``tagging_cycles`` default to the paper's measured
    constants (~0.15 us and ~0.27 us at 125 MHz).  Native delay is linearly
    interpolated between calibration points and linearly extrapolated
    outside them.
    """

    sampling_cycles: int = 19
    tagging_cycles: int = 34
    native_points: Sequence[Tuple[int, float]] = PAPER_NATIVE_POINTS

    def __post_init__(self) -> None:
        if self.sampling_cycles <= 0 or self.tagging_cycles <= 0:
            raise ValueError("cycle costs must be positive")
        points = sorted(self.native_points)
        if len(points) < 2:
            raise ValueError("need at least two native calibration points")
        if any(size <= 0 for size, _ in points):
            raise ValueError("calibration sizes must be positive")
        self._sizes = [size for size, _ in points]
        self._delays = [delay for _, delay in points]

    # -- per-component delays ----------------------------------------------

    def native_delay(self, packet_size: int) -> float:
        """Native OpenFlow pipeline delay (us) for one packet."""
        if packet_size <= 0:
            raise ValueError(f"packet size must be positive, got {packet_size}")
        sizes, delays = self._sizes, self._delays
        if packet_size <= sizes[0]:
            i = 0
        elif packet_size >= sizes[-1]:
            i = len(sizes) - 2
        else:
            i = bisect.bisect_right(sizes, packet_size) - 1
        x0, x1 = sizes[i], sizes[i + 1]
        y0, y1 = delays[i], delays[i + 1]
        return y0 + (y1 - y0) * (packet_size - x0) / (x1 - x0)

    def sampling_delay(self, packet_size: int) -> float:
        """VeriDP sampling module delay (us) — size-independent by design."""
        if packet_size <= 0:
            raise ValueError(f"packet size must be positive, got {packet_size}")
        return self.sampling_cycles * CYCLE_US

    def tagging_delay(self, packet_size: int) -> float:
        """VeriDP tagging module delay (us) — size-independent by design."""
        if packet_size <= 0:
            raise ValueError(f"packet size must be positive, got {packet_size}")
        return self.tagging_cycles * CYCLE_US

    # -- Table 4 assembly --------------------------------------------------

    def sampling_overhead(self, packet_size: int) -> float:
        """``T2 / T1`` of Table 4 (fractional, not percent)."""
        return self.sampling_delay(packet_size) / self.native_delay(packet_size)

    def tagging_overhead(self, packet_size: int) -> float:
        """``T3 / T1`` of Table 4 (fractional, not percent)."""
        return self.tagging_delay(packet_size) / self.native_delay(packet_size)

    def entry_switch_delay(self, packet_size: int) -> float:
        """Total delay at an entry switch (native + sampling + tagging)."""
        return (
            self.native_delay(packet_size)
            + self.sampling_delay(packet_size)
            + self.tagging_delay(packet_size)
        )

    def internal_switch_delay(self, packet_size: int) -> float:
        """Total delay at a non-entry switch (native + tagging only).

        The paper notes sampling happens only at entry switches, so internal
        switches carry just the tagging cost.
        """
        return self.native_delay(packet_size) + self.tagging_delay(packet_size)

    def table4_rows(
        self, sizes: Sequence[int] = PAPER_PACKET_SIZES
    ) -> Dict[str, List[float]]:
        """The full Table 4 as column lists keyed by row name."""
        return {
            "native_us": [round(self.native_delay(s), 2) for s in sizes],
            "sampling_us": [round(self.sampling_delay(s), 2) for s in sizes],
            "sampling_overhead_pct": [
                round(100 * self.sampling_overhead(s), 2) for s in sizes
            ],
            "tagging_us": [round(self.tagging_delay(s), 2) for s in sizes],
            "tagging_overhead_pct": [
                round(100 * self.tagging_overhead(s), 2) for s in sizes
            ],
        }
