"""The per-switch VeriDP pipeline — Algorithm 1 of the paper.

The pipeline sits in the switch fast path *after* the OpenFlow pipeline has
chosen an output port, and is deliberately independent of the flow tables so
table corruption cannot corrupt tagging.  Per packet it:

1. at an edge *ingress* (entry switch): decides sampling, initialises
   ``tag = 0`` and ``ttl = MAX_PATH_LENGTH``, and stamps the 14-bit entry
   port id into the packet,
2. at every switch: ``tag <- tag ⊔ BF(in_port || switch || out_port)`` and
   ``ttl <- ttl - 1`` (marked packets only),
3. at an edge *egress*, on a drop (``y = ⊥``), or when TTL hits zero:
   emits a :class:`~repro.core.reports.TagReport` and pops the in-band state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.bloom import BloomTagScheme
from ..core.reports import PortCodec, TagReport
from ..core.sampling import AlwaysSampler
from ..netmodel.hops import Hop
from ..netmodel.packet import Packet
from ..netmodel.rules import DROP_PORT
from ..netmodel.topology import PortRef, Topology

__all__ = ["VeriDPPipeline", "PipelineResult"]


@dataclass
class PipelineResult:
    """What the pipeline did for one packet at one switch."""

    report: Optional[TagReport] = None
    sampled_here: bool = False
    tagged: bool = False


class VeriDPPipeline:
    """Network-wide collection of per-switch VeriDP pipelines.

    One instance serves every switch (the per-switch state is only the entry
    samplers); the data-plane network calls :meth:`process` once per hop with
    the OpenFlow pipeline's verdict.
    """

    def __init__(
        self,
        topo: Topology,
        codec: PortCodec,
        scheme: Optional[BloomTagScheme] = None,
        sampler_factory: Optional[Callable[[str], object]] = None,
        max_path_length: Optional[int] = None,
    ) -> None:
        self.topo = topo
        self.codec = codec
        self.scheme = scheme or BloomTagScheme()
        self.max_path_length = max_path_length or topo.diameter_bound()
        self._sampler_factory = sampler_factory or (lambda switch_id: AlwaysSampler())
        self._samplers: Dict[str, object] = {}

    def sampler_for(self, switch_id: str) -> object:
        """The entry-switch sampler (created on first use)."""
        sampler = self._samplers.get(switch_id)
        if sampler is None:
            sampler = self._sampler_factory(switch_id)
            self._samplers[switch_id] = sampler
        return sampler

    def process(
        self,
        switch_id: str,
        in_port: int,
        out_port: int,
        packet: Packet,
        now: float = 0.0,
        force_sample: bool = False,
    ) -> PipelineResult:
        """Run Algorithm 1 for one packet traversal of one switch.

        ``force_sample`` marks the packet at its entry switch regardless of
        (and without touching) the flow sampler — the behaviour of a probe
        injected with the marker bit pre-set in its TOS field.
        """
        result = PipelineResult()
        ingress = PortRef(switch_id, in_port)

        # Lines 1-3: entry-switch initialisation and sampling decision.
        if self.topo.is_edge_port(ingress):
            sampled = force_sample or self.sampler_for(switch_id).should_sample(
                packet.flow_key, now
            )
            if sampled:
                packet.marker = True
                packet.tag = self.scheme.empty_tag
                packet.ttl = self.max_path_length
                packet.inport_id = self.codec.encode(ingress)
                result.sampled_here = True
            else:
                packet.marker = False

        if not packet.marker:
            return result

        # Lines 4-5: tag update and TTL decrement.
        hop = Hop(in_port, switch_id, out_port)
        packet.tag = self.scheme.add(packet.tag, hop)
        if packet.ttl is not None:
            packet.ttl -= 1
        result.tagged = True

        # Lines 6-7: report on egress edge port, drop, or TTL expiry.
        egress = PortRef(switch_id, out_port)
        ttl_expired = packet.ttl is not None and packet.ttl <= 0
        if out_port == DROP_PORT or self.topo.is_edge_port(egress) or ttl_expired:
            result.report = TagReport(
                inport=self.codec.decode(packet.inport_id),
                outport=egress,
                header=packet.header,
                tag=packet.tag,
                ttl_expired=ttl_expired
                and out_port != DROP_PORT
                and not self.topo.is_edge_port(egress),
            )
            # The reporting switch pops the in-band state: an exiting packet
            # is delivered untagged, and a TTL-expired packet stops being
            # tracked (its one report already witnesses the loop).
            packet.marker = False
        return result
