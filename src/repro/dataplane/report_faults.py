"""Fault injection for the *monitoring plane itself*: the report path.

:mod:`repro.dataplane.faults` perturbs the forwarding plane — the thing
VeriDP watches.  This module is its sibling for the thing VeriDP *is*: the
tag-report stream from switches to the verifier, and the verifier's own
worker fleet.  SDNsec-style accountability (arXiv:1605.01944) and network
state fuzzing (arXiv:1904.08977) both argue the monitor must be exercised
under the same adversarial/lossy conditions as the network it monitors.

Two fault families:

* **Stream faults** (:class:`ReportStreamFault`) perturb a sequence of wire
  payloads the way a congested or adversarial transport would — loss,
  duplication, reordering, truncation, bit flips.  They are pure functions
  over the payload list, driven by a seeded RNG, and they record ground
  truth (which deliveries are corrupted, how many were lost/duplicated) so
  a chaos campaign can assert exact accounting afterwards,
* **Plane faults** (:class:`ReportPlaneFault`) attack the verification
  daemon: :class:`WorkerKill` SIGKILLs a shard worker mid-batch,
  :class:`StaleReplica` moves the path-table version under the daemon's
  compiled replicas without re-replication (the supervisor must
  resynchronise on the next restart).

:class:`ReportStreamFaultInjector` composes stream faults into one seeded
campaign and returns :class:`InjectionResult` — the perturbed deliveries
plus the ledger the assertions need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "ReportPlaneFault",
    "ReportStreamFault",
    "LoseReports",
    "DuplicateReports",
    "ReorderReports",
    "TruncateReports",
    "BitFlipReports",
    "StaleReplica",
    "WorkerKill",
    "Delivery",
    "InjectionResult",
    "ReportStreamFaultInjector",
]


class ReportPlaneFault:
    """Base class for faults against the monitoring plane itself."""

    def describe(self) -> str:
        """Human-readable description for experiment logs."""
        return repr(self)


@dataclass
class Delivery:
    """One payload as it leaves the faulty transport, with ground truth.

    ``origin`` indexes the payload in the pristine input stream (several
    deliveries may share an origin after duplication); ``corrupted`` marks
    payloads whose *bytes* were altered (truncation/bit flip), the only
    deliveries allowed to verify differently from a fault-free run.
    """

    payload: bytes
    origin: int
    corrupted: bool = False
    duplicate: bool = False


class ReportStreamFault(ReportPlaneFault):
    """A transport-level perturbation of the report stream."""

    def perturb(
        self, deliveries: List[Delivery], rng: random.Random
    ) -> List[Delivery]:
        """Return the perturbed delivery sequence (may mutate in place)."""
        raise NotImplementedError


@dataclass
class LoseReports(ReportStreamFault):
    """Each delivery is independently dropped with probability ``rate``.

    The paper's transport is plain UDP — loss is the baseline fault, and
    Section 4.5's detection-latency bound silently assumes it away.
    """

    rate: float = 0.05

    def perturb(self, deliveries, rng):
        return [d for d in deliveries if rng.random() >= self.rate]

    def describe(self) -> str:
        return f"lose reports (p={self.rate})"


@dataclass
class DuplicateReports(ReportStreamFault):
    """Each delivery is independently duplicated with probability ``rate``.

    UDP duplicates on retransmitting middleboxes; verification must be
    idempotent (a duplicated PASS report must not flip any verdict).
    """

    rate: float = 0.01

    def perturb(self, deliveries, rng):
        out: List[Delivery] = []
        for d in deliveries:
            out.append(d)
            if rng.random() < self.rate:
                out.append(
                    Delivery(d.payload, d.origin, corrupted=d.corrupted, duplicate=True)
                )
        return out

    def describe(self) -> str:
        return f"duplicate reports (p={self.rate})"


@dataclass
class ReorderReports(ReportStreamFault):
    """Deliveries are locally shuffled inside windows of ``window`` slots.

    With probability ``rate`` a window is shuffled; report verification is
    order-free by design, so reordering must be a pure no-op on verdicts.
    """

    rate: float = 0.1
    window: int = 16

    def perturb(self, deliveries, rng):
        out = list(deliveries)
        for start in range(0, len(out), self.window):
            if rng.random() < self.rate:
                chunk = out[start : start + self.window]
                rng.shuffle(chunk)
                out[start : start + self.window] = chunk
        return out

    def describe(self) -> str:
        return f"reorder reports (p={self.rate}, window={self.window})"


@dataclass
class TruncateReports(ReportStreamFault):
    """Each delivery is independently cut short with probability ``rate``.

    Truncated datagrams must dead-letter as decode failures — never crash
    a worker, never count as verified.
    """

    rate: float = 0.01

    def perturb(self, deliveries, rng):
        out = []
        for d in deliveries:
            if rng.random() < self.rate and len(d.payload) > 1:
                cut = rng.randrange(1, len(d.payload))
                out.append(
                    Delivery(d.payload[:cut], d.origin, corrupted=True,
                             duplicate=d.duplicate)
                )
            else:
                out.append(d)
        return out

    def describe(self) -> str:
        return f"truncate reports (p={self.rate})"


@dataclass
class BitFlipReports(ReportStreamFault):
    """Each delivery independently gets one flipped bit with prob ``rate``.

    A flipped bit may land anywhere — version byte (decode failure), port
    ids (unknown pair), tag or header bits (verdict flips).  The campaign's
    false-positive bound: corrupted deliveries may raise incidents, but
    their count caps the damage.
    """

    rate: float = 0.01

    def perturb(self, deliveries, rng):
        out = []
        for d in deliveries:
            if rng.random() < self.rate and d.payload:
                data = bytearray(d.payload)
                bit = rng.randrange(len(data) * 8)
                data[bit // 8] ^= 1 << (bit % 8)
                out.append(
                    Delivery(bytes(data), d.origin, corrupted=True,
                             duplicate=d.duplicate)
                )
            else:
                out.append(d)
        return out

    def describe(self) -> str:
        return f"bit-flip reports (p={self.rate})"


@dataclass
class StaleReplica(ReportPlaneFault):
    """The path table moves under the daemon's compiled worker replicas.

    Bumps :attr:`PathTable.version` on the daemon's server without
    re-replication — exactly the state a crashed-then-restarted worker
    must resynchronise against (the supervisor rebuilds the restarted
    shard from the current table and reloads the survivors).
    """

    def apply(self, daemon) -> None:
        daemon.server.table.version += 1

    def describe(self) -> str:
        return "path-table version moves under the compiled replicas"


@dataclass
class WorkerKill(ReportPlaneFault):
    """SIGKILL one shard worker of a :class:`ShardedVeriDPDaemon` mid-run."""

    shard: int = 0

    def apply(self, daemon) -> None:
        daemon.kill_worker(self.shard)

    def describe(self) -> str:
        return f"SIGKILL shard worker {self.shard}"


@dataclass
class InjectionResult:
    """The perturbed stream plus the ledger chaos assertions need."""

    deliveries: List[Delivery]
    original_count: int
    lost: int = 0
    duplicated: int = 0
    corrupted: int = 0

    @property
    def payloads(self) -> List[bytes]:
        return [d.payload for d in self.deliveries]

    @property
    def delivered(self) -> int:
        return len(self.deliveries)

    @property
    def uncorrupted(self) -> List[Delivery]:
        return [d for d in self.deliveries if not d.corrupted]

    def summary(self) -> str:
        return (
            f"{self.original_count} sent -> {self.delivered} delivered "
            f"({self.lost} lost, {self.duplicated} duplicated, "
            f"{self.corrupted} corrupted)"
        )


class ReportStreamFaultInjector:
    """Run a payload stream through a seeded pipeline of stream faults.

    Order matters and mirrors a real path: loss/duplication/reordering are
    transport behaviours, truncation/bit flips happen to whatever is still
    in flight.  The injector takes the faults in the order given.
    """

    def __init__(
        self,
        faults: Sequence[ReportStreamFault],
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        for fault in faults:
            if not isinstance(fault, ReportStreamFault):
                raise TypeError(
                    f"{fault!r} is not a ReportStreamFault (plane faults "
                    f"like WorkerKill are applied to the daemon, not the stream)"
                )
        self.faults = list(faults)
        self.rng = rng or random.Random(seed)

    def run(self, payloads: Sequence[bytes]) -> InjectionResult:
        deliveries = [Delivery(p, i) for i, p in enumerate(payloads)]
        for fault in self.faults:
            deliveries = fault.perturb(deliveries, self.rng)
        surviving_origins = {d.origin for d in deliveries}
        result = InjectionResult(
            deliveries=deliveries,
            original_count=len(payloads),
            lost=len(payloads) - len(surviving_origins),
            duplicated=sum(1 for d in deliveries if d.duplicate),
            corrupted=sum(1 for d in deliveries if d.corrupted),
        )
        return result
