#!/usr/bin/env python
"""Traffic-engineering monitoring — the paper's Figure 3 scenario.

The operator splits an aggregate evenly over two paths
``S1 -> S2 -> S4`` and ``S1 -> S3 -> S4`` (by source-port parity here).
Then the TE rules *fail at S1*: everything collapses onto the second path.
No packet is lost — reachability checks and ATPG-style probing stay green —
but the traffic-engineering intent is violated and the S1->S3 link heads
for congestion.  VeriDP sees the violation per-packet, because the tags of
half the flows stop matching their configured path.

Run:  python examples/traffic_engineering.py
"""

from collections import Counter

from repro.core import VeriDPServer
from repro.dataplane import DataPlaneNetwork, DeleteRule
from repro.netmodel import Match, Topology
from repro.topologies.base import wire_scenario


def build_diamond():
    """The paper's Figure 3 diamond: S1 feeds S4 via S2 or S3."""
    topo = Topology("te-diamond")
    for sid in ("S1", "S2", "S3", "S4"):
        topo.add_switch(sid, num_ports=3)
    topo.add_link("S1", 2, "S2", 1)
    topo.add_link("S1", 3, "S3", 1)
    topo.add_link("S2", 2, "S4", 2)
    topo.add_link("S3", 2, "S4", 3)
    topo.add_host("SRC", "S1", 1)
    topo.add_host("DST", "S4", 1)
    subnets = {"SRC": "10.0.1.0/24", "DST": "10.0.2.0/24"}
    ips = {"SRC": "10.0.1.1", "DST": "10.0.2.1"}
    return wire_scenario(topo, subnets, ips, install_routes=False)


def send_flows(scenario, net, count=64):
    """One packet per flow, varying source ports; returns per-path load."""
    load = Counter()
    for flow in range(count):
        header = scenario.header_between("SRC", "DST", src_port=1000 + flow)
        result = net.inject_from_host("SRC", header)
        via = next((h.switch for h in result.hops if h.switch in ("S2", "S3")), "?")
        load[via] += 1
    return load


def main() -> None:
    scenario = build_diamond()
    ctrl = scenario.controller

    # TE intent: a base path via S3 for the whole aggregate, plus a
    # higher-priority selector steering half the flows via S2.  Exactly the
    # Figure 3 structure: if the steering rule fails, *all* traffic slides
    # onto the S3 path.
    rules_b = ctrl.install_path(
        Match.build(dst="10.0.2.0/24"),
        ["S1", "S3", "S4"],
        entry_port=1,
        exit_port=1,
        priority=200,
    )
    rules_a = ctrl.install_path(
        Match.build(dst="10.0.2.0/24", src_port=(0, 1031)),
        ["S1", "S2", "S4"],
        entry_port=1,
        exit_port=1,
        priority=300,
    )

    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )

    load = send_flows(scenario, net)
    print(f"healthy split: via S2 = {load['S2']}, via S3 = {load['S3']}")
    print(f"incidents: {len(server.drain_incidents())}\n")

    # Fault (Figure 3): the path-A rule fails at S1; its traffic slides onto
    # the lower-priority path-B selector... here the only matching rule left.
    s1_path_a = next(r for r in net.switch("S1").table
                     if r.rule_id in {x.rule_id for x in rules_a})
    DeleteRule("S1", s1_path_a.rule_id).apply(net)
    print(f"fault: S1 TE rule {s1_path_a.rule_id} failed")

    load = send_flows(scenario, net)
    print(f"after fault: via S2 = {load['S2']}, via S3 = {load['S3']}"
          f"  (all eggs in one basket)")
    incidents = server.drain_incidents()
    print(f"VeriDP incidents: {len(incidents)} "
          f"(one per flow that left its configured path)")
    blamed = Counter(s for i in incidents for s in i.blamed_switches)
    print(f"blame tally: {dict(blamed)}")


if __name__ == "__main__":
    main()
