#!/usr/bin/env python
"""Monitoring through header rewrites — the paper's future work #1, running.

A gateway switch publishes a virtual IP (VIP) and NATs it to a backend
server.  The original VeriDP "cannot handle packet rewrites that will
change headers of packets when they are forwarded"; this reproduction
extends the path table with symbolic image/preimage through rewrite chains,
so NAT'd flows verify end-to-end.

The example shows: (1) healthy VIP traffic verifying against a path entry
whose exit-header set differs from its entry-header set, (2) a hijacked NAT
rule redirecting the VIP to a dead address — detected, (3) the documented
residual blind spot when the hijack target coincides with legitimate
traffic on the same hops.

Run:  python examples/nat_gateway.py
"""

from repro.bdd.headerspace import parse_ipv4
from repro.core import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.netmodel import FlowRule, Match
from repro.netmodel.packet import Header
from repro.netmodel.rules import Forward, Rewrite
from repro.topologies import build_linear

VIP = "198.51.100.10"
BACKEND = "10.0.2.1"  # H3 in the linear topology


def main() -> None:
    scenario = build_linear(3)
    ctrl = scenario.controller

    # S1 routes VIP traffic towards the gateway S2; S2 NATs VIP -> backend.
    ctrl.install("S1", FlowRule(300, Match.build(dst=f"{VIP}/32"), Forward(2)))
    nat_rule = ctrl.install(
        "S2",
        FlowRule(
            300,
            Match.build(dst=f"{VIP}/32"),
            Rewrite((("dst_ip", parse_ipv4(BACKEND)),), 2),
        ),
    )

    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )

    vip_header = Header.from_strings("10.0.0.1", VIP, 6, 40000, 443)
    print(f"client sends to VIP {VIP}:443")
    result = net.inject_from_host("H1", vip_header)
    exit_header = result.reports[0].header
    print(f"  delivered to {result.delivered_to}; exit header dst "
          f"{exit_header.dst_ip:#010x} (rewritten to {BACKEND})")
    print(f"  verification: {'PASS' if not server.incidents else 'FAIL'}")

    # Show the rewrite-aware path entry.
    inport = scenario.topo.host_port("H1")
    outport = scenario.topo.host_port("H3")
    entry = next(
        e for e in server.table.lookup(inport, outport) if e.rewrites
    )
    print(f"  path entry rewrites: {entry.rewrites}")

    # --- hijack to an unroutable address: detected ------------------------
    print(f"\nattacker rewires the NAT to 10.0.99.99 (no route)")
    hijacked = FlowRule(
        nat_rule.priority,
        nat_rule.match,
        Rewrite((("dst_ip", parse_ipv4("10.0.99.99")),), 2),
        rule_id=nat_rule.rule_id,
    )
    net.switch("S2").external_insert(hijacked)
    result = net.inject_from_host("H1", vip_header)
    incidents = server.drain_incidents()
    print(f"  delivery: {result.status}; incidents: {len(incidents)}")
    for incident in incidents:
        print(f"  VeriDP: {incident.verification.verdict.value}, "
              f"blamed {incident.blamed_switches}")

    # --- hijack to another host: the residual blind spot --------------------
    print(f"\nattacker rewires the NAT to H2's address instead")
    net.switch("S2").external_insert(
        FlowRule(
            nat_rule.priority,
            nat_rule.match,
            Rewrite((("dst_ip", parse_ipv4("10.0.1.1")),), 1),
            rule_id=nat_rule.rule_id,
        )
    )
    result = net.inject_from_host("H1", vip_header)
    incidents = server.drain_incidents()
    print(f"  delivery: to {result.delivered_to} (hijacked!), "
          f"incidents: {len(incidents)}")
    print("  -> rewrites erase header identity: when the forged output and "
          "hop sequence\n     coincide with legitimate traffic, tags cannot "
          "tell them apart (documented\n     limitation; see "
          "tests/core/test_rewrites.py::test_masquerade_limitation_documented)")


if __name__ == "__main__":
    main()
