#!/usr/bin/env python
"""Postmortem replay: reproduce a production incident offline, byte-exact.

A durable VeriDP server records everything it needs for a postmortem as it
runs: every applied control-plane change and every sampled tag report go
into a write-ahead log under ``--state-dir``, in one global sequence.

This example plays an on-call scenario end to end:

1. a monitored network runs a healthy traffic campaign;
2. an out-of-band fault rewires a switch rule in the *data plane only*
   (the controller, and therefore the path table, never hears about it);
3. the live server flags verification failures, then shuts down —
   taking its in-memory state with it;
4. an operator, later and on a different machine, reopens the state
   directory read-only and *replays* the logged stream: every incident
   reproduces at the exact WAL position it first occurred;
5. the operator bisects the log by sequence number to find the first bad
   report — the moment the network diverged from the controller's intent.

Run:  python examples/postmortem_replay.py
"""

import tempfile

from repro.core.reports import pack_report
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork, ModifyRuleOutput
from repro.persist import PersistentState
from repro.persist.replay import replay
from repro.topologies import build_linear


def record_campaign(state_dir: str):
    """Phase 1-3: the live, durable server and the fault injection."""
    scenario = build_linear(5)
    server = VeriDPServer(scenario.topo, state_dir=state_dir, fsync="interval")
    net = DataPlaneNetwork(scenario.topo, scenario.channel)

    print("=== live campaign ===")
    healthy = 0
    for src, dst in scenario.host_pairs():
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        for report in result.reports:
            server.receive_report_bytes(pack_report(report, net.codec))
            healthy += 1
    assert not server.incidents, "healthy traffic must verify clean"
    print(f"  {healthy} healthy reports verified "
          f"(WAL seq {server.persist.wal.last_seq})")

    # The out-of-band fault: S3's H1->H5 forwarding entry is rewired in
    # the data plane only, so the path table still believes the old route.
    header = scenario.header_between("H1", "H5")
    rule = net.switch("S3").table.lookup(header, 3)
    ModifyRuleOutput("S3", rule.rule_id, 1).apply(net)
    print("  [fault] S3 rule rewired out-of-band "
          f"(rule {rule.rule_id} now outputs to port 1)")

    for _ in range(3):
        result = net.inject_from_host("H1", header)
        for report in result.reports:
            server.receive_report_bytes(pack_report(report, net.codec))
    incidents = server.drain_incidents()
    print(f"  live server flagged {len(incidents)} incidents, e.g. "
          f"{incidents[0].verification.verdict.value}")
    print("  ...server crashes / shuts down; only the state dir survives")
    server.close()
    return scenario


def bisect_first_failure(state_dir: str, topo) -> int:
    """Binary-search the WAL for the earliest failing report.

    ``replay(stop_seq=mid)`` verifies only reports at or before ``mid``
    (control records are always applied — they are state, not events), so
    "does the prefix up to mid contain an incident?" is monotone.
    """
    with PersistentState(state_dir, read_only=True) as state:
        lo, hi = 1, state.wal.last_seq
    probes = 0
    while lo < hi:
        mid = (lo + hi) // 2
        with PersistentState(state_dir, read_only=True) as state:
            window = replay(state, topo, stop_seq=mid, localize=False)
        probes += 1
        verdict = "bad" if window.incidents else "clean"
        print(f"  probe stop_seq={mid:4d}: {verdict}")
        if window.incidents:
            hi = mid
        else:
            lo = mid + 1
    print(f"  first failure at WAL seq {lo} after {probes} probes")
    return lo


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="veridp-postmortem-") as state_dir:
        scenario = record_campaign(state_dir)

        print("\n=== offline replay (read-only) ===")
        with PersistentState(state_dir, read_only=True) as state:
            result = replay(state, scenario.topo)
        print(f"  {result.summary()}")
        for incident in result.incidents[:3]:
            print(f"  {incident}")

        print("\n=== bisecting the log ===")
        first_bad = bisect_first_failure(state_dir, scenario.topo)
        assert first_bad == result.first_failure_seq

        print("\n=== the culprit report, reproduced in isolation ===")
        with PersistentState(state_dir, read_only=True) as state:
            pinpoint = replay(
                state, scenario.topo,
                start_seq=first_bad, stop_seq=first_bad,
            )
        incident = pinpoint.incidents[0]
        blamed = incident.localization.blamed_switches()
        print(f"  {incident.verification}")
        print(f"  localization blames: {', '.join(blamed)}")
        assert "S3" in blamed, "replay must blame the rewired switch"
        print("\nThe fault that caused the 2am page is now a deterministic, "
              "sharable test case.")


if __name__ == "__main__":
    main()
