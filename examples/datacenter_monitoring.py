#!/usr/bin/env python
"""Continuous monitoring of a fat-tree datacenter with flow sampling.

A k=4 fat tree (20 switches, 16 hosts) carries a steady mix of flows.  The
entry switches sample per flow with interval ``T_s`` sized from the operator's
detection-latency budget (Section 4.5: ``T_s <= tau - T_a``), so only a
fraction of packets carry tags — the data-plane overhead story of Table 4.

Mid-run, a random aggregation-layer rule is corrupted.  The example shows:
the fault is caught by the *next sampled packet* of an affected flow (within
the latency budget), and Algorithm 4 pins the faulty switch.

Run:  python examples/datacenter_monitoring.py
"""

import random

from repro.core import VeriDPServer
from repro.core.sampling import FlowSampler, sampling_interval_for
from repro.dataplane import DataPlaneNetwork, HardwarePipelineModel, ModifyRuleOutput
from repro.topologies import build_fattree


def fault_on_active_flow(scenario, net, flows, rng):
    """Corrupt a mid-path rule actually used by one of the running flows."""
    src, dst = rng.choice([f for f in flows if len(f) == 2])
    probe = net.inject_from_host(src, scenario.header_between(src, dst))
    victim_hop = rng.choice(probe.hops[1:] or probe.hops)
    switch = net.switch(victim_hop.switch)
    rule = switch.table.lookup(
        scenario.header_between(src, dst), victim_hop.in_port
    )
    wrong = rng.choice(sorted(switch.ports - {rule.output_port()}))
    fault = ModifyRuleOutput(victim_hop.switch, rule.rule_id, wrong)
    fault.apply(net)
    return fault


def main() -> None:
    rng = random.Random(42)
    scenario = build_fattree(k=4)

    # Operator budget: detect faults within tau=2.0s; flows pause at most
    # T_a=0.5s between packets -> sample each flow at least every 1.5s.
    tau, max_gap = 2.0, 0.5
    interval = sampling_interval_for(tau, max_gap)
    print(f"latency budget tau={tau}s, max inter-arrival={max_gap}s "
          f"-> sampling interval T_s={interval}s")

    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo,
        scenario.channel,
        report_sink=server.receive_report_bytes,
        sampler_factory=lambda sid: FlowSampler(default_interval=interval),
    )

    # Steady workload: 40 long-lived flows, one packet each per 0.25s tick.
    flows = [rng.sample(scenario.topo.hosts(), 2) for _ in range(40)]
    fault = None
    fault_time = 5.0
    detected_at = None

    for tick in range(60):
        now = tick * 0.25
        if fault is None and now >= fault_time:
            fault = fault_on_active_flow(scenario, net, flows, rng)
            print(f"\n[t={now:5.2f}s] FAULT INJECTED: {fault.describe()}")
        for src, dst in flows:
            net.inject_from_host(
                src, scenario.header_between(src, dst), now=now
            )
        incidents = server.drain_incidents()
        if incidents and detected_at is None:
            detected_at = now
            blamed = sorted({s for i in incidents for s in i.blamed_switches})
            print(f"[t={now:5.2f}s] DETECTED after "
                  f"{now - fault_time:.2f}s (budget {tau}s); blamed: {blamed}")

    sampler = net.pipeline.sampler_for("e0_0")
    print(f"\nsampling rate at e0_0: {100 * sampler.sampling_rate:.1f}% "
          f"of packets tagged")

    # What that sampling costs on the wire (the Table 4 model):
    model = HardwarePipelineModel()
    size = 512
    print(f"per-packet delay at {size}B: native {model.native_delay(size):.2f}us, "
          f"+tagging {model.tagging_delay(size):.2f}us "
          f"({100 * model.tagging_overhead(size):.2f}%), "
          f"+sampling {model.sampling_delay(size):.2f}us "
          f"({100 * model.sampling_overhead(size):.2f}%, entry switches only)")

    assert detected_at is not None, "fault went undetected"
    assert detected_at - fault_time <= tau, "latency budget violated"
    print("detection latency within budget ✓")


if __name__ == "__main__":
    main()
