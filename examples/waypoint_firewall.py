#!/usr/bin/env python
"""Waypoint traversal monitoring — the paper's Figure 2 scenario.

The security policy says: traffic from the client H1 to the server H2 must
traverse a firewall middlebox.  The controller compiles the policy into
ingress-pinned rules that hair-pin the traffic through the middlebox port.

Then the high-priority waypoint rule *fails at the data plane* (the paper's
"consider the high-priority rules R1 and/or R2 fail"): packets fall back to
the plain shortest-path rule and reach the server **without crossing the
firewall** — invisible to any controller-side verifier, but caught by
VeriDP because the packet's Bloom tag no longer matches the path table.

Run:  python examples/waypoint_firewall.py
"""

from repro.core import VeriDPServer
from repro.dataplane import DataPlaneNetwork, DeleteRule
from repro.netmodel import Match, Topology
from repro.topologies.base import wire_scenario


def build_network():
    """H1 - S1 - S2 - S3 - H2, with a firewall middlebox hanging off S2."""
    topo = Topology("waypoint")
    topo.add_switch("S1", num_ports=3)
    topo.add_switch("S2", num_ports=4)
    topo.add_switch("S3", num_ports=3)
    topo.add_link("S1", 2, "S2", 1)
    topo.add_link("S2", 2, "S3", 1)
    topo.add_host("H1", "S1", 1)
    topo.add_host("H2", "S3", 2)
    topo.add_middlebox("FW", "S2", 3)
    subnets = {"H1": "10.0.1.0/24", "H2": "10.0.2.0/24"}
    ips = {"H1": "10.0.1.1", "H2": "10.0.2.1"}
    return wire_scenario(topo, subnets, ips, install_routes=True)


def main() -> None:
    scenario = build_network()
    ctrl = scenario.controller

    # Policy: client->server traffic must traverse the firewall.
    waypoint_rules = ctrl.install_waypoint_path(
        Match.build(src="10.0.1.0/24", dst="10.0.2.0/24"), "H1", "FW", "H2"
    )
    print(f"installed {len(waypoint_rules)} waypoint rules")

    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )

    header = scenario.header_between("H1", "H2")
    result = net.inject_from_host("H1", header)
    crossings = sum(1 for hop in result.hops if hop.switch == "S2")
    print(f"healthy: {result.status}, S2 crossed {crossings}x (firewall on path)")
    print(f"  path: {result.path_string()}")
    assert not server.incidents

    # Fault: the waypoint rule at S2 vanishes from the data plane (R1 fails).
    waypoint_ids = {r.rule_id for r in waypoint_rules}
    s2_waypoint = next(
        r
        for r in net.switch("S2").table
        if r.rule_id in waypoint_ids and r.match.in_port == 1
    )
    DeleteRule("S2", s2_waypoint.rule_id).apply(net)
    print(f"\nfault: S2 waypoint rule {s2_waypoint.rule_id} lost at the data plane")

    result = net.inject_from_host("H1", header)
    crossings = sum(1 for hop in result.hops if hop.switch == "S2")
    print(f"after fault: {result.status}, S2 crossed {crossings}x -> FIREWALL BYPASSED")
    print(f"  path: {result.path_string()}")

    for incident in server.drain_incidents():
        print(f"VeriDP: {incident.verification.verdict.value}, "
              f"blamed {incident.blamed_switches}")
        assert "S2" in incident.blamed_switches


if __name__ == "__main__":
    main()
