#!/usr/bin/env python
"""The paper's Section 6.2 function tests, end to end.

Reproduces all four scenarios on the Stanford-like backbone:

1. **Black hole** — the boza rule matching ``dst 172.20.10.32/27`` becomes a
   drop; the flow dies at boza; VeriDP localizes boza.
2. **Path deviation** — the same rule is re-pointed at the other backbone
   router; the flow arrives via a different path; VeriDP recovers the real
   path and localizes boza.
3. **Access violation** — sozb's ACL denying ``10.0.0.0/8`` is removed from
   the data plane; forbidden traffic reaches cozb; VeriDP flags it.
4. **Loop** — the two backbone routers bounce a flow between themselves;
   the verification TTL expires and the loop is reported.

Run:  python examples/function_tests.py
"""

from repro.core import VeriDPServer
from repro.dataplane import DataPlaneNetwork, DeleteRule, ModifyRuleOutput
from repro.netmodel.rules import DROP_PORT, Drop
from repro.topologies import build_stanford


def fresh_network():
    scenario = build_stanford(subnets_per_zone=1)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )
    return scenario, server, net


def banner(title):
    print(f"\n=== {title} ===")


def show(server, result):
    print(f"  delivery: {result.status}  path: {result.path_string()}")
    for incident in server.drain_incidents():
        print(f"  VeriDP: {incident.verification.verdict.value} "
              f"-> blamed {incident.blamed_switches or '(none)'}")


def black_hole():
    banner("1. black hole at boza (dst 172.20.10.32/27 dropped)")
    scenario, server, net = fresh_network()
    header = scenario.header_between("h_coza_0", "h_boza_0")
    rule = net.switch("boza").table.lookup(header, 1)
    ModifyRuleOutput("boza", rule.rule_id, DROP_PORT).apply(net)
    show(server, net.inject_from_host("h_coza_0", header))


def path_deviation():
    banner("2. path deviation at coza (flow re-routed via the other backbone)")
    scenario, server, net = fresh_network()
    header = scenario.header_between("h_coza_0", "h_boza_0")
    rule = net.switch("coza").table.lookup(header, 3)
    wrong = 2 if rule.output_port() != 2 else 1  # the other backbone uplink
    ModifyRuleOutput("coza", rule.rule_id, wrong).apply(net)
    show(server, net.inject_from_host("h_coza_0", header))


def access_violation():
    banner("3. access violation at sozb (ACL 'deny 10.0.0.0/8' lost)")
    scenario, server, net = fresh_network()
    header = scenario.header_between("h_sozb_0", "h_cozb_0")
    acl_rule = next(r for r in net.switch("sozb").table if isinstance(r.action, Drop))
    DeleteRule("sozb", acl_rule.rule_id).apply(net)
    show(server, net.inject_from_host("h_sozb_0", header))


def forwarding_loop():
    banner("4. loop between bbra and bbrb")
    scenario, server, net = fresh_network()
    header = scenario.header_between("h_coza_0", "h_boza_0")
    for backbone in ("bbra", "bbrb"):
        rule = net.switch(backbone).table.lookup(header, 5)
        ModifyRuleOutput(backbone, rule.rule_id, 1).apply(net)
    show(server, net.inject_from_host("h_coza_0", header))


def main() -> None:
    print("Section 6.2 function tests on the Stanford-like backbone")
    black_hole()
    path_deviation()
    access_violation()
    forwarding_loop()


if __name__ == "__main__":
    main()
