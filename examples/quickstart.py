#!/usr/bin/env python
"""Quickstart: detect a control-data plane inconsistency in ~40 lines.

Builds a 3-switch linear network, wires the VeriDP server into the OpenFlow
channel, sends healthy traffic (everything verifies), then corrupts one flow
rule *behind the controller's back* and watches VeriDP catch and localize
the fault.

Run:  python examples/quickstart.py
"""

from repro.core import VeriDPServer
from repro.dataplane import DataPlaneNetwork, ModifyRuleOutput
from repro.topologies import build_linear


def main() -> None:
    # A linear network H1 - S1 - S2 - S3 - H3 with shortest-path routes
    # already compiled and pushed by the controller.
    scenario = build_linear(num_switches=3)

    # The VeriDP server taps the controller<->switch channel and builds its
    # path table; the data plane sends it tag reports as UDP payload bytes.
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )

    print("== healthy network ==")
    for src, dst in scenario.host_pairs():
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        print(f"  {src} -> {dst}: {result.status:9s}  path: {result.path_string()}")
    stats = server.stats()
    print(f"  verified={stats['verified']} failed={stats['failed']}\n")

    # Now an attacker (or a switch bug) silently rewires S2: traffic for H3
    # is bounced back towards S1. The controller's tables are untouched.
    header = scenario.header_between("H1", "H3")
    victim = net.switch("S2").table.lookup(header, in_port=3)
    ModifyRuleOutput("S2", victim.rule_id, new_port=1).apply(net)
    print(f"== fault injected: S2 rule {victim.rule_id} rewired to port 1 ==")

    result = net.inject_from_host("H1", header)
    print(f"  H1 -> H3: {result.status}  path: {result.path_string()}")

    for incident in server.drain_incidents():
        print(f"  DETECTED: {incident.verification.verdict.value}")
        print(f"  BLAMED  : {', '.join(incident.blamed_switches)}")
        for candidate in incident.localization.candidates:
            print(f"  real path candidate: {candidate}")


if __name__ == "__main__":
    main()
