#!/usr/bin/env python
"""Closing the whole Figure 1 chain: static audit + runtime verification.

The paper's Figure 1 decomposes an SDN into ``intent I -> logical rules R
-> physical rules R' -> forwarding F``.  Control-plane verifiers check
``I = R``; VeriDP checks ``R = F``.  This example runs both halves on the
Stanford-like backbone:

1. **Static audit** (``PolicyChecker`` over the path table): does the
   *configuration* satisfy the operator's intents — isolation of the
   private address space, blackhole-freedom for customer prefixes,
   SSH traffic pinned through the bbrb backbone?
2. **Runtime verification** (VeriDP): after the audit passes, an
   out-of-band edit breaks one audited intent at the data plane only —
   invisible to any static tool, caught by the tags.

Run:  python examples/policy_audit.py
"""

from repro.core import PolicyChecker, VeriDPServer
from repro.dataplane import DataPlaneNetwork, DeleteRule
from repro.netmodel.rules import Drop, Match
from repro.topologies import build_stanford


def audit(checker, scenario) -> bool:
    print("--- static audit (I = R): does the configuration obey intent? ---")
    ok = True

    # Intent 1: hosts behind sozb must not reach the 10/8 space at cozb.
    isolation = checker.isolation(
        "h_sozb_0", "h_cozb_0", Match.build(dst="10.0.0.0/8")
    )
    print(f"  isolation sozb -/-> cozb (dst 10/8): {isolation}")
    ok &= bool(isolation)

    # Intent 2: the coza customer subnet is blackhole-free from boza's host.
    coza_subnet = scenario.subnets["h_coza_0"]
    blackholes = checker.black_holes("h_boza_0", Match.build(dst=coza_subnet))
    print(f"  blackhole-freedom boza -> {coza_subnet}: {blackholes}")
    ok &= bool(blackholes)

    # Intent 3: SSH from boza's host to coza's rides the bbrb backbone
    # (the with_ssh_detours policy of the builder).
    waypoint = checker.waypoint(
        "h_boza_0", "h_coza_0", "bbrb",
        Match.build(dst=coza_subnet, dst_port=22),
    )
    print(f"  SSH waypoint via bbrb: {waypoint}")
    ok &= bool(waypoint)

    diversity = checker.path_diversity("h_boza_0", "h_coza_0")
    print(f"  boza->coza path diversity: {len(diversity)} distinct paths")
    return ok


def main() -> None:
    scenario = build_stanford(subnets_per_zone=1)
    server = VeriDPServer(scenario.topo, scenario.channel)
    checker = PolicyChecker(server.table, server.hs, scenario.topo)

    assert audit(checker, scenario), "configuration violates intent"
    print("  => configuration is consistent with intent\n")

    print("--- runtime verification (R = F): does the data plane obey R? ---")
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )
    # Out-of-band: the sozb ACL drop rule vanishes from the switch.  The
    # *configuration* still passes every audit above; only live traffic
    # tells the truth.
    acl_rule = next(r for r in net.switch("sozb").table if isinstance(r.action, Drop))
    DeleteRule("sozb", acl_rule.rule_id).apply(net)
    print("  fault: sozb's ACL rule deleted from the data plane only")
    assert audit(checker, scenario), "static audit is (correctly) still green"
    print("  => the static audit still passes — it cannot see the data plane")

    result = net.inject_from_host(
        "h_sozb_0", scenario.header_between("h_sozb_0", "h_cozb_0")
    )
    print(f"  live packet: {result.status} to {result.delivered_to} (violation!)")
    for incident in server.drain_incidents():
        print(f"  VeriDP: {incident.verification.verdict.value}, "
              f"blamed {incident.blamed_switches}")


if __name__ == "__main__":
    main()
