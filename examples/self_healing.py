#!/usr/bin/env python
"""Self-healing SDN: detect -> localize -> repair -> re-verify.

The paper's conclusion sketches the next step beyond monitoring:
"automatically repair the flow table of a faulty switch ... with minimal
human interaction".  This example closes that loop with the
:class:`~repro.core.repair.RepairEngine`: a sequence of distinct data-plane
corruptions hit a fat-tree network, VeriDP detects and localizes each one,
and the repair engine restores consistency — escalating from a targeted
rule re-push to a full table resync when a foreign rule is squatting in
the table, and honestly giving up on dead hardware.

Run:  python examples/self_healing.py
"""

from repro.core import RepairEngine, VeriDPServer
from repro.dataplane import (
    DataPlaneNetwork,
    DeleteRule,
    InjectRule,
    KillSwitch,
    ModifyRuleOutput,
)
from repro.netmodel.rules import DROP_PORT, FlowRule, Forward, Match
from repro.topologies import build_fattree


def main() -> None:
    scenario = build_fattree(k=4)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )
    engine = RepairEngine(scenario.controller, server, probe=net.inject)

    flow = ("h0_0_0", "h3_1_1")
    header = scenario.header_between(*flow)

    def victim_rule(switch="a0_0"):
        probe = net.inject_from_host(flow[0], header)
        server.drain_incidents()
        hop = next(h for h in probe.hops if h.switch == switch)
        return net.switch(switch).table.lookup(header, hop.in_port)

    faults = [
        ("out-of-band rule deletion",
         lambda: DeleteRule("a0_0", victim_rule().rule_id).apply(net)),
        ("output port rewired",
         lambda: ModifyRuleOutput("a0_0", victim_rule().rule_id, 1).apply(net)),
        ("black-holed rule",
         lambda: ModifyRuleOutput("a0_0", victim_rule().rule_id, DROP_PORT).apply(net)),
        ("foreign shadow rule injected",
         lambda: InjectRule("a0_0", FlowRule(
             5000, Match.build(dst=scenario.subnets[flow[1]]), Forward(2))).apply(net)),
        ("switch hardware death",
         lambda: KillSwitch("a0_0").apply(net)),
    ]

    for name, inject_fault in faults:
        print(f"\n=== fault: {name} ===")
        inject_fault()
        result = net.inject_from_host(flow[0], header)
        incidents = server.drain_incidents()
        if not incidents:
            if result.status == "lost":
                print("  packet silently lost — no tag report "
                      "(VeriDP's documented blind spot)")
                print("  repair engine cannot engage without an incident; "
                      "operator escalation required")
                continue
            print("  (fault not on this flow's path)")
            continue
        incident = incidents[0]
        print(f"  detected : {incident.verification.verdict.value}")
        print(f"  blamed   : {', '.join(incident.blamed_switches)}")
        repair = engine.repair(incident)
        print(f"  repair   : {repair}")
        check = net.inject_from_host(flow[0], header)
        leftover = server.drain_incidents()
        print(f"  post-fix : {check.status}, "
              f"{'consistent' if not leftover else 'STILL INCONSISTENT'}")


if __name__ == "__main__":
    main()
