#!/usr/bin/env python
"""A production-shaped deployment, end to end.

This capstone example runs VeriDP the way the paper deploys it, using every
subsystem of the reproduction together:

1. the network is **exported to router config files** and loaded back (the
   Cisco-config front end of §4.1),
2. the server runs as a **multi-worker daemon** behind a real **UDP
   socket** (tag reports are plain UDP datagrams, §5),
3. traffic is a mixed **CBR/Poisson/on-off workload** with per-flow
   sampling sized from the §4.5 latency rule,
4. an out-of-band rule edit hits mid-run; the **incident aggregator** rolls
   the failures up to a suspect and the **repair engine** fixes it,
5. the **coverage tracker** reports how much of the path table the sampled
   traffic actually validated.

Run:  python examples/production_deployment.py
"""

import socket
import tempfile
import time

from repro.analysis import IncidentAggregator
from repro.analysis.coverage import CoverageTracker
from repro.analysis.workloads import FlowSpec, scenario_workload
from repro.configlang import export_network, load_network
from repro.core import RepairEngine, UdpReportListener, VeriDPDaemon, VeriDPServer
from repro.core.sampling import FlowSampler, sampling_interval_for
from repro.dataplane import DataPlaneNetwork, ModifyRuleOutput
from repro.netmodel.rules import DROP_PORT
from repro.topologies import build_internet2


def main() -> None:
    # 1. Provision from config files.
    with tempfile.TemporaryDirectory() as confdir:
        export_network(build_internet2(prefixes_per_pop=1), confdir)
        scenario = load_network(confdir)
    print(f"loaded {scenario.topo} from config directory")

    # 2. Server + daemon + UDP listener.
    server = VeriDPServer(scenario.topo, scenario.channel)
    daemon = VeriDPDaemon(server, workers=2)
    daemon.start()
    listener = UdpReportListener(daemon)
    listener.start()
    sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    print(f"VeriDP daemon listening on UDP {listener.address}")

    # The data plane ships report bytes to the UDP socket — the real wire.
    net = DataPlaneNetwork(
        scenario.topo,
        scenario.channel,
        report_sink=lambda payload: sender.sendto(payload, listener.address),
        sampler_factory=lambda sid: FlowSampler(default_interval=interval),
    )

    # 3. Workload: mixed arrival processes; T_s from the §4.5 rule.
    hosts = scenario.topo.hosts()
    specs = [
        FlowSpec(hosts[0], hosts[5], kind="cbr", rate=20),
        FlowSpec(hosts[1], hosts[6], kind="poisson", rate=15),
        FlowSpec(hosts[2], hosts[7], kind="onoff", rate=25, on_s=1.0, off_s=0.5),
        FlowSpec(hosts[3], hosts[8], kind="cbr", rate=10, dst_port=443),
    ]
    events, gaps = scenario_workload(scenario, specs, duration=6.0, seed=4)
    tau = 3.0
    worst_gap = max(gaps.values())
    interval = sampling_interval_for(tau, worst_gap)
    print(f"{len(events)} packets over 6s; worst T_a={worst_gap:.2f}s, "
          f"budget tau={tau}s -> T_s={interval:.2f}s")

    # 4. Replay with a mid-run fault.
    fault_at = 3.0
    fault = None
    for event in events:
        if fault is None and event.time >= fault_at:
            probe = net.inject_from_host(hosts[0], scenario.header_between(hosts[0], hosts[5]))
            victim = probe.hops[1]
            rule = net.switch(victim.switch).table.lookup(
                scenario.header_between(hosts[0], hosts[5]), victim.in_port
            )
            fault = ModifyRuleOutput(victim.switch, rule.rule_id, DROP_PORT)
            fault.apply(net)
            print(f"[t={event.time:.2f}s] fault injected: {fault.describe()}")
        net.inject_from_host(event.src_host, event.header, now=event.time)

    daemon.join()

    # 5. Roll up incidents, repair, report coverage.
    aggregator = IncidentAggregator()
    aggregator.ingest_all(server.incidents, now=time.time())
    print("\n--- incident roll-up ---")
    print(aggregator.render())

    if server.incidents:
        # Repair runs as a synchronous transaction: quiesce the daemon and
        # route probe reports straight into the server instead of over UDP.
        daemon.stop()
        net.report_sink = server.receive_report_bytes
        engine = RepairEngine(
            scenario.controller,
            server,
            # Probes carry the marker pre-set: they must not depend on the
            # per-flow sampler agreeing to sample them.
            probe=lambda entry, header: net.inject(entry, header, force_sample=True),
        )
        incident = server.drain_incidents()[0]
        result = engine.repair(incident)
        print(f"\nrepair: {result}")
        net.report_sink = lambda payload: sender.sendto(payload, listener.address)
        daemon.start()

    tracker = CoverageTracker(server.table)
    # Re-verify a clean all-pairs sweep for the coverage picture.
    for src, dst in scenario.host_pairs():
        delivery = net.inject_from_host(src, scenario.header_between(src, dst))
        for report in delivery.reports:
            tracker.observe(server.verifier.verify(report))
    print(f"\n--- coverage after sweep ---\n{tracker.report()}")

    stats = daemon.stats()
    print(f"\ndaemon: {stats['processed']} reports processed over UDP, "
          f"{stats['malformed']} malformed, {stats['dropped']} dropped")
    listener.stop()
    daemon.stop()
    sender.close()


if __name__ == "__main__":
    main()
