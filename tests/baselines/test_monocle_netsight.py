"""Unit tests for the Monocle-style and NetSight-style baselines."""

import pytest

from repro.baselines.monocle import MonocleProber
from repro.baselines.netsight import NetSightCollector, POSTCARD_BYTES, Postcard
from repro.bdd.headerspace import HeaderSpace
from repro.core.pathtable import PathTableBuilder
from repro.dataplane import DataPlaneNetwork
from repro.netmodel.hops import Hop
from repro.netmodel.packet import Header
from repro.netmodel.rules import DROP_PORT, Drop, FlowRule, Forward, Match
from repro.netmodel.topology import Topology
from repro.topologies import build_linear


def switch_with_rules(rules):
    from repro.dataplane.switch import DataPlaneSwitch

    switch = DataPlaneSwitch("S", ports={1, 2, 3, 4})
    for rule in rules:
        switch.install(rule)
    return switch


class TestMonocleGeneration:
    def test_probe_per_testable_rule(self):
        rules = [
            FlowRule(20, Match.build(dst="10.0.1.0/24"), Forward(2)),
            FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(3)),
        ]
        switch = switch_with_rules(rules)
        prober = MonocleProber("S", switch.table)
        assert len(prober.probes) == 2
        assert prober.untestable == []

    def test_shadowed_rule_untestable(self):
        shadowing = FlowRule(20, Match.build(dst="10.0.0.0/8"), Forward(2))
        shadowed = FlowRule(10, Match.build(dst="10.0.1.0/24"), Forward(3))
        switch = switch_with_rules([shadowing, shadowed])
        prober = MonocleProber("S", switch.table)
        assert shadowed.rule_id in prober.untestable

    def test_probe_isolates_its_rule(self):
        """The probe must match only the rule under test."""
        rules = [
            FlowRule(20, Match.build(dst="10.0.0.0/8", dst_port=22), Forward(2)),
            FlowRule(10, Match.build(dst="10.0.0.0/8"), Forward(3)),
        ]
        switch = switch_with_rules(rules)
        prober = MonocleProber("S", switch.table)
        by_rule = {p.rule_id: p for p in prober.probes}
        # The broad rule's probe must NOT have dst_port 22 (else the
        # high-priority rule would claim it).
        broad_probe = by_rule[rules[1].rule_id]
        assert broad_probe.header.dst_port != 22

    def test_generation_time_recorded(self):
        switch = switch_with_rules([FlowRule(10, Match(), Forward(1))])
        prober = MonocleProber("S", switch.table)
        assert prober.generation_time_s > 0

    def test_lone_drop_rule_untestable(self):
        """A drop rule over empty fallback is indistinguishable from a
        table miss (both drop) — Monocle cannot probe it."""
        rules = [FlowRule(10, Match.build(dst="10.0.0.0/8"), Drop())]
        switch = switch_with_rules(rules)
        prober = MonocleProber("S", switch.table)
        assert prober.probes == []
        assert prober.untestable == [rules[0].rule_id]

    def test_drop_rule_over_forward_fallback_testable(self):
        """A drop rule shadowing a forwarding rule IS probeable: absence
        would forward the probe."""
        drop = FlowRule(20, Match.build(dst="10.0.1.0/24"), Drop())
        fwd = FlowRule(10, Match.build(dst="10.0.0.0/8"), Forward(2))
        switch = switch_with_rules([drop, fwd])
        prober = MonocleProber("S", switch.table)
        by_rule = {p.rule_id: p for p in prober.probes}
        assert by_rule[drop.rule_id].expected_port == DROP_PORT


class TestMonocleDetection:
    def test_healthy_table_confirmed(self):
        rules = [
            FlowRule(20, Match.build(dst="10.0.1.0/24"), Forward(2)),
            FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(3)),
        ]
        switch = switch_with_rules(rules)
        prober = MonocleProber("S", switch.table.copy())
        report = prober.run(switch)
        assert not report.detected_fault
        assert report.confirmed == report.tested == 2

    def test_missing_rule_detected(self):
        rule = FlowRule(10, Match.build(dst="10.0.1.0/24"), Forward(2))
        switch = switch_with_rules([rule])
        prober = MonocleProber("S", switch.table.copy())
        switch.external_delete(rule.rule_id)
        report = prober.run(switch)
        assert report.detected_fault
        assert report.missing_or_modified[0].rule_id == rule.rule_id

    def test_modified_rule_detected(self):
        rule = FlowRule(10, Match.build(dst="10.0.1.0/24"), Forward(2))
        switch = switch_with_rules([rule])
        prober = MonocleProber("S", switch.table.copy())
        switch.external_modify_output(rule.rule_id, 4)
        report = prober.run(switch)
        assert report.detected_fault


class TestNetSight:
    def test_history_reassembly(self):
        collector = NetSightCollector()
        header = Header(dst_port=80)
        hops = [Hop(1, "S1", 2), Hop(3, "S2", 2), Hop(3, "S3", 1)]
        collector.record_walk(7, header, hops)
        history = collector.history(7)
        assert history.path() == tuple(hops)
        assert collector.postcards_received == 3

    def test_traffic_bytes(self):
        collector = NetSightCollector()
        collector.record_walk(1, Header(), [Hop(1, "S1", 2)] * 5)
        assert collector.traffic_bytes() == 5 * POSTCARD_BYTES

    def test_check_history_exact_detection(self):
        scenario = build_linear(3)
        hs = HeaderSpace()
        builder = PathTableBuilder(scenario.topo, hs)
        builder.build()
        collector = NetSightCollector(builder)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)

        header = scenario.header_between("H1", "H3")
        result = net.inject_from_host("H1", header)
        collector.record_walk(1, header, result.hops)
        assert collector.check_history(1) is True

        # A deviated walk is flagged exactly.
        fake_hops = list(result.hops)
        fake_hops[1] = Hop(fake_hops[1].in_port, fake_hops[1].switch, 1)
        collector.record_walk(2, header, fake_hops)
        assert collector.check_history(2) is False

    def test_check_unknown_packet_is_none(self):
        scenario = build_linear(3)
        builder = PathTableBuilder(scenario.topo, HeaderSpace())
        collector = NetSightCollector(builder)
        assert collector.check_history(99) is None

    def test_check_requires_builder(self):
        collector = NetSightCollector()
        collector.receive(Postcard(1, Hop(1, "S", 2), Header()))
        with pytest.raises(ValueError):
            collector.check_history(1)
