"""Unit tests for the ATPG-style reachability prober."""

import pytest

from repro.baselines.atpg import AtpgProber
from repro.bdd.headerspace import HeaderSpace
from repro.core.pathtable import PathTableBuilder
from repro.dataplane import DataPlaneNetwork, DeleteRule, ModifyRuleOutput
from repro.netmodel.rules import DROP_PORT
from repro.topologies import build_figure5, build_linear


@pytest.fixture
def linear():
    scenario = build_linear(3)
    hs = HeaderSpace()
    builder = PathTableBuilder(scenario.topo, hs)
    table = builder.build()
    prober = AtpgProber(builder, table)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    return scenario, prober, net


class TestProbeGeneration:
    def test_probes_cover_all_deliverable_hops(self, linear):
        scenario, prober, _ = linear
        all_hops = {
            hop
            for _, outport, entry in prober.table.all_entries()
            if outport.port != DROP_PORT
            for hop in entry.hops
        }
        assert prober.covered_hops() == all_hops

    def test_greedy_cover_reduces_probe_count(self, linear):
        _, prober, _ = linear
        deliverable = sum(
            1
            for _, outport, _ in prober.table.all_entries()
            if outport.port != DROP_PORT
        )
        assert 0 < len(prober.probes) <= deliverable

    def test_generation_time_recorded(self, linear):
        _, prober, _ = linear
        assert prober.generation_time_s > 0

    def test_probe_headers_match_their_paths(self, linear):
        _, prober, net = linear
        for probe in prober.probes:
            result = net.inject(probe.entry, probe.header)
            assert result.exit_port == probe.expected_exit


class TestDetectionPower:
    def test_healthy_network_passes(self, linear):
        _, prober, net = linear
        report = prober.run(net)
        assert not report.detected_fault
        assert report.passed == report.sent

    def test_blackhole_detected(self, linear):
        scenario, prober, net = linear
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, DROP_PORT).apply(net)
        report = prober.run(net)
        assert report.detected_fault

    def test_atpg_blind_spot_path_deviation_with_delivery(self):
        """The paper's core critique: a deviation that still delivers
        passes ATPG, while VeriDP flags it (see the comparison bench)."""
        scenario = build_figure5()
        hs = HeaderSpace()
        builder = PathTableBuilder(scenario.topo, hs)
        table = builder.build()
        prober = AtpgProber(builder, table)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)

        # Kill the SSH detour at S1: SSH now goes direct (still delivered).
        ssh_rule = net.switch("S1").table.lookup(
            scenario.header_between("H1", "H3", dst_port=22), 1
        )
        assert ssh_rule.match.dst_port_range == (22, 22)
        DeleteRule("S1", ssh_rule.rule_id).apply(net)

        # The SSH probe still arrives at its expected exit port (via the
        # wrong path), so this particular probe cannot fail...
        ssh_probes = [
            p for p in prober.probes if p.header.dst_port == 22
            and p.entry == scenario.topo.host_port("H1")
        ]
        for probe in ssh_probes:
            result = net.inject(probe.entry, probe.header)
            assert result.exit_port == probe.expected_exit  # delivered!
            # ...yet the path differs from the configured one:
            assert tuple(result.hops) != probe.covers
