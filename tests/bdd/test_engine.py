"""Unit tests for the ROBDD engine."""

import pytest

from repro.bdd.engine import BDD, FALSE, TRUE


@pytest.fixture
def bdd():
    return BDD(8)


class TestConstruction:
    def test_terminals_are_fixed(self, bdd):
        assert FALSE == 0
        assert TRUE == 1

    def test_var_is_canonical(self, bdd):
        assert bdd.var(3) == bdd.var(3)

    def test_var_out_of_range(self, bdd):
        with pytest.raises(ValueError):
            bdd.var(8)
        with pytest.raises(ValueError):
            bdd.var(-1)

    def test_zero_width_manager_rejected(self):
        with pytest.raises(ValueError):
            BDD(0)

    def test_nvar_is_complement_of_var(self, bdd):
        assert bdd.nvar(2) == bdd.not_(bdd.var(2))

    def test_reduction_no_redundant_node(self, bdd):
        # ite(x, y, y) must collapse to y.
        x, y = bdd.var(0), bdd.var(1)
        assert bdd.ite(x, y, y) == y


class TestConnectives:
    def test_and_with_terminals(self, bdd):
        x = bdd.var(0)
        assert bdd.and_(x, TRUE) == x
        assert bdd.and_(x, FALSE) == FALSE
        assert bdd.and_(TRUE, x) == x

    def test_or_with_terminals(self, bdd):
        x = bdd.var(0)
        assert bdd.or_(x, FALSE) == x
        assert bdd.or_(x, TRUE) == TRUE

    def test_not_involution(self, bdd):
        f = bdd.xor(bdd.var(0), bdd.var(3))
        assert bdd.not_(bdd.not_(f)) == f

    def test_de_morgan(self, bdd):
        x, y = bdd.var(1), bdd.var(4)
        lhs = bdd.not_(bdd.and_(x, y))
        rhs = bdd.or_(bdd.not_(x), bdd.not_(y))
        assert lhs == rhs

    def test_xor_truth_table(self, bdd):
        x, y = bdd.var(0), bdd.var(1)
        f = bdd.xor(x, y)
        base = {i: False for i in range(8)}
        for xv in (False, True):
            for yv in (False, True):
                assign = dict(base)
                assign.update({0: xv, 1: yv})
                assert bdd.evaluate(f, assign) == (xv != yv)

    def test_diff(self, bdd):
        x, y = bdd.var(0), bdd.var(1)
        f = bdd.diff(bdd.or_(x, y), y)
        # f is x AND NOT y
        assert f == bdd.and_(x, bdd.not_(y))

    def test_commutativity_canonical(self, bdd):
        x, y = bdd.var(2), bdd.var(5)
        assert bdd.and_(x, y) == bdd.and_(y, x)
        assert bdd.or_(x, y) == bdd.or_(y, x)

    def test_and_many_empty_is_true(self, bdd):
        assert bdd.and_many([]) == TRUE

    def test_or_many_empty_is_false(self, bdd):
        assert bdd.or_many([]) == FALSE

    def test_and_many_matches_pairwise(self, bdd):
        vars_ = [bdd.var(i) for i in range(4)]
        acc = TRUE
        for v in vars_:
            acc = bdd.and_(acc, v)
        assert bdd.and_many(vars_) == acc

    def test_implies(self, bdd):
        x, y = bdd.var(0), bdd.var(1)
        assert bdd.implies(bdd.and_(x, y), x)
        assert not bdd.implies(x, bdd.and_(x, y))


class TestCube:
    def test_cube_matches_conjunction(self, bdd):
        literals = [(0, True), (3, False), (5, True)]
        expected = bdd.and_many(
            bdd.var(l) if pos else bdd.not_(bdd.var(l)) for l, pos in literals
        )
        assert bdd.cube(literals) == expected

    def test_cube_empty_is_true(self, bdd):
        assert bdd.cube([]) == TRUE

    def test_cube_order_independent(self, bdd):
        a = bdd.cube([(1, True), (4, False)])
        b = bdd.cube([(4, False), (1, True)])
        assert a == b


class TestCounting:
    def test_count_terminals(self, bdd):
        assert bdd.count(TRUE) == 256
        assert bdd.count(FALSE) == 0

    def test_count_single_var(self, bdd):
        assert bdd.count(bdd.var(0)) == 128
        assert bdd.count(bdd.var(7)) == 128

    def test_count_cube(self, bdd):
        f = bdd.cube([(0, True), (1, True), (2, False)])
        assert bdd.count(f) == 32

    def test_count_or(self, bdd):
        x, y = bdd.var(0), bdd.var(1)
        # |x OR y| = 128 + 128 - 64
        assert bdd.count(bdd.or_(x, y)) == 192

    def test_count_narrower_width(self, bdd):
        f = bdd.cube([(0, True)])
        assert bdd.count(f, num_vars=1) == 1
        assert bdd.count(f, num_vars=3) == 4

    def test_count_cache_not_poisoned_across_widths(self, bdd):
        f = bdd.var(0)
        assert bdd.count(f, num_vars=2) == 2
        assert bdd.count(f, num_vars=8) == 128
        assert bdd.count(f, num_vars=2) == 2


class TestQuantification:
    def test_exists_removes_var(self, bdd):
        x, y = bdd.var(0), bdd.var(1)
        f = bdd.and_(x, y)
        assert bdd.exists(f, [0]) == y

    def test_forall(self, bdd):
        x, y = bdd.var(0), bdd.var(1)
        f = bdd.or_(x, y)
        assert bdd.forall(f, [0]) == y

    def test_exists_all_support_gives_true(self, bdd):
        f = bdd.cube([(2, True), (6, False)])
        assert bdd.exists(f, [2, 6]) == TRUE

    def test_exists_empty_levels_is_identity(self, bdd):
        f = bdd.var(3)
        assert bdd.exists(f, []) == f


class TestRestrictAndSupport:
    def test_restrict_to_true_branch(self, bdd):
        x, y = bdd.var(0), bdd.var(1)
        f = bdd.and_(x, y)
        assert bdd.restrict(f, {0: True}) == y
        assert bdd.restrict(f, {0: False}) == FALSE

    def test_restrict_empty_assignment(self, bdd):
        f = bdd.var(2)
        assert bdd.restrict(f, {}) == f

    def test_support(self, bdd):
        f = bdd.and_(bdd.var(1), bdd.or_(bdd.var(4), bdd.var(6)))
        assert bdd.support(f) == [1, 4, 6]

    def test_support_of_terminal(self, bdd):
        assert bdd.support(TRUE) == []


class TestEnumeration:
    def test_cubes_cover_function(self, bdd):
        f = bdd.or_(bdd.var(0), bdd.and_(bdd.var(1), bdd.var(2)))
        total = 0
        for cube in bdd.cubes(f):
            total += 1 << (8 - len(cube))
        assert total == bdd.count(f)

    def test_cubes_of_false_is_empty(self, bdd):
        assert list(bdd.cubes(FALSE)) == []

    def test_pick_satisfies(self, bdd):
        f = bdd.cube([(0, True), (5, False)])
        cube = bdd.pick(f)
        assert cube is not None
        assert cube[0] is True
        assert cube[5] is False

    def test_pick_of_false_is_none(self, bdd):
        assert bdd.pick(FALSE) is None

    def test_evaluate_needs_full_support(self, bdd):
        f = bdd.var(3)
        with pytest.raises(ValueError):
            bdd.evaluate(f, {})


class TestMaintenance:
    def test_size_counts_reachable(self, bdd):
        f = bdd.cube([(0, True), (1, True)])
        # root, inner node, two terminals
        assert bdd.size(f) == 4

    def test_clear_caches_preserves_ids(self, bdd):
        f = bdd.and_(bdd.var(0), bdd.var(1))
        bdd.clear_caches()
        assert bdd.and_(bdd.var(0), bdd.var(1)) == f

    def test_stats_keys(self, bdd):
        stats = bdd.stats()
        assert {"nodes", "ite_cache", "not_cache", "quant_cache"} <= set(stats)
