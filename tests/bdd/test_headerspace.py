"""Unit tests for header-space predicates."""

import pytest

from repro.bdd.engine import FALSE, TRUE
from repro.bdd.headerspace import (
    HeaderField,
    HeaderLayout,
    HeaderSpace,
    format_ipv4,
    parse_ipv4,
    parse_prefix,
    range_to_prefixes,
)


@pytest.fixture
def hs():
    return HeaderSpace()


def make_header(**overrides):
    header = {"src_ip": 0, "dst_ip": 0, "proto": 6, "src_port": 1234, "dst_port": 80}
    header.update(overrides)
    return header


class TestLayout:
    def test_default_total_bits(self):
        assert HeaderLayout().total_bits == 104

    def test_offsets_are_contiguous(self):
        layout = HeaderLayout()
        assert layout.offset("src_ip") == 0
        assert layout.offset("dst_ip") == 32
        assert layout.offset("proto") == 64
        assert layout.offset("src_port") == 72
        assert layout.offset("dst_port") == 88

    def test_unknown_field_raises(self):
        layout = HeaderLayout()
        with pytest.raises(KeyError):
            layout.field("ttl")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            HeaderLayout([HeaderField("a", 4), HeaderField("a", 4)])

    def test_empty_layout_rejected(self):
        with pytest.raises(ValueError):
            HeaderLayout([])

    def test_zero_width_field_rejected(self):
        with pytest.raises(ValueError):
            HeaderField("z", 0)

    def test_bit_level(self):
        layout = HeaderLayout()
        assert layout.bit_level("dst_ip", 0) == 32
        assert layout.bit_level("dst_ip", 31) == 63
        with pytest.raises(ValueError):
            layout.bit_level("dst_ip", 32)


class TestExact:
    def test_exact_contains_only_value(self, hs):
        pred = hs.exact("dst_port", 80)
        assert hs.contains(pred, make_header(dst_port=80))
        assert not hs.contains(pred, make_header(dst_port=81))

    def test_exact_count(self, hs):
        pred = hs.exact("proto", 6)
        # all other fields free: 2^(104-8)
        assert hs.count_headers(pred) == 1 << 96

    def test_exact_cached(self, hs):
        assert hs.exact("dst_port", 22) == hs.exact("dst_port", 22)

    def test_out_of_range_value(self, hs):
        with pytest.raises(ValueError):
            hs.exact("proto", 256)


class TestPrefix:
    def test_prefix_match(self, hs):
        net = parse_ipv4("10.0.1.0")
        pred = hs.prefix("dst_ip", net, 24)
        assert hs.contains(pred, make_header(dst_ip=parse_ipv4("10.0.1.99")))
        assert not hs.contains(pred, make_header(dst_ip=parse_ipv4("10.0.2.99")))

    def test_zero_length_prefix_is_all(self, hs):
        assert hs.prefix("dst_ip", 0, 0) == TRUE

    def test_full_length_prefix_is_exact(self, hs):
        addr = parse_ipv4("192.168.0.1")
        assert hs.prefix("dst_ip", addr, 32) == hs.exact("dst_ip", addr)

    def test_longer_prefix_subset_of_shorter(self, hs):
        net = parse_ipv4("10.0.0.0")
        p8 = hs.prefix("dst_ip", net, 8)
        p16 = hs.prefix("dst_ip", net, 16)
        assert hs.bdd.implies(p16, p8)

    def test_bad_plen(self, hs):
        with pytest.raises(ValueError):
            hs.prefix("dst_ip", 0, 33)


class TestWildcard:
    def test_wildcard_all_x_is_true(self, hs):
        assert hs.wildcard("proto", "x" * 8) == TRUE

    def test_wildcard_equals_exact(self, hs):
        assert hs.wildcard("proto", "00000110") == hs.exact("proto", 6)

    def test_wildcard_mixed(self, hs):
        pred = hs.wildcard("proto", "0000011x")
        assert hs.contains(pred, make_header(proto=6))
        assert hs.contains(pred, make_header(proto=7))
        assert not hs.contains(pred, make_header(proto=8))

    def test_wildcard_bad_length(self, hs):
        with pytest.raises(ValueError):
            hs.wildcard("proto", "xx")

    def test_wildcard_bad_char(self, hs):
        with pytest.raises(ValueError):
            hs.wildcard("proto", "0000011z")


class TestRange:
    def test_range_inclusive(self, hs):
        pred = hs.range_("dst_port", 1000, 2000)
        assert hs.contains(pred, make_header(dst_port=1000))
        assert hs.contains(pred, make_header(dst_port=2000))
        assert hs.contains(pred, make_header(dst_port=1500))
        assert not hs.contains(pred, make_header(dst_port=999))
        assert not hs.contains(pred, make_header(dst_port=2001))

    def test_range_count(self, hs):
        pred = hs.range_("dst_port", 10, 30)
        assert hs.count_headers(pred) == 21 << (104 - 16)

    def test_degenerate_range_is_exact(self, hs):
        assert hs.range_("dst_port", 443, 443) == hs.exact("dst_port", 443)

    def test_empty_range(self, hs):
        assert hs.range_("dst_port", 5, 4) == FALSE

    def test_full_range_is_true(self, hs):
        assert hs.range_("dst_port", 0, 65535) == TRUE


class TestNotEqualAndMember:
    def test_not_equal(self, hs):
        pred = hs.not_equal("dst_port", 22)
        assert not hs.contains(pred, make_header(dst_port=22))
        assert hs.contains(pred, make_header(dst_port=23))

    def test_member(self, hs):
        pred = hs.member("proto", [6, 17])
        assert hs.contains(pred, make_header(proto=6))
        assert hs.contains(pred, make_header(proto=17))
        assert not hs.contains(pred, make_header(proto=1))

    def test_member_empty_is_false(self, hs):
        assert hs.member("proto", []) == FALSE


class TestHeaderBDD:
    def test_header_bdd_is_singleton(self, hs):
        header = make_header(src_ip=parse_ipv4("10.0.0.1"))
        pred = hs.header_bdd(header)
        assert hs.count_headers(pred) == 1
        assert hs.contains(pred, header)

    def test_header_bdd_missing_field(self, hs):
        with pytest.raises(KeyError):
            hs.header_bdd({"src_ip": 1})

    def test_contains_consistent_with_intersection(self, hs):
        pred = hs.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16)
        header = make_header(dst_ip=parse_ipv4("10.1.2.3"))
        via_walk = hs.contains(pred, header)
        via_bdd = hs.bdd.and_(pred, hs.header_bdd(header)) != FALSE
        assert via_walk == via_bdd is True


class TestSampling:
    def test_sample_member(self, hs):
        pred = hs.bdd.and_(
            hs.prefix("dst_ip", parse_ipv4("172.16.0.0"), 12),
            hs.exact("dst_port", 443),
        )
        header = hs.sample_header(pred)
        assert header is not None
        assert hs.contains(pred, header)
        assert header["dst_port"] == 443

    def test_sample_of_empty_is_none(self, hs):
        assert hs.sample_header(FALSE) is None


class TestRangeToPrefixes:
    def test_cover_exact(self):
        width = 8
        for lo, hi in [(0, 255), (1, 254), (7, 9), (128, 128), (0, 0), (100, 200)]:
            covered = set()
            for value, plen in range_to_prefixes(lo, hi, width):
                size = 1 << (width - plen)
                block = range(value, value + size)
                assert covered.isdisjoint(block)
                covered.update(block)
            assert covered == set(range(lo, hi + 1))

    def test_bound_on_count(self):
        prefixes = range_to_prefixes(1, 2**16 - 2, 16)
        assert len(prefixes) <= 2 * 16 - 2

    def test_bad_range_raises(self):
        with pytest.raises(ValueError):
            range_to_prefixes(5, 300, 8)


class TestAddressParsing:
    def test_parse_ipv4(self):
        assert parse_ipv4("10.0.0.1") == 0x0A000001
        assert parse_ipv4("255.255.255.255") == 0xFFFFFFFF

    def test_parse_ipv4_rejects_bad(self):
        for bad in ["10.0.0", "1.2.3.4.5", "300.0.0.1", "a.b.c.d"]:
            with pytest.raises(ValueError):
                parse_ipv4(bad)

    def test_parse_prefix(self):
        assert parse_prefix("10.0.1.0/24") == (0x0A000100, 24)
        assert parse_prefix("10.0.1.1") == (0x0A000101, 32)

    def test_parse_prefix_masks_host_bits(self):
        value, plen = parse_prefix("10.0.1.77/24")
        assert value == 0x0A000100
        assert plen == 24

    def test_parse_prefix_zero(self):
        assert parse_prefix("1.2.3.4/0") == (0, 0)

    def test_format_round_trip(self):
        for text in ["0.0.0.0", "10.1.2.3", "255.255.255.255"]:
            assert format_ipv4(parse_ipv4(text)) == text

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(1 << 32)
