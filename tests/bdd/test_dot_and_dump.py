"""Tests for the diagnostic renderings (BDD DOT export, path table dump)."""

import pytest

from repro.bdd.engine import BDD, FALSE, TRUE
from repro.bdd.headerspace import HeaderSpace
from repro.core.pathtable import PathTableBuilder
from repro.topologies import build_figure5, build_linear


class TestToDot:
    def test_terminal_true(self):
        bdd = BDD(2)
        dot = bdd.to_dot(TRUE)
        assert dot.startswith("digraph")
        assert '"1"' in dot

    def test_terminal_false(self):
        dot = BDD(2).to_dot(FALSE)
        assert '"0"' in dot

    def test_variable_node_edges(self):
        bdd = BDD(2)
        dot = bdd.to_dot(bdd.var(0))
        assert "style=dashed" in dot  # low edge
        assert 'label="x0"' in dot
        assert dot.count("->") == 2

    def test_var_names(self):
        bdd = BDD(2)
        dot = bdd.to_dot(bdd.var(1), var_names={1: "dst_ip[0]"})
        assert 'label="dst_ip[0]"' in dot

    def test_shared_subgraphs_rendered_once(self):
        bdd = BDD(3)
        f = bdd.or_(bdd.and_(bdd.var(0), bdd.var(2)), bdd.and_(bdd.var(1), bdd.var(2)))
        dot = bdd.to_dot(f)
        # x2 appears as a node exactly once despite two parents.
        assert dot.count('label="x2"') == 1

    def test_every_reachable_node_present(self):
        bdd = BDD(4)
        f = bdd.xor(bdd.var(0), bdd.xor(bdd.var(1), bdd.var(2)))
        dot = bdd.to_dot(f)
        assert dot.count("[label=") >= bdd.size(f) - 2 + 2  # inner + terminals


class TestPathTableDump:
    def test_dump_contains_entries(self):
        scenario = build_figure5()
        hs = HeaderSpace()
        table = PathTableBuilder(scenario.topo, hs).build()
        text = table.dump(hs)
        assert "path table:" in text
        assert "<S1, 1>" in text
        assert "e.g." in text  # sample headers rendered

    def test_dump_without_headerspace(self):
        scenario = build_linear(3)
        table = PathTableBuilder(scenario.topo, HeaderSpace()).build()
        text = table.dump()
        assert "e.g." not in text
        assert "PathEntry" in text

    def test_dump_limit(self):
        scenario = build_linear(3)
        table = PathTableBuilder(scenario.topo, HeaderSpace()).build()
        text = table.dump(limit=2)
        assert "more)" in text
        assert text.count("PathEntry") == 2
