"""Replay tests: live incidents reproduce exactly, bisection works."""

import pytest

from repro.core.reports import pack_report
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork, ModifyRuleOutput
from repro.persist import PersistentState, RecoveryError, incident_key
from repro.persist.replay import replay
from repro.persist.wal import ControlEvent
from repro.topologies import build_linear


def live_incident_keys(server):
    return [
        incident_key(
            incident.verification.report, incident.verification.verdict.name
        )
        for incident in server.incidents
    ]


@pytest.fixture
def recorded_campaign(tmp_path):
    """A durable server fed a stream containing real data-plane faults."""
    scenario = build_linear(4)
    state_dir = str(tmp_path / "state")
    server = VeriDPServer(scenario.topo, state_dir=state_dir, fsync="never")
    net = DataPlaneNetwork(scenario.topo, scenario.channel)

    # Healthy traffic first.
    healthy = []
    for src, dst in scenario.host_pairs()[:6]:
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        healthy += [pack_report(r, net.codec) for r in result.reports]
    for payload in healthy:
        server.receive_report_bytes(payload)
    assert server.incidents == []

    # Misforward S2's H1->H4 route in the *data plane only*: the path
    # table still believes the configured route, so reports now fail.
    header = scenario.header_between("H1", "H4")
    rule = net.switch("S2").table.lookup(header, 3)
    ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
    faulty = []
    for _ in range(3):
        result = net.inject_from_host("H1", header)
        faulty += [pack_report(r, net.codec) for r in result.reports]
    for payload in faulty:
        server.receive_report_bytes(payload)
    assert server.incidents

    keys = live_incident_keys(server)
    server.persist.wal.sync()
    server.close()
    return scenario, state_dir, keys


class TestReplayReproducesIncidents:
    def test_incident_keys_match_live_ledger(self, recorded_campaign):
        scenario, state_dir, live_keys = recorded_campaign
        with PersistentState(state_dir, read_only=True) as state:
            result = replay(state, scenario.topo)
        assert result.source == "wal"
        assert result.incident_keys() == live_keys
        assert result.first_failure_seq is not None

    def test_replay_is_deterministic(self, recorded_campaign):
        scenario, state_dir, _ = recorded_campaign
        with PersistentState(state_dir, read_only=True) as state:
            first = replay(state, scenario.topo)
        with PersistentState(state_dir, read_only=True) as state:
            second = replay(state, scenario.topo)
        assert first.incident_keys() == second.incident_keys()
        assert first.replayed_reports == second.replayed_reports
        assert first.first_failure_seq == second.first_failure_seq

    def test_localization_reproduces_blame(self, recorded_campaign):
        scenario, state_dir, _ = recorded_campaign
        with PersistentState(state_dir, read_only=True) as state:
            result = replay(state, scenario.topo)
        blamed = {
            switch
            for incident in result.incidents
            if incident.localization is not None
            for switch in incident.localization.blamed_switches()
        }
        assert "S2" in blamed

    def test_no_localize_flag(self, recorded_campaign):
        scenario, state_dir, _ = recorded_campaign
        with PersistentState(state_dir, read_only=True) as state:
            result = replay(state, scenario.topo, localize=False)
        assert result.incidents
        assert all(i.localization is None for i in result.incidents)


class TestBatchRecordedReplay:
    def test_daemon_batches_replay_to_same_incidents(self, tmp_path):
        """Reports logged as RT_REPORT_BATCH records replay identically."""
        from repro.core.daemon import ShardedVeriDPDaemon

        scenario = build_linear(4)
        state_dir = str(tmp_path / "state")
        server = VeriDPServer(scenario.topo, state_dir=state_dir, fsync="never")
        net = DataPlaneNetwork(scenario.topo, scenario.channel)

        payloads = []
        for src, dst in scenario.host_pairs()[:6]:
            result = net.inject_from_host(src, scenario.header_between(src, dst))
            payloads += [pack_report(r, net.codec) for r in result.reports]
        header = scenario.header_between("H1", "H4")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        for _ in range(3):
            result = net.inject_from_host("H1", header)
            payloads += [pack_report(r, net.codec) for r in result.reports]

        with ShardedVeriDPDaemon(
            server, workers=2, batch_size=8, overflow="block"
        ) as daemon:
            for payload in payloads:
                daemon.submit(payload)
            daemon.join(timeout=60.0)
        assert server.incidents
        live_keys = live_incident_keys(server)
        stats = server.persist.wal.stats()
        assert stats["wal_records_report_batch"] > 0
        assert stats["wal_records_report"] == len(payloads)
        server.persist.wal.sync()
        server.close()

        with PersistentState(state_dir, read_only=True) as state:
            replayed = replay(state, scenario.topo, localize=False)
        assert replayed.replayed_reports == len(payloads)
        # Shard merge order is nondeterministic; compare as multisets.
        assert sorted(replayed.incident_keys()) == sorted(live_keys)


class TestBisection:
    def test_stop_seq_brackets_first_failure(self, recorded_campaign):
        scenario, state_dir, _ = recorded_campaign
        with PersistentState(state_dir, read_only=True) as state:
            full = replay(state, scenario.topo, localize=False)
        first_bad = full.first_failure_seq
        with PersistentState(state_dir, read_only=True) as state:
            before = replay(
                state, scenario.topo, stop_seq=first_bad - 1, localize=False
            )
        assert before.incidents == []
        with PersistentState(state_dir, read_only=True) as state:
            at = replay(state, scenario.topo, stop_seq=first_bad, localize=False)
        assert at.first_failure_seq == first_bad
        assert len(at.incidents) == 1

    def test_start_seq_skips_early_reports_but_applies_controls(
        self, recorded_campaign
    ):
        scenario, state_dir, _ = recorded_campaign
        with PersistentState(state_dir, read_only=True) as state:
            full = replay(state, scenario.topo, localize=False)
        with PersistentState(state_dir, read_only=True) as state:
            windowed = replay(
                state,
                scenario.topo,
                start_seq=full.first_failure_seq,
                localize=False,
            )
        # Controls before the window still applied (state must be correct)
        assert windowed.replayed_controls == full.replayed_controls
        assert windowed.skipped_reports > 0
        assert windowed.incident_keys() == full.incident_keys()


class TestPrunedWalBase:
    def test_replay_from_covering_snapshot_after_prune(self, tmp_path):
        scenario = build_linear(4)
        state_dir = str(tmp_path)
        server = VeriDPServer(scenario.topo, state_dir=state_dir, fsync="never")
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        # Rotate the bootstrap records out, land one update in the new
        # segment (an empty successor blocks pruning by design), then
        # snapshot and prune the prefix.
        server.persist.wal._rotate_locked()
        server.apply_rule_update("S1", "10.99.0.0/24", 2)
        server.snapshot_now()
        removed = server.persist.prune_wal()
        assert removed > 0
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        result = net.inject_from_host("H1", header)
        for report in result.reports:
            server.receive_report_bytes(pack_report(report, net.codec))
        live_keys = live_incident_keys(server)
        assert live_keys
        server.persist.wal.sync()
        server.close()

        with PersistentState(state_dir, read_only=True) as state:
            assert state.wal.first_seq() not in (None, 1)
            replayed = replay(state, scenario.topo)
        assert replayed.source == "snapshot"
        assert replayed.incident_keys() == live_keys

    def test_pruned_wal_without_snapshot_refused(self, tmp_path):
        scenario = build_linear(3)
        state_dir = str(tmp_path)
        with PersistentState(state_dir, fsync="never") as state:
            state.boot(scenario.topo)
            for i in range(10):
                state.log_control(ControlEvent("add", "S1", f"10.{i}.1.0/24", 2))
            state.wal._rotate_locked()
            state.log_control(ControlEvent("add", "S1", "10.200.0.0/24", 2))
            removed = state.wal.prune_segments_before(state.wal.last_seq - 1)
            assert removed > 0
        import os

        for snap in PersistentState(state_dir, read_only=True).snapshots.paths():
            os.remove(snap)
        with PersistentState(state_dir, read_only=True) as state:
            assert state.wal.first_seq() not in (None, 1)
            with pytest.raises(RecoveryError):
                replay(state, scenario.topo)
