"""Recovery and durable-server tests: boot paths, WAL-first updates,
restart equality, state_version, and report recording."""

import os

import pytest

from repro.bdd.headerspace import HeaderSpace
from repro.core.incremental import IncrementalPathTable, LpmProvider
from repro.core.reports import pack_report
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.persist import PersistentState, RecoveryError, lpm_rules_from_topology
from repro.persist.snapshot import bdd_fingerprint
from repro.persist.wal import RT_CONTROL, RT_REPORT, ControlEvent
from repro.topologies import build_linear
from repro.topologies.base import lpm_ruleset_for


def fingerprint_signature(table, hs):
    return {
        (inport, outport, entry.hops): bdd_fingerprint(hs.bdd, entry.headers)
        for (inport, outport), entries in table._entries.items()
        for entry in entries
    }


class TestLpmExtraction:
    def test_extracts_installed_routes(self):
        scenario = build_linear(3)
        rules = lpm_rules_from_topology(scenario.topo)
        assert rules  # install_routes=True populated the tables
        assert all(len(r) == 3 for r in rules)
        switches = {r[0] for r in rules}
        assert switches == set(scenario.topo.switches)

    def test_rejects_non_lpm_rules(self):
        from repro.netmodel.rules import FlowRule, Forward, Match

        scenario = build_linear(3)
        scenario.topo.switches["S1"].flow_table.add(
            FlowRule(150, Match.build(dst="10.0.1.0/24", dst_port=22), Forward(2))
        )
        with pytest.raises(RecoveryError, match="destination-prefix"):
            lpm_rules_from_topology(scenario.topo)


class TestBoot:
    def test_bootstrap_writes_wal_and_initial_snapshot(self, tmp_path):
        scenario = build_linear(3)
        with PersistentState(str(tmp_path), fsync="never") as ps:
            boot = ps.boot(scenario.topo)
            assert boot.source == "bootstrap"
            assert boot.replayed_controls == len(
                lpm_rules_from_topology(scenario.topo)
            )
            assert boot.state_version == boot.replayed_controls
            assert ps.wal.last_seq == boot.replayed_controls
            assert len(ps.snapshots.paths()) == 1

    def test_second_boot_uses_snapshot_and_matches(self, tmp_path):
        scenario = build_linear(3)
        with PersistentState(str(tmp_path), fsync="never") as ps:
            boot = ps.boot(scenario.topo)
            sig = fingerprint_signature(boot.table, boot.hs)
        with PersistentState(str(tmp_path), fsync="never") as ps:
            boot2 = ps.boot(scenario.topo)
            assert boot2.source == "snapshot"
            assert boot2.replayed_controls == 0
            assert boot2.state_version == boot.state_version
            assert fingerprint_signature(boot2.table, boot2.hs) == sig

    def test_wal_suffix_replayed_over_snapshot(self, tmp_path):
        scenario = build_linear(3)
        with PersistentState(str(tmp_path), fsync="never") as ps:
            boot = ps.boot(scenario.topo)
            # Post-snapshot updates land only in the WAL.
            ps.log_control(ControlEvent("add", "S1", "10.7.7.0/24", 2))
            boot.updater.add_rule("S1", "10.7.7.0/24", 2)
            sig = fingerprint_signature(boot.table, boot.hs)
            version = boot.state_version + 1
        with PersistentState(str(tmp_path), fsync="never") as ps:
            boot2 = ps.boot(scenario.topo)
            assert boot2.source == "snapshot"
            assert boot2.replayed_controls == 1
            assert boot2.state_version == version
            assert fingerprint_signature(boot2.table, boot2.hs) == sig

    def test_corrupt_snapshot_falls_back_to_wal_replay(self, tmp_path):
        scenario = build_linear(3)
        with PersistentState(str(tmp_path), fsync="never") as ps:
            boot = ps.boot(scenario.topo)
            sig = fingerprint_signature(boot.table, boot.hs)
        for snap in PersistentState(
            str(tmp_path), fsync="never"
        ).snapshots.paths():
            with open(snap, "r+b") as fh:
                fh.seek(16)
                fh.write(b"\xde\xad")
        with PersistentState(str(tmp_path), fsync="never") as ps:
            boot2 = ps.boot(scenario.topo)
            assert boot2.source == "wal"  # full log replay from scratch
            assert fingerprint_signature(boot2.table, boot2.hs) == sig

    def test_meta_guards_against_wrong_topology(self, tmp_path):
        with PersistentState(str(tmp_path), fsync="never") as ps:
            ps.boot(build_linear(3).topo)
        with PersistentState(str(tmp_path), fsync="never") as ps:
            with pytest.raises(RecoveryError, match="belongs to topology"):
                ps.boot(build_linear(4).topo)

    def test_pruned_wal_without_covering_snapshot_refused(self, tmp_path):
        scenario = build_linear(3)
        with PersistentState(str(tmp_path), fsync="never") as ps:
            ps.boot(scenario.topo)
        # Delete every snapshot but keep a WAL that no longer starts at 1.
        state_dir = str(tmp_path)
        with PersistentState(state_dir, fsync="never") as ps:
            boot = ps.boot(scenario.topo)
            for i in range(40):
                ps.log_control(ControlEvent("add", "S1", f"10.{i}.0.0/24", 2))
            ps.wal._rotate_locked()  # force a second segment
            ps.log_control(ControlEvent("add", "S1", "10.200.0.0/24", 2))
            removed = ps.wal.prune_segments_before(ps.wal.last_seq - 1)
            assert removed > 0
        for snap in PersistentState(state_dir, fsync="never").snapshots.paths():
            os.remove(snap)
        with PersistentState(state_dir, fsync="never") as ps:
            assert ps.wal.first_seq() not in (None, 1)
            with pytest.raises(RecoveryError, match="pruned"):
                ps.boot(scenario.topo)


class TestDurableServer:
    def _rig(self, tmp_path, **kwargs):
        scenario = build_linear(4)
        server = VeriDPServer(
            scenario.topo, state_dir=str(tmp_path), fsync="never", **kwargs
        )
        return scenario, server

    def test_boot_source_and_stats_surface(self, tmp_path):
        _, server = self._rig(tmp_path)
        stats = server.stats()
        assert stats["durable"] is True
        assert stats["boot_source"] == "bootstrap"
        assert stats["state_version"] == stats["wal_records_control"]
        server.close()

    def test_rejects_explicit_headerspace(self, tmp_path):
        scenario = build_linear(3)
        with pytest.raises(ValueError, match="HeaderSpace"):
            VeriDPServer(
                scenario.topo, hs=HeaderSpace(), state_dir=str(tmp_path)
            )

    def test_verification_works_after_restart(self, tmp_path):
        scenario, server = self._rig(tmp_path)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        payloads = []
        for src, dst in scenario.host_pairs()[:6]:
            result = net.inject_from_host(src, scenario.header_between(src, dst))
            payloads += [pack_report(r, net.codec) for r in result.reports]
        for payload in payloads:
            server.receive_report_bytes(payload)
        assert server.incidents == []
        server.close()
        # Restart from disk: same verdicts, no rebuild.
        server2 = VeriDPServer(
            scenario.topo, state_dir=str(tmp_path), fsync="never"
        )
        assert server2.boot_source == "snapshot"
        for payload in payloads:
            server2.receive_report_bytes(payload, record=False)
        assert server2.incidents == []
        server2.close()

    def test_apply_rule_update_logs_then_applies(self, tmp_path):
        scenario, server = self._rig(tmp_path)
        seq_before = server.persist.wal.last_seq
        version_before = server.state_version
        elapsed = server.apply_rule_update("S1", "10.9.9.0/24", 2)
        assert elapsed > 0
        assert server.persist.wal.last_seq == seq_before + 1
        assert server.state_version == version_before + 1
        server.apply_rule_delete("S1", "10.9.9.0/24")
        assert server.state_version == version_before + 2
        records = list(server.persist.wal.records(start_seq=seq_before + 1))
        assert [r.rtype for r in records] == [RT_CONTROL, RT_CONTROL]
        events = [ControlEvent.decode(r.payload) for r in records]
        assert events[0] == ControlEvent("add", "S1", "10.9.9.0/24", 2)
        assert events[1] == ControlEvent("delete", "S1", "10.9.9.0/24", 0)
        server.close()

    def test_restart_after_updates_equals_fresh_rebuild(self, tmp_path):
        """The acceptance-criteria core, in-process: recovered == rebuilt."""
        scenario, server = self._rig(tmp_path)
        server.apply_rule_update("S1", "10.50.0.0/16", 2)
        server.apply_rule_update("S2", "10.50.0.0/16", 2)
        server.apply_rule_update("S1", "10.50.1.0/24", 2)
        server.apply_rule_delete("S1", "10.50.0.0/16")
        expected = fingerprint_signature(server.table, server.hs)
        rules = server._provider.iter_rules()
        server.close()

        server2 = VeriDPServer(
            scenario.topo, state_dir=str(tmp_path), fsync="never"
        )
        assert fingerprint_signature(server2.table, server2.hs) == expected
        # Against a from-scratch rebuild with the same final rule set:
        hs = HeaderSpace()
        provider = LpmProvider(scenario.topo, hs)
        for switch, prefix, port in rules:
            provider.add_rule(switch, prefix, port)
        fresh = IncrementalPathTable(scenario.topo, hs, provider=provider)
        assert fingerprint_signature(fresh.table, hs) == expected
        server2.close()

    def test_snapshot_every_triggers_checkpoints(self, tmp_path):
        scenario, server = self._rig(tmp_path, snapshot_every=2)
        snaps_before = len(server.persist.snapshots.paths())
        server.apply_rule_update("S1", "10.60.0.0/24", 2)
        server.apply_rule_update("S2", "10.60.0.0/24", 2)  # triggers
        assert len(server.persist.snapshots.paths()) > snaps_before or (
            # retention may have replaced rather than grown the set
            server.persist.snapshots.stats()["snapshots_written"] >= 2
        )
        server.close()

    def test_reports_recorded_at_ingestion(self, tmp_path):
        scenario, server = self._rig(tmp_path)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        result = net.inject_from_host(
            "H1", scenario.header_between("H1", "H2")
        )
        payload = pack_report(result.reports[0], net.codec)
        before = server.persist.wal.stats()["wal_records_report"]
        server.receive_report_bytes(payload)
        server.try_receive_report_bytes(payload)
        server.receive_report_bytes(payload, record=False)  # re-ingest path
        stats = server.persist.wal.stats()
        assert stats["wal_records_report"] == before + 2
        server.close()

    def test_refresh_and_force_rebuild_disabled(self, tmp_path):
        _, server = self._rig(tmp_path)
        assert server.refresh_if_dirty() is False
        with pytest.raises(RuntimeError, match="WAL"):
            server.force_rebuild()
        server.close()

    def test_sharded_daemon_logs_each_report_once_at_dispatch(self, tmp_path):
        """Batch-granular WAL logging: every submitted payload is logged
        exactly once (at dispatch), including join-flushed partial batches."""
        from repro.core.daemon import ShardedVeriDPDaemon

        scenario = build_linear(4)
        server = VeriDPServer(
            scenario.topo, state_dir=str(tmp_path), fsync="never"
        )
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        payloads = []
        for src, dst in scenario.host_pairs():
            result = net.inject_from_host(src, scenario.header_between(src, dst))
            payloads += [pack_report(r, net.codec) for r in result.reports]
        before = server.persist.wal.stats()["wal_records_report"]
        with ShardedVeriDPDaemon(
            server, workers=2, batch_size=8, overflow="block"
        ) as daemon:
            for payload in payloads:
                daemon.submit(payload)
            daemon.join(timeout=60.0)
            stats = daemon.stats()
        assert stats["processed"] == len(payloads)
        wal_stats = server.persist.wal.stats()
        assert wal_stats["wal_records_report"] == before + len(payloads)
        server.close()

    def test_non_durable_server_state_version_bumps_on_rebuild(self):
        scenario = build_linear(3)
        server = VeriDPServer(scenario.topo, scenario.channel)
        assert server.stats()["durable"] is False
        v0 = server.state_version
        server.force_rebuild()
        assert server.state_version == v0 + 1

    def test_durable_api_refused_without_state_dir(self):
        scenario = build_linear(3)
        server = VeriDPServer(scenario.topo)
        with pytest.raises(RuntimeError, match="state_dir"):
            server.apply_rule_update("S1", "10.0.0.0/24", 2)
        with pytest.raises(RuntimeError, match="state_dir"):
            server.snapshot_now()
        server.close()  # no-op, must not raise
