"""Subprocess driver for the crash-recovery suite.

Runs a durable :class:`VeriDPServer` (``fsync="always"``) over a
deterministic report stream that contains a real data-plane fault, and
appends every incident the live server raises to an fsynced JSONL
ledger *after* the verdict lands.  The parent test SIGKILLs this
process mid-ingestion and then checks that

* a restarted server recovers the exact path table, and
* replaying the WAL reproduces the pre-kill ledger.

Because the WAL is written (and fsynced) *before* verification while
the ledger line is written *after*, every ledger entry's report is
guaranteed to be on disk — the ledger can never get ahead of the log,
no matter where the SIGKILL lands.

Ledger lines are JSON objects:

* ``{"boot": source, "wal_seq": N}``   — once per driver start,
* ``{"wal_seq": N, "key": [...]}``     — one per live incident, where
  ``key`` is :func:`repro.persist.incident_key` and ``wal_seq`` is the
  log position after the incident's report (in direct mode, exactly
  the report's own seq).

Usage: ``python tests/persist/_crash_driver.py STATE_DIR LEDGER
[--mode direct|daemon] [--reports N]`` (run with ``PYTHONPATH=src``).
"""

import argparse
import json
import os
import sys


def fsynced_append(fh, obj):
    fh.write(json.dumps(obj) + "\n")
    fh.flush()
    os.fsync(fh.fileno())


def build_stream(scenario, net):
    """Healthy warm-up, then a mixed block with a live data-plane fault."""
    from repro.core.reports import pack_report
    from repro.dataplane import ModifyRuleOutput

    healthy = []
    for src, dst in scenario.host_pairs():
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        healthy += [pack_report(r, net.codec) for r in result.reports]

    # Misforward S2's H1->H4 route in the data plane only: the path
    # table still believes the configured route, so these reports fail.
    header = scenario.header_between("H1", "H4")
    rule = net.switch("S2").table.lookup(header, 3)
    ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
    faulty = [
        pack_report(r, net.codec)
        for r in net.inject_from_host("H1", header).reports
    ]
    return healthy, faulty


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("state_dir")
    parser.add_argument("ledger")
    parser.add_argument("--mode", choices=("direct", "daemon"), default="direct")
    parser.add_argument("--reports", type=int, default=200_000)
    args = parser.parse_args(argv)

    from repro.core.server import VeriDPServer
    from repro.dataplane import DataPlaneNetwork
    from repro.persist import incident_key
    from repro.topologies import build_linear

    scenario = build_linear(4)
    server = VeriDPServer(
        scenario.topo, state_dir=args.state_dir, fsync="always"
    )
    ledger = open(args.ledger, "a")
    fsynced_append(
        ledger,
        {"boot": server.boot_source, "wal_seq": server.persist.wal.last_seq},
    )

    # A few durable control-plane updates so recovery covers control
    # records too.  Only on first boot: they are in the WAL afterwards.
    if server.boot_source == "bootstrap":
        server.apply_rule_update("S1", "10.99.0.0/24", 2)
        server.apply_rule_update("S2", "10.99.0.0/24", 2)
        server.apply_rule_delete("S1", "10.99.0.0/24")

    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    healthy, faulty = build_stream(scenario, net)
    # Warm-up, then a repeating mixed block: faults keep arriving, so
    # the parent can kill at an arbitrary point and still have a
    # non-trivial ledger.
    stream = healthy + 10 * (healthy + faulty)

    seen = 0

    def drain_incidents():
        nonlocal seen
        while seen < len(server.incidents):
            incident = server.incidents[seen]
            key = incident_key(
                incident.verification.report,
                incident.verification.verdict.name,
            )
            fsynced_append(
                ledger,
                {"wal_seq": server.persist.wal.last_seq, "key": key},
            )
            seen += 1

    if args.mode == "direct":
        for i in range(args.reports):
            server.receive_report_bytes(stream[i % len(stream)])
            drain_incidents()
    else:
        from repro.core.daemon import ShardedVeriDPDaemon
        from repro.core.resilience import RestartBackoff
        from repro.dataplane import WorkerKill

        with ShardedVeriDPDaemon(
            server,
            workers=2,
            batch_size=32,
            overflow="block",
            restart_budget=3,
            poll_interval=0.02,
            backoff=RestartBackoff(base=0.01, cap=0.05),
        ) as daemon:
            for i in range(args.reports):
                daemon.submit(stream[i % len(stream)])
                if i == 2 * len(healthy):
                    WorkerKill(shard=0).apply(daemon)
                if i and i % 200 == 0:
                    # Shard results merge (and incidents land on the
                    # parent server) only during a flush: sync often so
                    # the ledger grows while the stream is in flight.
                    daemon.join(timeout=60.0)
                    drain_incidents()
            daemon.join(timeout=120.0)
            drain_incidents()

    server.close()
    ledger.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
