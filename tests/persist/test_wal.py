"""Unit tests for the write-ahead log: format, rotation, crash recovery."""

import os

import pytest

from repro.persist.wal import (
    RT_CONTROL,
    RT_MALFORMED,
    RT_REPORT,
    RT_REPORT_BATCH,
    WAL_MAGIC,
    ControlEvent,
    WalError,
    WriteAheadLog,
    unpack_report_batch,
)


def records_of(wal, **kwargs):
    return list(wal.records(**kwargs))


class TestAppendAndIterate:
    def test_round_trip_across_reopen(self, tmp_path):
        d = str(tmp_path)
        with WriteAheadLog(d, fsync="never") as wal:
            for i in range(10):
                assert wal.append_report(bytes([i]) * 8) == i + 1
            assert wal.last_seq == 10
        with WriteAheadLog(d, fsync="never") as wal:
            got = records_of(wal)
            assert [r.seq for r in got] == list(range(1, 11))
            assert [r.payload for r in got] == [bytes([i]) * 8 for i in range(10)]
            assert all(r.rtype == RT_REPORT for r in got)

    def test_streams_are_tagged(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            wal.append_control(ControlEvent("add", "S1", "10.0.1.0/24", 2))
            wal.append_report(b"x" * 28)
            wal.append_malformed(b"junk")
            types = [r.rtype for r in records_of(wal)]
        assert types == [RT_CONTROL, RT_REPORT, RT_MALFORMED]

    def test_start_and_stop_seq_window(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            for i in range(20):
                wal.append_report(bytes([i]))
            window = records_of(wal, start_seq=5, stop_seq=9)
            assert [r.seq for r in window] == [5, 6, 7, 8, 9]

    def test_empty_payload_and_large_payload(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            wal.append_report(b"")
            wal.append_report(b"z" * 10_000)
            got = records_of(wal)
            assert got[0].payload == b""
            assert got[1].payload == b"z" * 10_000

    def test_append_rejects_bad_type(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            with pytest.raises(WalError):
                wal.append(99, b"payload")


class TestRotation:
    def test_segments_rotate_and_iterate_in_order(self, tmp_path):
        d = str(tmp_path)
        with WriteAheadLog(d, fsync="never", segment_max_bytes=256) as wal:
            for i in range(50):
                wal.append_report(bytes([i]) * 16)
            assert wal.segment_count > 1
            assert [r.seq for r in records_of(wal)] == list(range(1, 51))
        # Reopen sees the same multi-segment history.
        with WriteAheadLog(d, fsync="never", segment_max_bytes=256) as wal:
            assert wal.last_seq == 50
            assert [r.seq for r in records_of(wal)] == list(range(1, 51))

    def test_appends_continue_after_reopen_of_rotated_log(self, tmp_path):
        d = str(tmp_path)
        with WriteAheadLog(d, fsync="never", segment_max_bytes=128) as wal:
            for i in range(20):
                wal.append_report(b"a" * 20)
        with WriteAheadLog(d, fsync="never", segment_max_bytes=128) as wal:
            assert wal.append_report(b"b") == 21
            assert records_of(wal)[-1].payload == b"b"

    def test_prune_keeps_coverage(self, tmp_path):
        d = str(tmp_path)
        with WriteAheadLog(d, fsync="never", segment_max_bytes=128) as wal:
            for i in range(30):
                wal.append_report(bytes([i]) * 20)
            before = wal.segment_count
            removed = wal.prune_segments_before(15)
            assert removed > 0
            assert wal.segment_count == before - removed
            first = wal.first_seq()
            # Everything from first_seq on is still iterable and contiguous.
            assert first <= 16
            assert [r.seq for r in records_of(wal, start_seq=first)] == list(
                range(first, 31)
            )


class TestTornTailRecovery:
    def _fill(self, d, n=12, **kwargs):
        with WriteAheadLog(d, fsync="never", **kwargs) as wal:
            for i in range(n):
                wal.append_report(bytes([i]) * 10)
            return wal.last_seq

    def test_truncated_tail_recovers_prefix(self, tmp_path):
        d = str(tmp_path)
        self._fill(d)
        path = sorted(os.listdir(d))[0]
        full = os.path.join(d, path)
        size = os.path.getsize(full)
        with open(full, "r+b") as fh:
            fh.truncate(size - 5)  # torn mid-record
        with WriteAheadLog(d, fsync="never") as wal:
            assert wal.last_seq == 11
            assert wal.stats()["wal_truncated_bytes"] > 0
            assert [r.seq for r in records_of(wal)] == list(range(1, 12))
            # The log stays appendable after the repair.
            assert wal.append_report(b"new") == 12

    def test_bitflip_in_tail_record_recovers_prefix(self, tmp_path):
        d = str(tmp_path)
        self._fill(d)
        full = os.path.join(d, sorted(os.listdir(d))[0])
        size = os.path.getsize(full)
        with open(full, "r+b") as fh:
            fh.seek(size - 3)
            byte = fh.read(1)[0]
            fh.seek(size - 3)
            fh.write(bytes([byte ^ 0xFF]))
        with WriteAheadLog(d, fsync="never") as wal:
            assert wal.last_seq == 11

    def test_corrupt_middle_segment_drops_later_segments(self, tmp_path):
        d = str(tmp_path)
        self._fill(d, n=40, segment_max_bytes=128)
        segs = sorted(p for p in os.listdir(d) if p.startswith("wal-"))
        assert len(segs) >= 3
        victim = os.path.join(d, segs[1])
        with open(victim, "r+b") as fh:
            fh.seek(len(WAL_MAGIC) + 2)
            fh.write(b"\xff\xff")
        with WriteAheadLog(d, fsync="never") as wal:
            remaining = sorted(p for p in os.listdir(d) if p.startswith("wal-"))
            # Everything after the damaged segment is gone: a gap in the
            # sequence space would make "snapshot + suffix" unsound.
            assert len(remaining) <= 2
            seqs = [r.seq for r in records_of(wal)]
            assert seqs == list(range(1, len(seqs) + 1))
            assert wal.append_report(b"after-repair") == wal.last_seq

    def test_read_only_open_does_not_modify_disk(self, tmp_path):
        d = str(tmp_path)
        self._fill(d)
        full = os.path.join(d, sorted(os.listdir(d))[0])
        size = os.path.getsize(full)
        with open(full, "r+b") as fh:
            fh.truncate(size - 5)
        damaged = os.path.getsize(full)
        wal = WriteAheadLog(d, read_only=True)
        assert wal.last_seq == 11
        assert os.path.getsize(full) == damaged  # not repaired in place
        wal.close()

    def test_empty_directory_starts_at_seq_zero(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            assert wal.last_seq == 0
            assert wal.first_seq() is None
            assert records_of(wal) == []


class TestFsyncPolicies:
    @pytest.mark.parametrize("policy", ["always", "interval", "never"])
    def test_policies_preserve_records(self, tmp_path, policy):
        d = str(tmp_path / policy)
        with WriteAheadLog(d, fsync=policy, fsync_interval_s=0.01) as wal:
            for i in range(5):
                wal.append_report(bytes([i]))
        with WriteAheadLog(d, fsync="never") as wal:
            assert wal.last_seq == 5

    def test_always_fsyncs_per_record(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="always") as wal:
            base = wal.stats()["wal_fsyncs"]
            wal.append_report(b"a")
            wal.append_report(b"b")
            assert wal.stats()["wal_fsyncs"] >= base + 2

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path), fsync="sometimes")

    def test_explicit_sync_always_honored(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            wal.append_report(b"a")
            base = wal.stats()["wal_fsyncs"]
            wal.sync()
            assert wal.stats()["wal_fsyncs"] == base + 1


class TestControlEventCodec:
    @pytest.mark.parametrize(
        "event",
        [
            ControlEvent("add", "S1", "10.0.1.0/24", 3),
            ControlEvent("delete", "CORE-1", "0.0.0.0/1"),
            ControlEvent("add", "z" * 255, "255.255.255.255/32", 2**31 - 1),
            ControlEvent("add", "S1", "10.0.0.0/8", -1),  # DROP_PORT
        ],
    )
    def test_round_trip(self, event):
        assert ControlEvent.decode(event.encode()) == event

    @pytest.mark.parametrize(
        "payload",
        [b"", b"\x00", b"\x09\x02S1\x0b10.0.1.0/24" + b"\x00" * 4],
    )
    def test_malformed_payloads_raise(self, payload):
        with pytest.raises(WalError):
            ControlEvent.decode(payload)

    def test_trailing_bytes_rejected(self):
        blob = ControlEvent("add", "S1", "10.0.1.0/24", 3).encode() + b"x"
        with pytest.raises(WalError):
            ControlEvent.decode(blob)


class TestAppendBatch:
    def test_batch_matches_single_appends_byte_for_byte(self, tmp_path):
        payloads = [bytes([i]) * (i + 1) for i in range(10)]
        single_dir, batch_dir = str(tmp_path / "s"), str(tmp_path / "b")
        with WriteAheadLog(single_dir, fsync="never") as wal:
            for payload in payloads:
                wal.append_report(payload)
        with WriteAheadLog(batch_dir, fsync="never") as wal:
            assert wal.append_batch(RT_REPORT, payloads) == len(payloads)
            assert wal.last_seq == len(payloads)
        single = open(os.path.join(single_dir, "wal-00000001.log"), "rb").read()
        batch = open(os.path.join(batch_dir, "wal-00000001.log"), "rb").read()
        assert single == batch

    def test_batch_interleaves_with_single_appends(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            wal.append_report(b"a")
            wal.append_batch(RT_REPORT, [b"b", b"c"])
            wal.append_report(b"d")
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            records = list(wal.records())
            assert [r.payload for r in records] == [b"a", b"b", b"c", b"d"]
            assert [r.seq for r in records] == [1, 2, 3, 4]

    def test_empty_batch_is_a_no_op(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            wal.append_report(b"a")
            assert wal.append_batch(RT_REPORT, []) == 1
            assert wal.last_seq == 1

    def test_batch_sets_first_seq_and_rotates(self, tmp_path):
        with WriteAheadLog(
            str(tmp_path), fsync="never", segment_max_bytes=64
        ) as wal:
            wal.append_batch(RT_REPORT, [b"x" * 30] * 4)
            assert wal.segment_count > 1
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            assert [r.payload for r in wal.records()] == [b"x" * 30] * 4

    def test_batch_fsync_always_syncs_once(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="always") as wal:
            before = wal.stats()["wal_fsyncs"]
            wal.append_batch(RT_REPORT, [b"a", b"b", b"c"])
            assert wal.stats()["wal_fsyncs"] == before + 1

    def test_batch_rejects_bad_type_and_read_only(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            wal.append_report(b"a")
            with pytest.raises(WalError):
                wal.append_batch(99, [b"x"])
        ro = WriteAheadLog(str(tmp_path), read_only=True)
        with pytest.raises(WalError):
            ro.append_batch(RT_REPORT, [b"x"])
        ro.close()


class TestReportBatchRecord:
    def test_round_trip_one_record_many_payloads(self, tmp_path):
        payloads = [bytes([i]) * (i * 7 % 40 + 1) for i in range(20)]
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            assert wal.append_report_batch(payloads) == 1
            assert wal.last_seq == 1
        with WriteAheadLog(str(tmp_path), read_only=True) as wal:
            records = list(wal.records())
            assert len(records) == 1
            assert records[0].rtype == RT_REPORT_BATCH
            assert unpack_report_batch(records[0].payload) == payloads

    def test_empty_batch_is_a_no_op(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            wal.append_report(b"a")
            assert wal.append_report_batch([]) == 1
            assert wal.last_seq == 1

    def test_empty_payloads_survive(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            wal.append_report_batch([b"", b"x", b""])
        with WriteAheadLog(str(tmp_path), read_only=True) as wal:
            (record,) = wal.records()
            assert unpack_report_batch(record.payload) == [b"", b"x", b""]

    def test_oversized_payload_rejected(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            with pytest.raises(WalError):
                wal.append_report_batch([b"x" * 0x10000])
            assert wal.last_seq == 0

    def test_truncated_body_raises(self):
        payloads = [b"abc", b"de"]
        with pytest.raises(WalError):
            unpack_report_batch(b"\x00")  # torn length prefix
        body = b"\x00\x03abc\x00\x02de"
        assert unpack_report_batch(body) == payloads
        with pytest.raises(WalError):
            unpack_report_batch(body[:-1])  # torn payload

    def test_stats_count_payloads_not_records(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            wal.append_report(b"solo")
            wal.append_report_batch([b"a", b"b", b"c"])
            stats = wal.stats()
        assert stats["wal_records_report"] == 4
        assert stats["wal_records_report_batch"] == 1

    def test_interleaves_with_other_streams(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            wal.append_control(ControlEvent("add", "S1", "10.0.1.0/24", 1))
            wal.append_report_batch([b"a", b"b"])
            wal.append_malformed(b"junk")
        with WriteAheadLog(str(tmp_path), read_only=True) as wal:
            assert [r.rtype for r in wal.records()] == [
                RT_CONTROL,
                RT_REPORT_BATCH,
                RT_MALFORMED,
            ]
            assert [r.seq for r in wal.records()] == [1, 2, 3]


class TestStats:
    def test_stream_counters(self, tmp_path):
        with WriteAheadLog(str(tmp_path), fsync="never") as wal:
            wal.append_control(ControlEvent("add", "S1", "10.0.1.0/24", 1))
            wal.append_report(b"r1")
            wal.append_report(b"r2")
            wal.append_malformed(b"m")
            stats = wal.stats()
        assert stats["wal_records_control"] == 1
        assert stats["wal_records_report"] == 2
        assert stats["wal_records_malformed"] == 1
        assert stats["wal_last_seq"] == 4
        assert stats["wal_bytes_appended"] > 0
