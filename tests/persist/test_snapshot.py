"""Snapshot store mechanics + full state round-trip on real topologies."""

import glob
import os

import pytest

from repro.bdd.headerspace import HeaderSpace
from repro.core.incremental import IncrementalPathTable, LpmProvider
from repro.persist.recovery import capture_state, restore_state
from repro.persist.snapshot import (
    SnapshotError,
    SnapshotStore,
    bdd_fingerprint,
    read_snapshot,
    write_snapshot,
)
from repro.topologies import (
    build_internet2,
    build_linear,
    build_stanford,
    internet2_lpm_ruleset,
)
from repro.topologies.base import lpm_ruleset_for


def fingerprint_signature(table, hs):
    """Manager-independent table signature: structural BDDs, not node ids."""
    return {
        (inport, outport, entry.hops): bdd_fingerprint(hs.bdd, entry.headers)
        for (inport, outport), entries in table._entries.items()
        for entry in entries
    }


def lpm_rig(scenario, ruleset):
    hs = HeaderSpace()
    provider = LpmProvider(scenario.topo, hs)
    for switch, rules in sorted(ruleset.items()):
        for prefix, port in rules:
            provider.add_rule(switch, prefix, port)
    updater = IncrementalPathTable(scenario.topo, hs, provider=provider)
    return hs, updater


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "s.snap")
        payload = {"wal_seq": 7, "data": [1, 2, 3]}
        write_snapshot(path, payload)
        assert read_snapshot(path) == payload
        assert not glob.glob(str(tmp_path / "*.tmp"))

    @pytest.mark.parametrize("damage", ["truncate", "flip", "magic", "foreign"])
    def test_damaged_files_raise(self, tmp_path, damage):
        path = str(tmp_path / "s.snap")
        write_snapshot(path, {"wal_seq": 1, "x": "y" * 100})
        blob = bytearray(open(path, "rb").read())
        if damage == "truncate":
            blob = blob[: len(blob) // 2]
        elif damage == "flip":
            blob[30] ^= 0xFF
        elif damage == "magic":
            blob[:8] = b"NOTASNAP"
        elif damage == "foreign":
            blob = b"completely unrelated bytes"
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_non_state_payload_rejected(self, tmp_path):
        path = str(tmp_path / "s.snap")
        write_snapshot(path, {"wal_seq": 1})
        # a dict without wal_seq is not a state snapshot
        import pickle
        import struct
        import zlib

        from repro.persist.snapshot import SNAP_MAGIC, SNAPSHOT_FORMAT

        body = pickle.dumps({"no": "wal_seq"}, protocol=4)
        blob = SNAP_MAGIC + struct.pack(
            ">HIQ", SNAPSHOT_FORMAT, zlib.crc32(body), len(body)
        ) + body
        with open(path, "wb") as fh:
            fh.write(blob)
        with pytest.raises(SnapshotError):
            read_snapshot(path)


class TestStore:
    def test_load_latest_skips_corrupt(self, tmp_path):
        store = SnapshotStore(str(tmp_path), retain=5)
        store.save({"wal_seq": 10, "tag": "old"})
        newest = store.save({"wal_seq": 20, "tag": "new"})
        with open(newest, "r+b") as fh:
            fh.seek(12)
            fh.write(b"\xff\xff")
        assert store.load_latest()["tag"] == "old"
        assert store.stats()["snapshot_load_failures"] == 1

    def test_retention_prunes_oldest(self, tmp_path):
        store = SnapshotStore(str(tmp_path), retain=2)
        for seq in (10, 20, 30, 40):
            store.save({"wal_seq": seq})
        kept = store.paths()
        assert len(kept) == 2
        assert store.load_latest()["wal_seq"] == 40

    def test_stray_tmp_files_pruned(self, tmp_path):
        store = SnapshotStore(str(tmp_path), retain=2)
        stray = str(tmp_path / "snap-0000000000000005.snap.tmp")
        with open(stray, "wb") as fh:
            fh.write(b"half-written checkpoint")
        store.save({"wal_seq": 10})
        assert not os.path.exists(stray)

    def test_load_first_covering_picks_oldest_sufficient(self, tmp_path):
        store = SnapshotStore(str(tmp_path), retain=10)
        for seq in (10, 20, 30):
            store.save({"wal_seq": seq})
        assert store.load_first_covering(5)["wal_seq"] == 10
        assert store.load_first_covering(10)["wal_seq"] == 10
        assert store.load_first_covering(11)["wal_seq"] == 20
        assert store.load_first_covering(31) is None


class TestStateRoundTrip:
    """capture_state -> bytes -> restore_state reproduces the exact table."""

    def _round_trip(self, scenario, ruleset, tmp_path):
        hs, updater = lpm_rig(scenario, ruleset)
        payload = capture_state(
            scenario.topo, hs, updater, state_version=17, wal_seq=42
        )
        path = str(tmp_path / "state.snap")
        write_snapshot(path, payload)
        hs2, updater2 = restore_state(read_snapshot(path), scenario.topo)
        assert fingerprint_signature(updater.table, hs) == fingerprint_signature(
            updater2.table, hs2
        )
        assert updater2.table.version == updater.table.version
        # The restored table's *compiled* fast path agrees with the
        # original: verify a sampled report set on both.
        return hs, updater, hs2, updater2

    def test_linear(self, tmp_path):
        scenario = build_linear(4, install_routes=False)
        ruleset = lpm_ruleset_for(scenario.topo, scenario.subnets)
        self._round_trip(scenario, ruleset, tmp_path)

    def test_stanford(self, tmp_path):
        scenario = build_stanford(
            subnets_per_zone=1,
            install_routes=False,
            with_acls=False,
            with_ssh_detours=False,
        )
        ruleset = lpm_ruleset_for(scenario.topo, scenario.subnets)
        self._round_trip(scenario, ruleset, tmp_path)

    def test_internet2(self, tmp_path):
        scenario = build_internet2(prefixes_per_pop=1, install_routes=False)
        ruleset = internet2_lpm_ruleset(scenario)
        self._round_trip(scenario, ruleset, tmp_path)

    def test_flatbdd_matchers_survive_round_trip(self, tmp_path):
        scenario = build_linear(4, install_routes=False)
        ruleset = lpm_ruleset_for(scenario.topo, scenario.subnets)
        hs, updater, hs2, updater2 = self._round_trip(scenario, ruleset, tmp_path)
        updater.table.compile_matchers(hs)
        updater2.table.compile_matchers(hs2)
        for (pair, entries), (pair2, entries2) in zip(
            sorted(updater.table._entries.items()),
            sorted(updater2.table._entries.items()),
        ):
            assert pair == pair2
            for entry, entry2 in zip(entries, entries2):
                # Evaluate both compiled matchers on probe headers drawn
                # from every subnet: identical accept/reject behaviour.
                for src, dst in scenario.host_pairs():
                    header = scenario.header_between(src, dst)
                    value = hs.header_value(header.as_dict())
                    assert entry.compiled_matcher(hs).evaluate_value(
                        value
                    ) == entry2.compiled_matcher(hs2).evaluate_value(value)

    def test_incremental_updates_work_after_restore(self, tmp_path):
        """The restored updater is live: Section 4.4 updates keep working."""
        scenario = build_linear(4, install_routes=False)
        ruleset = lpm_ruleset_for(scenario.topo, scenario.subnets)
        hs, updater, hs2, updater2 = self._round_trip(scenario, ruleset, tmp_path)
        for u in (updater, updater2):
            u.add_rule("S1", "10.9.9.0/24", 2)
            u.delete_rule("S1", "10.9.9.0/24")
            u.add_rule("S2", "10.8.8.0/24", 2)
        assert fingerprint_signature(updater.table, hs) == fingerprint_signature(
            updater2.table, hs2
        )

    def test_restore_rejects_wrong_topology(self, tmp_path):
        scenario = build_linear(3, install_routes=False)
        ruleset = lpm_ruleset_for(scenario.topo, scenario.subnets)
        hs, updater = lpm_rig(scenario, ruleset)
        payload = capture_state(scenario.topo, hs, updater, 1, 1)
        other = build_linear(4, install_routes=False)
        from repro.persist.recovery import RecoveryError

        with pytest.raises(RecoveryError):
            restore_state(payload, other.topo)
