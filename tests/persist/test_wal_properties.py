"""Property tests: the WAL recovers the longest valid prefix, always.

The central durability claim — arbitrary damage to the tail of the log
(torn writes, bit flips) never crashes recovery and never loses records
*before* the damage — is exercised exhaustively: truncation at **every**
byte offset of a small log, and bit flips at every byte, plus
hypothesis-driven random streams.  Payload corruption reuses the chaos
taxonomy from :mod:`repro.dataplane.report_faults` so the damage shapes
match what the chaos campaign injects on the transport.
"""

import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplane.report_faults import BitFlipReports, ReportStreamFaultInjector
from repro.persist.wal import RT_REPORT, WriteAheadLog


def _write_log(directory, payloads, **kwargs):
    with WriteAheadLog(directory, fsync="never", **kwargs) as wal:
        for payload in payloads:
            wal.append_report(payload)
    paths = sorted(
        os.path.join(directory, p)
        for p in os.listdir(directory)
        if p.startswith("wal-")
    )
    return paths


def _recovered_payloads(directory):
    with WriteAheadLog(directory, fsync="never") as wal:
        return [r.payload for r in wal.records()]


payload_streams = st.lists(
    st.binary(min_size=0, max_size=40), min_size=1, max_size=12
)


class TestTruncationEveryOffset:
    def test_every_truncation_point_recovers_a_prefix(self, tmp_path):
        """Cut the log at every byte offset: recovery yields an exact prefix."""
        payloads = [bytes([i]) * (3 + i) for i in range(6)]
        ref = str(tmp_path / "ref")
        (ref_seg,) = _write_log(ref, payloads)
        blob = open(ref_seg, "rb").read()
        for cut in range(len(blob) + 1):
            d = str(tmp_path / f"cut-{cut}")
            os.makedirs(d)
            seg = os.path.join(d, os.path.basename(ref_seg))
            with open(seg, "wb") as fh:
                fh.write(blob[:cut])
            got = _recovered_payloads(d)
            assert got == payloads[: len(got)], f"not a prefix at cut={cut}"
            # Monotone: cutting at a later offset never recovers fewer
            # records than the longest full-record prefix below it.
            if cut == len(blob):
                assert got == payloads

    def test_every_single_byte_flip_recovers_a_prefix(self, tmp_path):
        payloads = [bytes([i]) * 5 for i in range(4)]
        ref = str(tmp_path / "ref")
        (ref_seg,) = _write_log(ref, payloads)
        blob = bytearray(open(ref_seg, "rb").read())
        for pos in range(len(blob)):
            d = str(tmp_path / f"flip-{pos}")
            os.makedirs(d)
            corrupted = bytearray(blob)
            corrupted[pos] ^= 0x40
            with open(os.path.join(d, os.path.basename(ref_seg)), "wb") as fh:
                fh.write(bytes(corrupted))
            got = _recovered_payloads(d)
            # A flip before record k's end invalidates k and everything
            # after; payloads recovered must still be an exact prefix.
            assert got == payloads[: len(got)], f"not a prefix at flip={pos}"


class TestHypothesisStreams:
    @settings(max_examples=40, deadline=None)
    @given(payloads=payload_streams, cut_frac=st.floats(0.0, 1.0))
    def test_random_stream_truncation(self, tmp_path_factory, payloads, cut_frac):
        d = str(tmp_path_factory.mktemp("wal"))
        (seg,) = _write_log(d, payloads)
        blob = open(seg, "rb").read()
        cut = int(len(blob) * cut_frac)
        with open(seg, "wb") as fh:
            fh.write(blob[:cut])
        got = _recovered_payloads(d)
        assert got == payloads[: len(got)]

    @settings(max_examples=40, deadline=None)
    @given(
        payloads=payload_streams,
        pos_frac=st.floats(0.0, 1.0),
        mask=st.integers(min_value=1, max_value=255),
    )
    def test_random_stream_bitflip(self, tmp_path_factory, payloads, pos_frac, mask):
        d = str(tmp_path_factory.mktemp("wal"))
        (seg,) = _write_log(d, payloads)
        blob = bytearray(open(seg, "rb").read())
        pos = min(len(blob) - 1, int(len(blob) * pos_frac))
        blob[pos] ^= mask
        with open(seg, "wb") as fh:
            fh.write(bytes(blob))
        got = _recovered_payloads(d)
        assert got == payloads[: len(got)]

    @settings(max_examples=25, deadline=None)
    @given(payloads=payload_streams, seed=st.integers(0, 2**16))
    def test_multi_segment_damage_recovers_contiguous_prefix(
        self, tmp_path_factory, payloads, seed
    ):
        d = str(tmp_path_factory.mktemp("wal"))
        paths = _write_log(d, payloads, segment_max_bytes=64)
        rng = random.Random(seed)
        victim = rng.choice(paths)
        blob = bytearray(open(victim, "rb").read())
        if len(blob) > 8:  # keep the magic: damage a record, not the header
            blob[rng.randrange(8, len(blob))] ^= 0xFF
            with open(victim, "wb") as fh:
                fh.write(bytes(blob))
        got = _recovered_payloads(d)
        assert got == payloads[: len(got)]


class TestChaosTaxonomyCorruption:
    """Damage whole stored payloads with the chaos campaign's fault shapes."""

    def test_bitflipped_report_payloads_bound_the_recovered_prefix(self, tmp_path):
        payloads = [bytes(range(20)) for _ in range(10)]
        injector = ReportStreamFaultInjector([BitFlipReports(rate=0.4)], seed=1202)
        injection = injector.run(payloads)
        d = str(tmp_path)
        # The WAL stores what arrived — corrupted or not.  Its own CRC is
        # over the *record*, so payload corruption before append is data
        # (stored faithfully), while corruption on disk is damage.
        with WriteAheadLog(d, fsync="never") as wal:
            for delivery in injection.deliveries:
                wal.append_report(delivery.payload)
        with WriteAheadLog(d, fsync="never") as wal:
            stored = [r.payload for r in wal.records()]
        assert stored == [dv.payload for dv in injection.deliveries]

    def test_on_disk_flip_inside_a_payload_truncates_there(self, tmp_path):
        payloads = [bytes([i]) * 30 for i in range(8)]
        d = str(tmp_path)
        (seg,) = _write_log(d, payloads)
        blob = bytearray(open(seg, "rb").read())
        # Flip a byte inside record 4's payload region: records 1-3 survive.
        record_size = (len(blob) - 8) // 8
        pos = 8 + 3 * record_size + record_size // 2
        blob[pos] ^= 0x01
        with open(seg, "wb") as fh:
            fh.write(bytes(blob))
        got = _recovered_payloads(d)
        assert got == payloads[:3]
