"""Unit tests for the Section 6 experiment harnesses."""

import random

import pytest

from repro.analysis import (
    build_and_measure,
    distribution_cdf,
    measure_fnr,
    measure_update_times,
    measure_verification_time,
    path_count_distribution,
    reports_from_table,
    run_localization_campaign,
    simulate_deviation,
    sweep_fnr_over_bits,
)
from repro.analysis.fnr import FnrResult
from repro.netmodel.rules import DROP_PORT
from repro.topologies import (
    build_fattree,
    build_internet2,
    build_linear,
    internet2_lpm_ruleset,
)


@pytest.fixture(scope="module")
def fattree_row():
    return build_and_measure(build_fattree(4), "FT(k=4)")


class TestTable2Harness:
    def test_row_shape(self, fattree_row):
        setup, pairs, paths, avg, secs = fattree_row.as_tuple()
        assert setup == "FT(k=4)"
        assert pairs > 0 and paths >= pairs
        assert 1.0 <= avg <= 8.0
        assert secs >= 0

    def test_distribution_sums_to_pairs(self, fattree_row):
        dist = path_count_distribution(fattree_row.table)
        assert sum(dist.values()) == fattree_row.stats.num_pairs

    def test_cdf_monotone_and_complete(self, fattree_row):
        cdf = distribution_cdf(path_count_distribution(fattree_row.table))
        fracs = [f for _, f in cdf]
        assert all(a <= b for a, b in zip(fracs, fracs[1:]))
        assert fracs[-1] == pytest.approx(1.0)

    def test_cdf_of_empty_distribution(self):
        assert distribution_cdf({}) == []


class TestFnrHarness:
    def test_result_math(self):
        result = FnrResult(bits=16, trials=100, arrived=50, missed=5)
        assert result.absolute_fnr == pytest.approx(0.05)
        assert result.relative_fnr == pytest.approx(0.1)

    def test_zero_division_guards(self):
        result = FnrResult(bits=16, trials=0, arrived=0, missed=0)
        assert result.absolute_fnr == 0.0
        assert result.relative_fnr == 0.0

    def test_fnr_decreases_with_bits(self, fattree_row):
        results = sweep_fnr_over_bits(
            fattree_row.builder, fattree_row.table, bit_widths=(8, 32), trials=400
        )
        assert results[0].absolute_fnr >= results[1].absolute_fnr
        assert results[0].relative_fnr >= results[0].absolute_fnr

    def test_wide_tags_eliminate_false_negatives(self, fattree_row):
        result = measure_fnr(fattree_row.builder, fattree_row.table, 64, 400)
        assert result.missed == 0

    def test_deviation_to_drop_port_ends_path(self, fattree_row):
        builder, table = fattree_row.builder, fattree_row.table
        inport, outport, entry = next(
            (i, o, e) for i, o, e in table.all_entries() if o.port != DROP_PORT
        )
        header = builder.hs.sample_header(entry.headers)
        real = simulate_deviation(builder, entry.hops, header, 0, DROP_PORT)
        assert len(real) == 1
        assert real[0].out_port == DROP_PORT

    def test_invalid_trials_rejected(self, fattree_row):
        with pytest.raises(ValueError):
            measure_fnr(fattree_row.builder, fattree_row.table, 16, 0)

    def test_str(self):
        assert "m=16" in str(FnrResult(bits=16, trials=10, arrived=5, missed=1))


class TestLocalizationCampaign:
    def test_campaign_runs_and_recovers(self):
        result = run_localization_campaign(build_fattree(4), trials=6, seed=2)
        assert result.faults_exercised == 6
        assert result.failed_verifications > 0
        assert result.localization_probability > 0.9
        assert result.blame_accuracy > 0.9

    def test_strawman_campaign(self):
        result = run_localization_campaign(
            build_fattree(4), trials=6, seed=2, use_strawman=True
        )
        # The strawman reconstructs no paths; recovery stays at zero.
        assert result.recovered_paths == 0

    def test_pair_limit_respected(self):
        result = run_localization_campaign(
            build_fattree(4), trials=2, seed=2, pair_limit=10
        )
        assert result.failed_verifications <= 2 * 10

    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            run_localization_campaign(build_fattree(4), trials=0)

    def test_str(self):
        result = run_localization_campaign(build_fattree(4), trials=1, seed=0)
        assert "failed verifs" in str(result)


class TestTimingHarnesses:
    def test_verification_timing(self, fattree_row):
        timing = measure_verification_time(
            fattree_row.builder,
            fattree_row.table,
            "FT(k=4)",
            repeats=5,
            report_limit=50,
        )
        assert timing.reports == 50
        assert timing.mean_us > 0
        assert timing.median_us > 0
        assert timing.throughput_per_s > 0
        assert "FT(k=4)" in str(timing)

    def test_reports_from_table_all_verify(self, fattree_row):
        from repro.core.verifier import Verifier

        reports = reports_from_table(fattree_row.builder, fattree_row.table)
        verifier = Verifier(fattree_row.table, fattree_row.builder.hs)
        assert all(verifier.verify(r).passed for r in reports)

    def test_verification_timing_rejects_bad_repeats(self, fattree_row):
        with pytest.raises(ValueError):
            measure_verification_time(
                fattree_row.builder, fattree_row.table, "x", repeats=0
            )

    def test_update_timing_on_internet2(self):
        scenario = build_internet2(prefixes_per_pop=1, install_routes=False)
        ruleset = internet2_lpm_ruleset(scenario)
        timing, inc = measure_update_times(scenario, ruleset, "NEWY")
        assert len(timing.times_ms) == len(ruleset["NEWY"])
        assert timing.mean_ms > 0
        assert 0.0 <= timing.fraction_under(10.0) <= 1.0
        # The incrementally built table matches a full rebuild.
        from repro.core.pathtable import PathTableBuilder

        sig_inc = {
            (i, o, e.hops): e.headers for i, o, e in inc.table.all_entries()
        }
        rebuilt = PathTableBuilder(
            scenario.topo, inc.hs, provider=inc.provider
        ).build()
        sig_re = {(i, o, e.hops): e.headers for i, o, e in rebuilt.all_entries()}
        assert sig_inc == sig_re

    def test_update_timing_unknown_switch(self):
        scenario = build_internet2(prefixes_per_pop=1, install_routes=False)
        with pytest.raises(KeyError):
            measure_update_times(scenario, {}, "NOPE")


class TestMultiFaultCampaign:
    def test_basic_run(self):
        from repro.analysis import run_multi_fault_campaign
        from repro.topologies import build_fattree

        result = run_multi_fault_campaign(
            build_fattree(4), num_faults=2, trials=2, seed=3
        )
        assert result.num_faults == 2
        assert result.failed_verifications >= 0
        assert 0.0 <= result.localization_probability <= 1.0
        assert 0.0 <= result.blame_hit_rate <= 1.0
        assert "2 faults" in str(result)

    def test_rejects_bad_params(self):
        from repro.analysis import run_multi_fault_campaign
        from repro.topologies import build_fattree

        with pytest.raises(ValueError):
            run_multi_fault_campaign(build_fattree(4), num_faults=0)
        with pytest.raises(ValueError):
            run_multi_fault_campaign(build_fattree(4), num_faults=1, trials=0)


class TestFaultFuzz:
    def test_campaign_structure(self):
        from repro.analysis import run_fault_fuzz
        from repro.analysis.fuzz import FAULT_KINDS
        from repro.topologies import build_linear

        report = run_fault_fuzz(lambda: build_linear(3), trials_per_class=2, seed=1)
        assert set(report.per_class) == set(FAULT_KINDS)
        for stats in report.per_class.values():
            assert stats.trials == 2
            assert 0 <= stats.exercised <= 2
            assert stats.detected <= stats.exercised
            assert "exercised" in str(stats)
        assert len(report.rows()) == len(FAULT_KINDS)

    def test_kill_switch_is_blind_spot(self):
        from repro.analysis import run_fault_fuzz
        from repro.topologies import build_linear

        report = run_fault_fuzz(lambda: build_linear(3), trials_per_class=2, seed=1)
        dead = report.per_class["kill-switch"]
        assert dead.detected == 0
        assert dead.silent_losses > 0

    def test_rejects_bad_trials(self):
        from repro.analysis import run_fault_fuzz
        from repro.topologies import build_linear

        with pytest.raises(ValueError):
            run_fault_fuzz(lambda: build_linear(3), trials_per_class=0)
