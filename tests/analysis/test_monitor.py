"""Tests for the incident aggregator."""

import pytest

from repro.analysis.monitor import IncidentAggregator
from repro.core.localization import CandidatePath, LocalizationResult
from repro.core.reports import TagReport
from repro.core.server import Incident, VeriDPServer
from repro.core.verifier import VerificationResult, Verdict
from repro.dataplane import DataPlaneNetwork, ModifyRuleOutput
from repro.netmodel.hops import Hop
from repro.netmodel.packet import Header
from repro.netmodel.topology import PortRef
from repro.topologies import build_linear


def fake_incident(blamed=("S2",), verdict=Verdict.FAIL_TAG_MISMATCH,
                  inport=("S1", 1), outport=("S3", 1)):
    report = TagReport(PortRef(*inport), PortRef(*outport), Header(), 0)
    verification = VerificationResult(verdict=verdict, report=report)
    localization = LocalizationResult(report=report)
    for switch in blamed:
        localization.candidates.append(
            CandidatePath((Hop(1, switch, 2),), switch)
        )
    return Incident(verification=verification, localization=localization)


class TestIngestion:
    def test_counts(self):
        agg = IncidentAggregator()
        agg.ingest(fake_incident(), now=1.0)
        agg.ingest(fake_incident(), now=2.0)
        assert agg.active_count == 2
        assert agg.total_ingested == 2

    def test_batch_ingest(self):
        agg = IncidentAggregator()
        agg.ingest_all([fake_incident(), fake_incident()], now=0.0)
        assert agg.active_count == 2

    def test_window_prunes(self):
        agg = IncidentAggregator(window_s=10.0)
        agg.ingest(fake_incident(), now=0.0)
        agg.ingest(fake_incident(), now=5.0)
        agg.ingest(fake_incident(), now=20.0)  # pushes horizon to 10
        assert agg.active_count == 1
        assert agg.total_ingested == 3

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            IncidentAggregator(window_s=0)


class TestRollups:
    def test_blame_tally(self):
        agg = IncidentAggregator()
        agg.ingest(fake_incident(blamed=("S2",)))
        agg.ingest(fake_incident(blamed=("S2", "S3")))
        assert agg.blame_tally() == {"S2": 2, "S3": 1}

    def test_verdict_counts(self):
        agg = IncidentAggregator()
        agg.ingest(fake_incident(verdict=Verdict.FAIL_TAG_MISMATCH))
        agg.ingest(fake_incident(verdict=Verdict.FAIL_NO_PATH))
        agg.ingest(fake_incident(verdict=Verdict.FAIL_NO_PATH))
        counts = agg.verdict_counts()
        assert counts[Verdict.FAIL_NO_PATH] == 2
        assert counts[Verdict.FAIL_TAG_MISMATCH] == 1

    def test_failures_by_pair(self):
        agg = IncidentAggregator()
        agg.ingest(fake_incident(inport=("S1", 1)))
        agg.ingest(fake_incident(inport=("S1", 1)))
        agg.ingest(fake_incident(inport=("S1", 2)))
        pairs = agg.failures_by_pair()
        assert pairs[(PortRef("S1", 1), PortRef("S3", 1))] == 2
        assert len(pairs) == 2

    def test_top_suspects_ranked(self):
        agg = IncidentAggregator()
        for _ in range(3):
            agg.ingest(fake_incident(blamed=("S2",)), now=1.0)
        agg.ingest(fake_incident(blamed=("S9",)), now=2.0)
        suspects = agg.top_suspects(limit=2)
        assert [s.switch_id for s in suspects] == ["S2", "S9"]
        assert suspects[0].incident_count == 3
        assert suspects[0].first_seen == suspects[0].last_seen == 1.0

    def test_unlocalized(self):
        agg = IncidentAggregator()
        agg.ingest(fake_incident(blamed=()))
        assert agg.unlocalized_count() == 1

    def test_summary_and_render(self):
        agg = IncidentAggregator()
        agg.ingest(fake_incident(blamed=("S2",)))
        summary = agg.summary()
        assert summary["active_incidents"] == 1
        assert summary["top_suspects"][0]["switch"] == "S2"
        text = agg.render()
        assert "S2" in text and "incidents: 1" in text


class TestEndToEnd:
    def test_aggregates_real_incidents(self):
        scenario = build_linear(3)
        server = VeriDPServer(scenario.topo, scenario.channel)
        net = DataPlaneNetwork(
            scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
        )
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        for _ in range(4):
            net.inject_from_host("H1", header)
        agg = IncidentAggregator()
        agg.ingest_all(server.drain_incidents(), now=1.0)
        assert agg.active_count == 4
        assert agg.top_suspects()[0].switch_id == "S2"
