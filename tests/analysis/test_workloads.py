"""Tests for the traffic workload generators."""

import random

import pytest

from repro.analysis.workloads import (
    FlowSpec,
    PacketEvent,
    cbr_arrivals,
    max_inter_arrival,
    merge_flows,
    onoff_arrivals,
    poisson_arrivals,
    scenario_workload,
)
from repro.core.sampling import sampling_interval_for
from repro.topologies import build_linear


class TestCbr:
    def test_periodic(self):
        times = cbr_arrivals(rate=10, duration=1.0)
        assert len(times) == 10
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.1) for g in gaps)

    def test_start_offset(self):
        times = cbr_arrivals(rate=4, duration=1.0, start=5.0)
        assert times[0] == pytest.approx(5.25)

    def test_max_gap_is_period(self):
        times = cbr_arrivals(rate=20, duration=2.0)
        assert max_inter_arrival(times) == pytest.approx(0.05)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            cbr_arrivals(0, 1.0)
        with pytest.raises(ValueError):
            cbr_arrivals(1.0, 0)


class TestPoisson:
    def test_mean_rate_approximate(self):
        rng = random.Random(1)
        times = poisson_arrivals(rate=100, duration=20.0, rng=rng)
        assert len(times) == pytest.approx(2000, rel=0.15)

    def test_within_duration(self):
        rng = random.Random(2)
        times = poisson_arrivals(rate=50, duration=3.0, rng=rng)
        assert all(0 < t <= 3.0 for t in times)

    def test_deterministic_per_seed(self):
        a = poisson_arrivals(10, 5.0, random.Random(3))
        b = poisson_arrivals(10, 5.0, random.Random(3))
        assert a == b


class TestOnOff:
    def test_bursts_and_silences(self):
        times = onoff_arrivals(rate=10, duration=4.0, on_s=1.0, off_s=1.0)
        # bursts in [0,1] and [2,3]; silence elsewhere
        assert all((t % 2.0) <= 1.0 + 1e-9 for t in times)

    def test_max_gap_spans_off_period(self):
        times = onoff_arrivals(rate=10, duration=4.0, on_s=1.0, off_s=1.0)
        assert max_inter_arrival(times) > 1.0  # the off gap dominates

    def test_zero_off_is_cbr_like(self):
        times = onoff_arrivals(rate=10, duration=2.0, on_s=1.0, off_s=0.0)
        assert max_inter_arrival(times) == pytest.approx(0.1)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            onoff_arrivals(10, 1.0, on_s=0, off_s=1.0)


class TestFlowSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlowSpec("a", "b", kind="warp")
        with pytest.raises(ValueError):
            FlowSpec("a", "b", rate=0)

    def test_defaults(self):
        spec = FlowSpec("H1", "H2")
        assert spec.kind == "cbr"
        assert spec.dst_port == 80


class TestMergeAndWorkload:
    def test_merge_sorted(self):
        from repro.netmodel.packet import Header

        specs = [FlowSpec("a", "b"), FlowSpec("c", "d")]
        headers = {("a", "b"): Header(dst_port=80), ("c", "d"): Header(dst_port=81)}
        events = merge_flows(
            [(specs[0], [0.3, 0.1]), (specs[1], [0.2])], headers
        )
        assert [e.time for e in events] == [0.1, 0.2, 0.3]

    def test_max_inter_arrival_trivial(self):
        assert max_inter_arrival([]) == 0.0
        assert max_inter_arrival([1.0]) == 0.0

    def test_scenario_workload_end_to_end(self):
        scenario = build_linear(3)
        specs = [
            FlowSpec("H1", "H3", kind="cbr", rate=20),
            FlowSpec("H3", "H1", kind="poisson", rate=20),
            FlowSpec("H2", "H3", kind="onoff", rate=20, on_s=0.5, off_s=0.5),
        ]
        events, gaps = scenario_workload(scenario, specs, duration=2.0, seed=1)
        assert events == sorted(events, key=lambda e: e.time)
        assert set(gaps) == {("H1", "H3"), ("H3", "H1"), ("H2", "H3")}
        # CBR's T_a is its period; on/off's spans the silence.
        assert gaps[("H1", "H3")] == pytest.approx(0.05)
        assert gaps[("H2", "H3")] > 0.5

    def test_workload_drives_sampling_rule(self):
        """The point of T_a: size the sampling interval per Section 4.5."""
        scenario = build_linear(3)
        specs = [FlowSpec("H1", "H3", kind="onoff", rate=10, on_s=0.5, off_s=0.4)]
        _, gaps = scenario_workload(scenario, specs, duration=3.0)
        tau = 2.0
        interval = sampling_interval_for(tau, gaps[("H1", "H3")])
        assert 0 < interval < tau

    def test_workload_replays_through_network(self):
        """Events inject cleanly and verify against VeriDP."""
        from repro.core import VeriDPServer
        from repro.dataplane import DataPlaneNetwork

        scenario = build_linear(3)
        server = VeriDPServer(scenario.topo, scenario.channel)
        net = DataPlaneNetwork(
            scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
        )
        events, _ = scenario_workload(
            scenario, [FlowSpec("H1", "H3", rate=20)], duration=1.0
        )
        for event in events:
            result = net.inject_from_host(event.src_host, event.header, now=event.time)
            assert result.status == "delivered"
        assert server.stats()["failed"] == 0
