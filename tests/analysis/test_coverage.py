"""Tests for the verification-coverage tracker."""

import pytest

from repro.analysis.coverage import CoverageTracker
from repro.baselines import AtpgProber
from repro.bdd.headerspace import HeaderSpace
from repro.core.pathtable import PathTableBuilder
from repro.core.server import VeriDPServer
from repro.core.verifier import Verifier
from repro.dataplane import DataPlaneNetwork
from repro.topologies import build_fattree, build_linear


@pytest.fixture
def rig():
    scenario = build_linear(3)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    tracker = CoverageTracker(server.table)
    return scenario, server, net, tracker


def run_flow(scenario, server, net, tracker, src, dst):
    delivery = net.inject_from_host(src, scenario.header_between(src, dst))
    for report in delivery.reports:
        tracker.observe(server.verifier.verify(report))


class TestTracking:
    def test_empty_tracker_zero_coverage(self, rig):
        _, _, _, tracker = rig
        report = tracker.report()
        assert report.path_coverage == 0.0
        assert report.hop_coverage == 0.0
        assert report.verified_paths == 0
        assert len(report.dark_paths) == report.total_paths

    def test_one_flow_partial_coverage(self, rig):
        scenario, server, net, tracker = rig
        run_flow(scenario, server, net, tracker, "H1", "H3")
        report = tracker.report()
        assert report.verified_paths == 1
        assert 0 < report.path_coverage < 1
        assert report.verified_hops == 3  # S1 -> S2 -> S3

    def test_all_pairs_covers_delivery_paths(self, rig):
        scenario, server, net, tracker = rig
        for src, dst in scenario.host_pairs():
            run_flow(scenario, server, net, tracker, src, dst)
        report = tracker.report()
        # Inter-host delivery paths covered; drop paths (unroutable space)
        # and hairpin self-pairs (host to its own subnet) stay dark.
        from repro.netmodel.rules import DROP_PORT

        host_ports = set(scenario.topo.host_edge_ports())
        dark_delivery = [
            (i, o)
            for i, o, _ in report.dark_paths
            if o.port != DROP_PORT and i != o
            and i in host_ports and o in host_ports
        ]
        assert dark_delivery == []
        assert report.path_coverage < 1.0  # drop/hairpin/unwired entries

    def test_failed_verifications_do_not_count(self, rig):
        scenario, server, net, tracker = rig
        from repro.dataplane import ModifyRuleOutput

        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        run_flow(scenario, server, net, tracker, "H1", "H3")
        assert tracker.report().verified_paths == 0
        assert tracker.observations >= 1

    def test_switch_coverage_fractions(self, rig):
        scenario, server, net, tracker = rig
        run_flow(scenario, server, net, tracker, "H1", "H2")  # S1 -> S2 only
        report = tracker.report()
        assert 0 < report.switch_coverage["S1"] <= 1
        assert report.switch_coverage["S3"] == 0.0
        assert "S3" in tracker.dark_switches(threshold=0.5)

    def test_reset(self, rig):
        scenario, server, net, tracker = rig
        run_flow(scenario, server, net, tracker, "H1", "H3")
        tracker.reset()
        assert tracker.report().verified_paths == 0

    def test_str(self, rig):
        _, _, _, tracker = rig
        assert "coverage:" in str(tracker.report())


class TestAtpgFillsTheGap:
    def test_probing_closes_dark_hops(self):
        """The composition the module docstring promises — with ATPG's real
        guarantee: its hop-covering probe set verifies every deliverable
        *hop*, while some *paths* stay dark (greedy cover prunes probes
        whose hop sets add nothing — exactly the path-blindness the paper
        criticises ATPG for)."""
        scenario = build_fattree(4)
        server = VeriDPServer(scenario.topo, scenario.channel)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        tracker = CoverageTracker(server.table)

        # Sparse passive traffic: a handful of flows.
        hosts = scenario.topo.hosts()
        for src, dst in zip(hosts[:4], hosts[4:8]):
            delivery = net.inject_from_host(src, scenario.header_between(src, dst))
            for report in delivery.reports:
                tracker.observe(server.verifier.verify(report))
        sparse = tracker.report()
        assert sparse.path_coverage < 0.5

        # Active fill: run every ATPG probe through the network.  The
        # prober must share the server's HeaderSpace — table entry BDD ids
        # belong to that manager.
        prober = AtpgProber(server.builder, server.table)
        for probe in prober.probes:
            delivery = net.inject(probe.entry, probe.header)
            for report in delivery.reports:
                tracker.observe(server.verifier.verify(report))
        filled = tracker.report()
        from repro.netmodel.rules import DROP_PORT

        assert filled.path_coverage > sparse.path_coverage
        assert filled.hop_coverage > sparse.hop_coverage
        # ATPG's guarantee: every hop its probe set covers is now verified,
        # so any hop still dark lies only on drop paths.
        dark_hops = {
            hop
            for i, o, entry in filled.dark_paths
            if o.port != DROP_PORT
            for hop in entry.hops
        }
        assert dark_hops <= tracker._verified_hops
        # ...yet dark *paths* remain: the path-blindness of reception probing.
        dark_deliverable = [
            (i, o) for i, o, _ in filled.dark_paths if o.port != DROP_PORT
        ]
        assert dark_deliverable  # ATPG cannot certify these
