"""Tests for the detection-latency measurement harness."""

import pytest

from repro.analysis.sampling_experiments import (
    LatencyTrialResult,
    measure_detection_latency,
    sweep_sampling_intervals,
)
from repro.topologies import build_fattree, build_linear


class TestResultMath:
    def test_mean_and_max(self):
        result = LatencyTrialResult(1.0, 0.1, latencies=[0.2, 0.4, 0.6])
        assert result.mean_latency == pytest.approx(0.4)
        assert result.max_latency == pytest.approx(0.6)

    def test_empty_latencies_infinite(self):
        result = LatencyTrialResult(1.0, 0.1)
        assert result.mean_latency == float("inf")
        assert result.max_latency == float("inf")

    def test_bound_is_ts_plus_ta(self):
        result = LatencyTrialResult(1.5, 0.25)
        assert result.theoretical_bound == pytest.approx(1.75)

    def test_str(self):
        text = str(LatencyTrialResult(1.0, 0.1, latencies=[0.5]))
        assert "T_s=1.00s" in text


class TestMeasurement:
    def test_all_faults_detected_within_bound(self):
        result = measure_detection_latency(
            build_fattree(4), sampling_interval=0.5, trials=4, seed=7
        )
        assert result.undetected == 0
        assert len(result.latencies) == 4
        assert result.max_latency <= result.theoretical_bound + 1e-9

    def test_sampling_rate_tracks_interval(self):
        fast = measure_detection_latency(
            build_linear(3), sampling_interval=0.2, trials=2, seed=1
        )
        slow = measure_detection_latency(
            build_linear(3), sampling_interval=2.0, trials=2, seed=1
        )
        assert fast.sampling_rate > slow.sampling_rate

    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            measure_detection_latency(build_linear(3), 1.0, trials=0)

    def test_sweep_returns_one_result_per_interval(self):
        results = sweep_sampling_intervals(
            lambda: build_linear(3), [0.5, 1.0], trials=2, seed=2
        )
        assert [r.sampling_interval for r in results] == [0.5, 1.0]
