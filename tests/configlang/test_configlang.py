"""Tests for the mini configuration language (parser, writer, loader)."""

import pytest

from repro.bdd.headerspace import HeaderSpace, parse_prefix
from repro.configlang import (
    ConfigError,
    UnrepresentableError,
    export_network,
    load_network,
    parse_config,
    write_config,
)
from repro.core.pathtable import PathTableBuilder
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.netmodel.packet import Header, PROTO_TCP
from repro.netmodel.rules import Acl, AclEntry, Drop, Forward, Match
from repro.netmodel.topology import Topology
from repro.topologies import build_internet2, build_linear

SAMPLE = """
hostname boza
!
ip route 171.64.0.0/16 port1
ip route 172.20.10.32/27 port3
ip route 10.9.0.0/16 drop
!
access-list 101 deny ip any 10.0.0.0/8
access-list 101 permit tcp 171.64.0.0/16 any eq 22
access-list 101 permit ip any any
!
interface port1
  ip access-group 101 in
interface port3
  ip access-group 101 out
"""


class TestParser:
    def test_hostname(self):
        assert parse_config(SAMPLE).hostname == "boza"

    def test_routes(self):
        config = parse_config(SAMPLE)
        assert len(config.routes) == 3
        assert config.routes[0].prefix == parse_prefix("171.64.0.0/16")
        assert config.routes[0].out_port == 1
        assert config.routes[2].out_port is None  # drop route
        assert config.routes[1].priority == 27  # LPM priority

    def test_acl_entries(self):
        config = parse_config(SAMPLE)
        entries = config.acls[101]
        assert len(entries) == 3
        assert entries[0].permit is False
        assert entries[0].match.dst_prefix == parse_prefix("10.0.0.0/8")
        assert entries[1].match.proto == PROTO_TCP
        assert entries[1].match.dst_port_range == (22, 22)
        assert entries[2].match.src_prefix is None  # any

    def test_bindings(self):
        config = parse_config(SAMPLE)
        assert (1, "in", 101) in config.bindings
        assert (3, "out", 101) in config.bindings

    def test_comments_and_blanks_ignored(self):
        config = parse_config("! just a comment\n\nhostname x\n")
        assert config.hostname == "x"

    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate port1",
            "ip route any port1",
            "ip route 10.0.0.0/8",
            "ip route 10.0.0.0/8 eth0",
            "interface port0",
            "access-list abc permit ip any any",
            "access-list 1 maybe ip any any",
            "access-list 1 permit gre any any",
            "access-list 1 permit ip any any eq nonsense",
            "access-list 1 permit ip any any eq 70000",
            "access-list 1 permit ip any any extra tokens",
            "ip access-group 1 in",  # outside interface block
            "hostname a b",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(ConfigError):
            parse_config(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(ConfigError) as excinfo:
            parse_config("hostname x\nbogus line\n")
        assert excinfo.value.line_no == 2


class TestApplyTo:
    def test_routes_become_lpm_rules(self):
        from repro.netmodel.topology import SwitchInfo

        config = parse_config(SAMPLE)
        info = SwitchInfo("boza")
        info.ports.update({1, 2, 3})
        config.apply_to(info)
        header = Header.from_strings("1.2.3.4", "172.20.10.33")
        rule = info.flow_table.lookup(header)
        assert rule.output_port() == 3  # /27 beats /16... no /16 overlap here

    def test_acl_implicit_deny(self):
        from repro.netmodel.topology import SwitchInfo

        config = parse_config(
            "access-list 5 permit ip any 171.64.0.0/16\n"
            "interface port1\n"
            "  ip access-group 5 in\n"
        )
        info = SwitchInfo("r")
        config.apply_to(info)
        acl = info.in_acl[1]
        # Unmatched traffic hits Cisco's implicit deny.
        assert not acl.permits(Header.from_strings("9.9.9.9", "171.63.0.1"))
        # Explicit permits pass.
        assert acl.permits(Header.from_strings("9.9.9.9", "171.64.5.1"))

    def test_sample_acl_trailing_permit_any(self):
        from repro.netmodel.topology import SwitchInfo

        config = parse_config(SAMPLE)
        info = SwitchInfo("boza")
        config.apply_to(info)
        acl = info.in_acl[1]
        assert acl.permits(Header.from_strings("9.9.9.9", "171.63.0.1"))
        assert not acl.permits(Header.from_strings("9.9.9.9", "10.1.2.3"))

    def test_undefined_acl_binding_raises(self):
        from repro.netmodel.topology import SwitchInfo

        config = parse_config("interface port1\n  ip access-group 9 in\n")
        with pytest.raises(ConfigError):
            config.apply_to(SwitchInfo("x"))


class TestWriter:
    def test_round_trip_semantics(self):
        """parse(write(config)) produces the same forwarding behaviour."""
        from repro.netmodel.topology import SwitchInfo

        original = parse_config(SAMPLE)
        info = SwitchInfo("boza")
        info.ports.update({1, 2, 3})
        original.apply_to(info)
        text = write_config(info)
        reparsed = parse_config(text)
        info2 = SwitchInfo("boza")
        info2.ports.update({1, 2, 3})
        reparsed.apply_to(info2)

        hs = HeaderSpace()
        from repro.netmodel.predicates import SwitchPredicates

        map1 = SwitchPredicates(info, hs).transfer_map(1)
        map2 = SwitchPredicates(info2, hs).transfer_map(1)
        assert map1 == map2

    def test_rejects_non_route_rules(self):
        from repro.netmodel.rules import FlowRule
        from repro.netmodel.topology import SwitchInfo

        info = SwitchInfo("r")
        info.flow_table.add(FlowRule(10, Match.build(dst_port=22), Forward(1)))
        with pytest.raises(UnrepresentableError):
            write_config(info)

    def test_rejects_anti_lpm_priorities(self):
        from repro.netmodel.rules import FlowRule
        from repro.netmodel.topology import SwitchInfo

        info = SwitchInfo("r")
        # The /8 outranks the /24 it contains: contradicts LPM.
        info.flow_table.add(FlowRule(99, Match.build(dst="10.0.0.0/8"), Forward(1)))
        info.flow_table.add(FlowRule(1, Match.build(dst="10.0.1.0/24"), Forward(2)))
        with pytest.raises(UnrepresentableError):
            write_config(info)

    def test_rejects_default_permit_acl(self):
        from repro.netmodel.topology import SwitchInfo

        info = SwitchInfo("r")
        info.in_acl[1] = Acl([AclEntry(Match.build(dst_port=22), False)],
                             default_permit=True)
        with pytest.raises(UnrepresentableError):
            write_config(info)


class TestLoaderRoundTrip:
    def test_export_and_load_internet2(self, tmp_path):
        """Full circle: scenario -> config dir -> scenario, same path table."""
        original = build_internet2(prefixes_per_pop=1)
        directory = str(tmp_path / "i2")
        written = export_network(original, directory)
        assert len(written) == 1 + 9  # topology.json + 9 PoPs

        loaded = load_network(directory)
        hs1, hs2 = HeaderSpace(), HeaderSpace()
        table1 = PathTableBuilder(original.topo, hs1).build()
        table2 = PathTableBuilder(loaded.topo, hs2).build()
        sig1 = {(i, o, e.hops) for i, o, e in table1.all_entries()}
        sig2 = {(i, o, e.hops) for i, o, e in table2.all_entries()}
        assert sig1 == sig2

    def test_loaded_network_runs_veridp(self, tmp_path):
        original = build_linear(3)
        directory = str(tmp_path / "lin")
        export_network(original, directory)
        loaded = load_network(directory)
        server = VeriDPServer(loaded.topo, loaded.channel)
        net = DataPlaneNetwork(
            loaded.topo, loaded.channel, report_sink=server.receive_report_bytes
        )
        for src, dst in loaded.host_pairs():
            result = net.inject_from_host(src, loaded.header_between(src, dst))
            assert result.status == "delivered"
        assert server.stats()["failed"] == 0

    def test_missing_config_rejected(self, tmp_path):
        original = build_linear(3)
        directory = str(tmp_path / "broken")
        written = export_network(original, directory)
        import os

        os.unlink(written[1])  # drop one switch config
        with pytest.raises(FileNotFoundError):
            load_network(directory)

    def test_missing_topology_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_network(str(tmp_path))

    def test_stray_config_rejected(self, tmp_path):
        original = build_linear(3)
        directory = str(tmp_path / "stray")
        export_network(original, directory)
        (tmp_path / "stray" / "ghost.cfg").write_text("hostname ghost\n")
        with pytest.raises(ValueError):
            load_network(directory)

    def test_hostname_mismatch_rejected(self, tmp_path):
        original = build_linear(3)
        directory = str(tmp_path / "mismatch")
        export_network(original, directory)
        cfg = tmp_path / "mismatch" / "S1.cfg"
        cfg.write_text(cfg.read_text().replace("hostname S1", "hostname S9"))
        with pytest.raises(ConfigError):
            load_network(directory)
