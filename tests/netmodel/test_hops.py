"""Unit tests for hop and path helpers."""

from repro.netmodel.hops import Hop, format_path, path_switches
from repro.netmodel.rules import DROP_PORT


class TestHop:
    def test_ordering_and_hashing(self):
        a, b = Hop(1, "S1", 2), Hop(1, "S2", 2)
        assert a < b
        assert len({a, b, Hop(1, "S1", 2)}) == 2

    def test_is_drop(self):
        assert Hop(1, "S", DROP_PORT).is_drop()
        assert not Hop(1, "S", 2).is_drop()

    def test_str_renders_drop_symbol(self):
        assert str(Hop(3, "S9", DROP_PORT)) == "<3|S9|⊥>"

    def test_key_bytes_deterministic(self):
        assert Hop(1, "S", 2).key_bytes() == Hop(1, "S", 2).key_bytes()

    def test_key_bytes_distinguishes_ports(self):
        assert Hop(1, "S", 2).key_bytes() != Hop(2, "S", 1).key_bytes()

    def test_key_bytes_handles_drop_port(self):
        assert Hop(1, "S", DROP_PORT).key_bytes() != Hop(1, "S", 63).key_bytes()


class TestPathHelpers:
    def test_format_path(self):
        hops = [Hop(1, "A", 2), Hop(3, "B", DROP_PORT)]
        assert format_path(hops) == "<1|A|2> -> <3|B|⊥>"

    def test_format_empty_path(self):
        assert format_path([]) == "(empty)"

    def test_path_switches(self):
        hops = [Hop(1, "A", 2), Hop(3, "B", 1), Hop(1, "A", 4)]
        assert path_switches(hops) == ["A", "B", "A"]
