"""Tests for multi-table pipelines (the §3.3 'cascade of flow tables')."""

import pytest

from repro.bdd.headerspace import HeaderSpace, parse_ipv4
from repro.core.pathtable import PathTableBuilder
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork, DeleteRule
from repro.dataplane.switch import DataPlaneSwitch
from repro.netmodel.packet import Header
from repro.netmodel.predicates import SwitchPredicates
from repro.netmodel.rules import (
    DROP_PORT,
    Drop,
    FlowRule,
    Forward,
    GotoTable,
    Match,
    Rewrite,
)
from repro.netmodel.topology import Topology
from repro.topologies import build_linear


def header(dst="10.0.2.1", dst_port=80):
    return Header.from_strings("10.0.1.1", dst, 6, 1000, dst_port)


class TestGotoTableAction:
    def test_validation(self):
        with pytest.raises(ValueError):
            GotoTable(0)
        with pytest.raises(ValueError):
            GotoTable(-1)
        with pytest.raises(ValueError):
            GotoTable(1, (("dst_ip", -1),))

    def test_rule_forbids_backward_jump(self):
        with pytest.raises(ValueError):
            FlowRule(10, Match(), GotoTable(1), table_id=1)
        with pytest.raises(ValueError):
            FlowRule(10, Match(), GotoTable(1), table_id=2)

    def test_rule_table_id_validation(self):
        with pytest.raises(ValueError):
            FlowRule(10, Match(), Forward(1), table_id=-1)

    def test_effective_sets(self):
        goto = GotoTable(2, (("proto", 6), ("proto", 17)))
        assert goto.effective_sets() == (("proto", 17),)

    def test_describe(self):
        rule = FlowRule(10, Match(), GotoTable(1), table_id=0)
        assert "goto(1)" in rule.describe()


class TestFlowTableMultiTable:
    def test_sorted_rules_filter(self):
        t0 = FlowRule(10, Match(), GotoTable(1), table_id=0)
        t1 = FlowRule(10, Match(), Forward(1), table_id=1)
        from repro.netmodel.rules import FlowTable

        table = FlowTable([t0, t1])
        assert table.sorted_rules(0) == [t0]
        assert table.sorted_rules(1) == [t1]
        assert len(table.sorted_rules()) == 2
        assert table.table_ids() == [0, 1]

    def test_lookup_is_per_table(self):
        from repro.netmodel.rules import FlowTable

        t1 = FlowRule(10, Match(), Forward(1), table_id=1)
        table = FlowTable([t1])
        assert table.lookup(header()) is None  # table 0 misses
        assert table.lookup(header(), table_id=1) is t1


class TestSwitchChainResolution:
    def make_switch(self):
        """Classic two-stage pipeline: table 0 classifies, table 1 forwards."""
        switch = DataPlaneSwitch("S", ports={1, 2, 3})
        # Table 0: drop telnet, everything else continues to table 1.
        switch.install(FlowRule(20, Match.build(dst_port=23), Drop(), table_id=0))
        switch.install(FlowRule(10, Match(), GotoTable(1), table_id=0))
        # Table 1: destination routing.
        switch.install(
            FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(2), table_id=1)
        )
        switch.install(
            FlowRule(10, Match.build(dst="10.0.3.0/24"), Forward(3), table_id=1)
        )
        return switch

    def test_chain_resolves(self):
        switch = self.make_switch()
        assert switch.forward(header(dst="10.0.2.9"), 1) == 2
        assert switch.forward(header(dst="10.0.3.9"), 1) == 3

    def test_first_table_drop_short_circuits(self):
        switch = self.make_switch()
        assert switch.forward(header(dst="10.0.2.9", dst_port=23), 1) == DROP_PORT

    def test_miss_in_second_table_drops(self):
        switch = self.make_switch()
        assert switch.forward(header(dst="10.9.9.9"), 1) == DROP_PORT

    def test_goto_set_fields_apply(self):
        switch = DataPlaneSwitch("S", ports={1, 2})
        switch.install(
            FlowRule(10, Match(), GotoTable(1, (("dst_port", 8080),)), table_id=0)
        )
        switch.install(
            FlowRule(10, Match.build(dst_port=8080), Forward(2), table_id=1)
        )
        out, new_header = switch.process(header(dst_port=80), 1)
        assert out == 2
        assert new_header.dst_port == 8080

    def test_ignore_priority_applies_per_table(self):
        switch = self.make_switch()
        # Add a low-priority table-0 rule that would hijack when priorities
        # are ignored (lowest match wins).
        switch.install(FlowRule(1, Match(), Forward(1), table_id=0))
        assert switch.forward(header(dst="10.0.2.9"), 1) == 2
        switch.ignore_priority = True
        assert switch.forward(header(dst="10.0.2.9"), 1) == 1


class TestPredicatesMultiTable:
    def make_info(self):
        topo = Topology()
        info = topo.add_switch("S", num_ports=3)
        info.flow_table.add(
            FlowRule(20, Match.build(dst_port=23), Drop(), table_id=0)
        )
        info.flow_table.add(FlowRule(10, Match(), GotoTable(1), table_id=0))
        info.flow_table.add(
            FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(2), table_id=1)
        )
        info.flow_table.add(
            FlowRule(10, Match.build(dst="10.0.3.0/24"), Forward(3), table_id=1)
        )
        return info

    def test_forwarding_predicates_resolve_chain(self):
        hs = HeaderSpace()
        preds = SwitchPredicates(self.make_info(), hs).forwarding_predicates(1)
        assert hs.contains(preds[2], header(dst="10.0.2.9").as_dict())
        assert hs.contains(preds[3], header(dst="10.0.3.9").as_dict())
        assert hs.contains(preds[DROP_PORT], header(dst_port=23).as_dict())
        assert hs.contains(preds[DROP_PORT], header(dst="10.9.0.1").as_dict())

    def test_partition_property_holds(self):
        hs = HeaderSpace()
        tmap = SwitchPredicates(self.make_info(), hs).transfer_map(1)
        union = hs.bdd.or_many(tmap.values())
        assert union == hs.all_match
        values = list(tmap.values())
        for i, a in enumerate(values):
            for b in values[i + 1 :]:
                assert hs.bdd.and_(a, b) == hs.empty

    def test_predicates_match_concrete_switch(self):
        """Symbolic chain expansion agrees with the packet-level walker."""
        hs = HeaderSpace()
        info = self.make_info()
        sp = SwitchPredicates(info, hs)
        switch = DataPlaneSwitch("S", ports={1, 2, 3})
        for rule in info.flow_table:
            switch.install(rule)
        for h in [
            header(dst="10.0.2.9"),
            header(dst="10.0.3.9"),
            header(dst="10.0.2.9", dst_port=23),
            header(dst="99.0.0.1"),
        ]:
            concrete = switch.forward(h, 1)
            tmap = sp.transfer_map(1)
            symbolic = next(
                port for port, pred in tmap.items()
                if hs.contains(pred, h.as_dict())
            )
            assert concrete == symbolic, str(h)

    def test_goto_with_set_field_pulled_back(self):
        """Later-table matches apply to the rewritten header: verified by
        pulling the match back through the set-field chain."""
        hs = HeaderSpace()
        topo = Topology()
        info = topo.add_switch("S", num_ports=2)
        info.flow_table.add(
            FlowRule(10, Match.build(dst="10.0.0.0/8"),
                     GotoTable(1, (("dst_port", 8080),)), table_id=0)
        )
        info.flow_table.add(
            FlowRule(10, Match.build(dst_port=8080), Forward(2), table_id=1)
        )
        preds = SwitchPredicates(info, hs).forwarding_predicates(1)
        # Any original dst_port inside 10/8 reaches port 2 (it becomes 8080).
        assert hs.contains(preds[2], header(dst="10.1.1.1", dst_port=5).as_dict())
        assert hs.contains(preds[DROP_PORT], header(dst="11.1.1.1").as_dict())


class TestMultiTableEndToEnd:
    def test_veridp_on_multitable_network(self):
        """A linear network whose middle switch uses a two-table pipeline:
        the path table, data plane and verification all agree."""
        scenario = build_linear(3, install_routes=False)
        ctrl = scenario.controller
        # S1/S3: plain single-table routes.
        ctrl.install_destination_routes(scenario.subnets)
        # S2: replace its routes with a classify-then-forward pipeline.
        for rule in list(scenario.topo.switch("S2").flow_table.sorted_rules()):
            ctrl.remove("S2", rule.rule_id)
        ctrl.install("S2", FlowRule(20, Match.build(dst_port=23), Drop(), table_id=0))
        ctrl.install("S2", FlowRule(10, Match(), GotoTable(1), table_id=0))
        ctrl.install("S2", FlowRule(10, Match.build(dst="10.0.0.0/24"), Forward(3), table_id=1))
        ctrl.install("S2", FlowRule(10, Match.build(dst="10.0.1.0/24"), Forward(1), table_id=1))
        ctrl.install("S2", FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(2), table_id=1))

        server = VeriDPServer(scenario.topo, scenario.channel)
        net = DataPlaneNetwork(
            scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
        )
        # Healthy traffic verifies; telnet is dropped *and verifies* (the
        # drop is configured).
        ok = net.inject_from_host("H1", scenario.header_between("H1", "H3"))
        assert ok.status == "delivered"
        blocked = net.inject_from_host(
            "H1", scenario.header_between("H1", "H3", dst_port=23)
        )
        assert blocked.status == "dropped"
        assert server.incidents == []

        # Fault inside table 1: the H3 route vanishes from the data plane.
        t1_rule = next(
            r for r in net.switch("S2").table.sorted_rules(1)
            if r.match.dst_prefix == (parse_ipv4("10.0.2.0"), 24)
        )
        DeleteRule("S2", t1_rule.rule_id).apply(net)
        result = net.inject_from_host("H1", scenario.header_between("H1", "H3"))
        assert result.status == "dropped"
        assert len(server.incidents) == 1
        assert "S2" in server.incidents[0].blamed_switches
