"""Unit tests for transfer predicates (Section 4.1 formulas)."""

import pytest

from repro.bdd.headerspace import HeaderSpace
from repro.netmodel.packet import Header
from repro.netmodel.predicates import SwitchPredicates, build_all_predicates
from repro.netmodel.rules import (
    Acl,
    AclEntry,
    DROP_PORT,
    Drop,
    FlowRule,
    Forward,
    Match,
)
from repro.netmodel.topology import Topology


@pytest.fixture(scope="module")
def hs():
    return HeaderSpace()


def make_switch(rules, in_acl=None, out_acl=None, ports=4):
    topo = Topology()
    info = topo.add_switch("S", num_ports=ports)
    for rule in rules:
        info.flow_table.add(rule)
    if in_acl:
        info.in_acl.update(in_acl)
    if out_acl:
        info.out_acl.update(out_acl)
    return info


def h(dst="10.0.2.1", dst_port=80):
    return Header.from_strings("10.0.1.1", dst, 6, 1000, dst_port)


class TestForwardingPredicates:
    def test_partition_covers_universe(self, hs):
        info = make_switch(
            [
                FlowRule(20, Match.build(dst="10.0.2.0/24", dst_port=22), Forward(2)),
                FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(3)),
            ]
        )
        preds = SwitchPredicates(info, hs).forwarding_predicates(1)
        union = hs.bdd.or_many(preds.values())
        assert union == hs.all_match
        # pairwise disjoint
        items = list(preds.items())
        for i, (_, a) in enumerate(items):
            for _, b in items[i + 1 :]:
                assert hs.bdd.and_(a, b) == hs.empty

    def test_priority_resolution(self, hs):
        info = make_switch(
            [
                FlowRule(20, Match.build(dst="10.0.2.0/24", dst_port=22), Forward(2)),
                FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(3)),
            ]
        )
        preds = SwitchPredicates(info, hs).forwarding_predicates(1)
        assert hs.contains(preds[2], h(dst_port=22).as_dict())
        assert not hs.contains(preds[3], h(dst_port=22).as_dict())
        assert hs.contains(preds[3], h(dst_port=80).as_dict())

    def test_table_miss_goes_to_drop(self, hs):
        info = make_switch([FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(2))])
        preds = SwitchPredicates(info, hs).forwarding_predicates(1)
        assert hs.contains(preds[DROP_PORT], h(dst="11.0.0.1").as_dict())

    def test_explicit_drop_rule(self, hs):
        info = make_switch(
            [
                FlowRule(20, Match.build(dst="10.0.9.0/24"), Drop()),
                FlowRule(10, Match.build(dst="10.0.0.0/8"), Forward(1)),
            ]
        )
        preds = SwitchPredicates(info, hs).forwarding_predicates(1)
        assert hs.contains(preds[DROP_PORT], h(dst="10.0.9.1").as_dict())
        assert hs.contains(preds[1], h(dst="10.0.8.1").as_dict())

    def test_forward_to_undeclared_port_drops(self, hs):
        info = make_switch([FlowRule(10, Match(), Forward(99))], ports=2)
        preds = SwitchPredicates(info, hs).forwarding_predicates(1)
        assert preds[DROP_PORT] == hs.all_match

    def test_in_port_rule_only_applies_to_that_ingress(self, hs):
        info = make_switch(
            [
                FlowRule(20, Match.build(dst="10.0.2.0/24", in_port=1), Forward(2)),
                FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(3)),
            ]
        )
        preds = SwitchPredicates(info, hs)
        assert hs.contains(preds.forwarding_predicates(1)[2], h().as_dict())
        assert hs.contains(preds.forwarding_predicates(4)[3], h().as_dict())


class TestTransferPredicates:
    def test_plain_transfer(self, hs):
        info = make_switch([FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(2))])
        sp = SwitchPredicates(info, hs)
        assert hs.contains(sp.transfer(1, 2), h().as_dict())
        assert not hs.contains(sp.transfer(1, 3), h().as_dict())

    def test_inbound_acl_blocks(self, hs):
        acl = Acl([AclEntry(Match.build(src="10.0.1.0/24"), permit=False)])
        info = make_switch(
            [FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(2))],
            in_acl={1: acl},
        )
        sp = SwitchPredicates(info, hs)
        assert not hs.contains(sp.transfer(1, 2), h().as_dict())
        assert hs.contains(sp.transfer(1, DROP_PORT), h().as_dict())
        # A different ingress without the ACL forwards fine.
        assert hs.contains(sp.transfer(3, 2), h().as_dict())

    def test_outbound_acl_blocks(self, hs):
        acl = Acl([AclEntry(Match.build(dst_port=22), permit=False)])
        info = make_switch(
            [FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(2))],
            out_acl={2: acl},
        )
        sp = SwitchPredicates(info, hs)
        assert not hs.contains(sp.transfer(1, 2), h(dst_port=22).as_dict())
        assert hs.contains(sp.transfer(1, DROP_PORT), h(dst_port=22).as_dict())
        assert hs.contains(sp.transfer(1, 2), h(dst_port=80).as_dict())

    def test_transfer_map_partitions_universe(self, hs):
        acl_in = Acl([AclEntry(Match.build(src="9.0.0.0/8"), permit=False)])
        acl_out = Acl([AclEntry(Match.build(dst_port=23), permit=False)])
        info = make_switch(
            [
                FlowRule(30, Match.build(dst="10.0.2.0/24", dst_port=22), Forward(2)),
                FlowRule(20, Match.build(dst="10.0.0.0/8"), Forward(3)),
                FlowRule(10, Match.build(dst="11.0.0.0/8"), Drop()),
            ],
            in_acl={1: acl_in},
            out_acl={3: acl_out},
        )
        sp = SwitchPredicates(info, hs)
        tmap = sp.transfer_map(1)
        union = hs.bdd.or_many(tmap.values())
        assert union == hs.all_match
        values = list(tmap.values())
        for i, a in enumerate(values):
            for b in values[i + 1 :]:
                assert hs.bdd.and_(a, b) == hs.empty

    def test_drop_reasons_disjoint_union(self, hs):
        """The three P_{x,⊥} disjuncts match the paper's formula exactly."""
        acl_in = Acl([AclEntry(Match.build(src="9.0.0.0/8"), permit=False)])
        acl_out = Acl([AclEntry(Match.build(dst_port=23), permit=False)])
        info = make_switch(
            [FlowRule(20, Match.build(dst="10.0.0.0/8"), Forward(3))],
            in_acl={1: acl_in},
            out_acl={3: acl_out},
        )
        sp = SwitchPredicates(info, hs)
        drop = sp.transfer(1, DROP_PORT)
        # blocked by inbound ACL
        assert hs.contains(drop, h().with_(src_ip=0x09000001).as_dict())
        # no forwarding match
        assert hs.contains(drop, h(dst="12.0.0.1").as_dict())
        # blocked by outbound ACL
        assert hs.contains(drop, h(dst_port=23).as_dict())
        # forwarded traffic is not in the drop predicate
        assert not hs.contains(drop, h(dst_port=80).as_dict())


class TestBuildAll:
    def test_build_all_predicates(self, hs):
        topo = Topology()
        for sid in ("A", "B"):
            info = topo.add_switch(sid, num_ports=2)
            info.flow_table.add(FlowRule(1, Match(), Forward(1)))
        preds = build_all_predicates(topo, hs)
        assert set(preds) == {"A", "B"}
        assert all(isinstance(p, SwitchPredicates) for p in preds.values())
