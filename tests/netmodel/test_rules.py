"""Unit tests for matches, rules, flow tables and ACLs."""

import pytest

from repro.bdd.headerspace import HeaderSpace, parse_ipv4
from repro.netmodel.packet import Header, PROTO_TCP, PROTO_UDP
from repro.netmodel.rules import (
    Acl,
    AclEntry,
    DROP_PORT,
    Drop,
    FlowRule,
    FlowTable,
    Forward,
    Match,
)


@pytest.fixture(scope="module")
def hs():
    return HeaderSpace()


def header(dst="10.0.2.1", dst_port=80, src="10.0.1.1", proto=PROTO_TCP, src_port=1000):
    return Header.from_strings(src, dst, proto, src_port, dst_port)


class TestMatch:
    def test_wildcard_matches_everything(self):
        assert Match().matches(header())

    def test_dst_prefix(self):
        m = Match.build(dst="10.0.2.0/24")
        assert m.matches(header(dst="10.0.2.200"))
        assert not m.matches(header(dst="10.0.3.1"))

    def test_src_prefix(self):
        m = Match.build(src="10.0.0.0/8")
        assert m.matches(header(src="10.200.0.1"))
        assert not m.matches(header(src="11.0.0.1"))

    def test_zero_length_prefix_matches_all(self):
        m = Match.build(dst="0.0.0.0/0")
        assert m.matches(header(dst="255.255.255.255"))

    def test_exact_port(self):
        m = Match.build(dst_port=22)
        assert m.matches(header(dst_port=22))
        assert not m.matches(header(dst_port=23))

    def test_port_range(self):
        m = Match.build(dst_port=(1000, 2000))
        assert m.matches(header(dst_port=1500))
        assert not m.matches(header(dst_port=2500))

    def test_empty_port_range_rejected(self):
        with pytest.raises(ValueError):
            Match.build(dst_port=(5, 4))

    def test_proto(self):
        m = Match.build(proto=PROTO_UDP)
        assert m.matches(header(proto=PROTO_UDP))
        assert not m.matches(header(proto=PROTO_TCP))

    def test_in_port(self):
        m = Match.build(dst="10.0.0.0/8", in_port=3)
        assert m.matches(header(), in_port=3)
        assert not m.matches(header(), in_port=1)
        assert not m.matches(header(), in_port=None)

    def test_to_bdd_agrees_with_matches(self, hs):
        m = Match.build(dst="10.0.2.0/24", dst_port=(20, 25), proto=PROTO_TCP)
        pred = m.to_bdd(hs)
        for h in [
            header(dst="10.0.2.7", dst_port=22),
            header(dst="10.0.2.7", dst_port=80),
            header(dst="10.9.2.7", dst_port=22),
            header(proto=PROTO_UDP, dst="10.0.2.7", dst_port=22),
        ]:
            assert hs.contains(pred, h.as_dict()) == m.matches(h)

    def test_describe_wildcard(self):
        assert Match().describe() == "*"


class TestFlowTable:
    def test_lookup_priority_order(self):
        specific = FlowRule(200, Match.build(dst="10.0.2.0/24", dst_port=22), Forward(2))
        general = FlowRule(100, Match.build(dst="10.0.2.0/24"), Forward(3))
        table = FlowTable([general, specific])
        assert table.lookup(header(dst_port=22)) is specific
        assert table.lookup(header(dst_port=80)) is general

    def test_lookup_miss_returns_none(self):
        table = FlowTable([FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(1))])
        assert table.lookup(header(dst="10.1.0.0")) is None

    def test_tie_break_by_install_order(self):
        first = FlowRule(50, Match.build(dst="10.0.0.0/8"), Forward(1))
        second = FlowRule(50, Match.build(dst="10.0.0.0/8"), Forward(2))
        table = FlowTable([first, second])
        assert table.lookup(header()) is first

    def test_remove(self):
        rule = FlowRule(10, Match(), Forward(1))
        table = FlowTable([rule])
        assert table.remove(rule.rule_id) is rule
        assert len(table) == 0
        with pytest.raises(KeyError):
            table.remove(rule.rule_id)

    def test_reinstall_same_id_replaces(self):
        rule = FlowRule(10, Match(), Forward(1))
        modified = FlowRule(10, Match(), Forward(2), rule_id=rule.rule_id)
        table = FlowTable([rule])
        table.add(modified)
        assert len(table) == 1
        assert table.get(rule.rule_id).action == Forward(2)

    def test_rules_for_port(self):
        r1 = FlowRule(10, Match.build(dst="10.0.1.0/24"), Forward(1))
        r2 = FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(2))
        r3 = FlowRule(10, Match.build(dst="10.0.3.0/24"), Drop())
        table = FlowTable([r1, r2, r3])
        assert table.rules_for_port(1) == [r1]
        assert table.rules_for_port(DROP_PORT) == [r3]

    def test_copy_is_independent(self):
        rule = FlowRule(10, Match(), Forward(1))
        table = FlowTable([rule])
        clone = table.copy()
        clone.remove(rule.rule_id)
        assert rule.rule_id in table

    def test_iteration_in_lookup_order(self):
        low = FlowRule(1, Match(), Drop())
        high = FlowRule(99, Match.build(dst_port=80), Forward(1))
        table = FlowTable([low, high])
        assert list(table) == [high, low]

    def test_output_port(self):
        assert FlowRule(1, Match(), Forward(7)).output_port() == 7
        assert FlowRule(1, Match(), Drop()).output_port() == DROP_PORT

    def test_unique_rule_ids(self):
        a = FlowRule(1, Match(), Forward(1))
        b = FlowRule(1, Match(), Forward(1))
        assert a.rule_id != b.rule_id

    def test_forward_rejects_negative_port(self):
        with pytest.raises(ValueError):
            Forward(-2)


class TestAcl:
    def test_empty_acl_permits(self):
        assert Acl().permits(header())

    def test_deny_entry(self):
        acl = Acl([AclEntry(Match.build(dst="10.0.0.0/8"), permit=False)])
        assert not acl.permits(header(dst="10.5.0.1"))
        assert acl.permits(header(dst="11.0.0.1"))

    def test_first_match_wins(self):
        acl = Acl(
            [
                AclEntry(Match.build(dst="10.0.2.0/24"), permit=True),
                AclEntry(Match.build(dst="10.0.0.0/8"), permit=False),
            ]
        )
        assert acl.permits(header(dst="10.0.2.1"))
        assert not acl.permits(header(dst="10.0.3.1"))

    def test_default_deny(self):
        acl = Acl([AclEntry(Match.build(dst_port=80), permit=True)], default_permit=False)
        assert acl.permits(header(dst_port=80))
        assert not acl.permits(header(dst_port=81))

    def test_to_bdd_agrees_with_permits(self, hs):
        acl = Acl(
            [
                AclEntry(Match.build(dst="10.0.2.0/24", dst_port=22), permit=False),
                AclEntry(Match.build(dst="10.0.0.0/8"), permit=True),
            ],
            default_permit=False,
        )
        pred = acl.to_bdd(hs)
        for h in [
            header(dst="10.0.2.9", dst_port=22),
            header(dst="10.0.2.9", dst_port=80),
            header(dst="10.3.0.1"),
            header(dst="12.0.0.1"),
        ]:
            assert hs.contains(pred, h.as_dict()) == acl.permits(h)

    def test_add_appends(self):
        acl = Acl()
        acl.add(AclEntry(Match.build(dst_port=22), permit=False))
        assert len(acl) == 1
        assert not acl.permits(header(dst_port=22))
