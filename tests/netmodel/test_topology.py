"""Unit tests for the topology model."""

import pytest

from repro.netmodel.rules import DROP_PORT
from repro.netmodel.topology import PortRef, Topology


@pytest.fixture
def triangle():
    """Three switches in a triangle, one host on S1 and one on S3."""
    topo = Topology("triangle")
    for sid in ("S1", "S2", "S3"):
        topo.add_switch(sid, num_ports=4)
    topo.add_link("S1", 3, "S2", 1)
    topo.add_link("S2", 3, "S3", 1)
    topo.add_link("S1", 4, "S3", 3)
    topo.add_host("H1", "S1", 1)
    topo.add_host("H2", "S3", 2)
    return topo


class TestConstruction:
    def test_duplicate_switch_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_switch("S1")

    def test_link_registers_both_directions(self, triangle):
        assert triangle.link(PortRef("S1", 3)) == PortRef("S2", 1)
        assert triangle.link(PortRef("S2", 1)) == PortRef("S1", 3)

    def test_double_link_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_link("S1", 3, "S3", 4)

    def test_self_link_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_link("S1", 2, "S1", 2)

    def test_host_on_linked_port_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_host("H9", "S1", 3)

    def test_link_on_host_port_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_link("S1", 1, "S2", 4)

    def test_duplicate_host_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_host("H1", "S2", 4)

    def test_nonpositive_port_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_port("S1", 0)

    def test_unknown_switch_raises_keyerror(self, triangle):
        with pytest.raises(KeyError):
            triangle.switch("S9")


class TestClassification:
    def test_host_port_is_edge(self, triangle):
        assert triangle.is_edge_port(PortRef("S1", 1))

    def test_linked_port_is_internal(self, triangle):
        assert not triangle.is_edge_port(PortRef("S1", 3))

    def test_unwired_port_is_edge(self, triangle):
        assert triangle.is_edge_port(PortRef("S2", 2))

    def test_drop_port_is_not_edge(self, triangle):
        assert not triangle.is_edge_port(PortRef("S1", DROP_PORT))

    def test_edge_ports_sorted_and_complete(self, triangle):
        edges = triangle.edge_ports()
        assert PortRef("S1", 1) in edges
        assert PortRef("S3", 2) in edges
        assert PortRef("S1", 3) not in edges
        assert edges == sorted(edges)

    def test_host_edge_ports_only_hosts(self, triangle):
        assert triangle.host_edge_ports() == [PortRef("S1", 1), PortRef("S3", 2)]


class TestQueries:
    def test_host_lookup_round_trip(self, triangle):
        ref = triangle.host_port("H1")
        assert ref == PortRef("S1", 1)
        assert triangle.host_at(ref) == "H1"

    def test_unknown_host(self, triangle):
        with pytest.raises(KeyError):
            triangle.host_port("H9")

    def test_hosts_sorted(self, triangle):
        assert triangle.hosts() == ["H1", "H2"]

    def test_neighbors(self, triangle):
        assert triangle.neighbors("S1") == ["S2", "S3"]
        assert triangle.neighbors("S2") == ["S1", "S3"]

    def test_internal_links_deduplicated(self, triangle):
        links = triangle.internal_links()
        assert len(links) == 3

    def test_ports_of(self, triangle):
        assert triangle.ports_of("S1") == [1, 2, 3, 4]

    def test_stats(self, triangle):
        stats = triangle.stats()
        assert stats["switches"] == 3
        assert stats["links"] == 3
        assert stats["hosts"] == 2
        assert stats["rules"] == 0


class TestDerived:
    def test_to_networkx(self, triangle):
        graph = triangle.to_networkx()
        assert set(graph.nodes) == {"S1", "S2", "S3"}
        assert graph.number_of_edges() == 3
        ports = graph.edges["S1", "S2"]["ports"]
        assert ports == {"S1": 3, "S2": 1}

    def test_validate_passes(self, triangle):
        triangle.validate()

    def test_diameter_bound_covers_revisits(self, triangle):
        assert triangle.diameter_bound() >= 6

    def test_str(self, triangle):
        assert "3 switches" in str(triangle)
