"""Unit tests for packet and header models."""

import pytest

from repro.netmodel.packet import Header, Packet, PROTO_TCP, PROTO_UDP


class TestHeader:
    def test_from_strings(self):
        h = Header.from_strings("10.0.0.1", "10.0.0.2", PROTO_UDP, 53, 5353)
        assert h.src_ip == 0x0A000001
        assert h.dst_ip == 0x0A000002
        assert h.proto == PROTO_UDP
        assert (h.src_port, h.dst_port) == (53, 5353)

    def test_as_dict_round_trip(self):
        h = Header(src_ip=1, dst_ip=2, proto=6, src_port=3, dst_port=4)
        assert h.as_dict() == {
            "src_ip": 1,
            "dst_ip": 2,
            "proto": 6,
            "src_port": 3,
            "dst_port": 4,
        }

    def test_five_tuple(self):
        h = Header(src_ip=1, dst_ip=2, proto=6, src_port=3, dst_port=4)
        assert h.five_tuple() == (1, 2, 6, 3, 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Header(proto=300)
        with pytest.raises(ValueError):
            Header(src_port=1 << 16)
        with pytest.raises(ValueError):
            Header(src_ip=-1)

    def test_with_override(self):
        h = Header(dst_port=80)
        h2 = h.with_(dst_port=443)
        assert h2.dst_port == 443
        assert h.dst_port == 80

    def test_is_hashable_and_frozen(self):
        h = Header(dst_port=80)
        assert hash(h) == hash(Header(dst_port=80))
        with pytest.raises(AttributeError):
            h.dst_port = 99

    def test_str_readable(self):
        h = Header.from_strings("10.0.0.1", "10.0.0.2", PROTO_TCP, 1234, 80)
        text = str(h)
        assert "10.0.0.1:1234" in text
        assert "10.0.0.2:80" in text


class TestPacket:
    def test_defaults(self):
        p = Packet(Header(dst_port=80))
        assert p.marker is False
        assert p.tag == 0
        assert p.ttl is None
        assert p.hops_taken == []

    def test_flow_key_matches_header(self):
        h = Header(src_ip=9, dst_port=80)
        assert Packet(h).flow_key == h.five_tuple()

    def test_copy_is_independent(self):
        p = Packet(Header(), marker=True, tag=5, ttl=7)
        q = p.copy()
        q.tag = 99
        q.hops_taken.append("x")
        assert p.tag == 5
        assert p.hops_taken == []
        assert q.marker is True and q.ttl == 7

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Packet(Header(), size=0)
