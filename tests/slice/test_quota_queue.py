"""TenantQuotaQueue: per-tenant occupancy caps under every policy."""

import pytest

from repro.core.resilience import OverflowPolicy, TenantQuotaQueue


def make_queue(policy=OverflowPolicy.DROP_NEW, maxsize=8, **kwargs):
    owners = {}
    queue = TenantQuotaQueue(
        maxsize, policy, classify=owners.get, **kwargs
    )
    return queue, owners


def test_caps_derived_from_shares():
    queue, _ = make_queue(shares={"a": 0.25, "b": 0.5})
    assert queue.cap_of("a") == 2
    assert queue.cap_of("b") == 4
    assert queue.cap_of("c") == 8  # default share 1.0
    assert queue.cap_of(None) == 8


def test_share_validation():
    with pytest.raises(ValueError):
        TenantQuotaQueue(8, shares={"a": 0.0})
    with pytest.raises(ValueError):
        TenantQuotaQueue(8, shares={"a": 2.0})
    with pytest.raises(ValueError):
        TenantQuotaQueue(8, default_share=0.0)


def test_over_quota_refused_under_drop_new():
    queue, owners = make_queue(shares={"noisy": 0.25})
    for i in range(4):
        owners[f"n{i}"] = "noisy"
    assert queue.put("n0") and queue.put("n1")
    assert not queue.put("n2")  # cap 2 reached
    assert not queue.put("n3")
    assert queue.tenant_dropped["noisy"] == 2
    assert queue.stats()["dropped_new"] == 2


def test_quiet_tenant_unharmed_by_flood():
    queue, owners = make_queue(
        policy=OverflowPolicy.DROP_OLDEST, shares={"noisy": 0.5, "quiet": 0.5}
    )
    for i in range(16):
        owners[f"n{i}"] = "noisy"
        queue.put(f"n{i}")
    for i in range(4):
        owners[f"q{i}"] = "quiet"
        assert queue.put(f"q{i}")
    stats = queue.stats()
    assert stats["tenants"]["quiet"]["dropped"] == 0
    assert stats["tenants"]["noisy"]["dropped"] > 0
    drained = [queue.get_nowait() for _ in range(queue.qsize())]
    assert [p for p in drained if p.startswith("q")] == [
        "q0", "q1", "q2", "q3"
    ]


def test_block_policy_never_stalls_on_over_quota():
    """An over-quota tenant is refused immediately, not blocked."""
    queue, owners = make_queue(
        policy=OverflowPolicy.BLOCK, shares={"noisy": 0.25}
    )
    for i in range(3):
        owners[f"n{i}"] = "noisy"
    assert queue.put("n0") and queue.put("n1")
    # Cap reached: returns False without waiting (no timeout needed).
    assert not queue.put("n2")


def test_get_releases_occupancy():
    queue, owners = make_queue(shares={"a": 0.25})
    owners.update({"x1": "a", "x2": "a", "x3": "a"})
    assert queue.put("x1") and queue.put("x2")
    assert not queue.put("x3")
    assert queue.get() == "x1"
    queue.task_done()
    assert queue.put("x3")  # slot released by the get


def test_force_put_bypasses_attribution():
    queue, owners = make_queue(maxsize=2)
    sentinel = object()
    owners["p"] = "a"
    assert queue.put("p")
    assert queue.put(sentinel, force=True)
    assert queue.get() == "p"
    assert queue.get() is sentinel


def test_stats_shape():
    queue, owners = make_queue(shares={"a": 0.5})
    owners["p"] = "a"
    owners["u"] = None
    queue.put("p")
    queue.put("u")
    stats = queue.stats()
    assert stats["queued"] == 2
    assert stats["tenants"]["a"] == {
        "queued": 1, "cap": 4, "puts": 1, "dropped": 0
    }
    assert stats["tenants"][""]["queued"] == 1  # unattributed bucket
