"""Server integration: set_slices, tenant metrics, report attribution."""

import pytest

from repro.core.daemon import VeriDPDaemon
from repro.core.resilience import TenantQuotaQueue
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.obs.exposition import render_prometheus
from repro.slice.registry import SliceRegistry, TenantSpec
from repro.topologies import build_linear


def routed_setup():
    scenario = build_linear(4)
    server = VeriDPServer(scenario.topo, scenario.channel)
    hosts = sorted(scenario.subnets)
    registry = SliceRegistry(server.hs, scenario.topo)
    registry.register(TenantSpec(
        name="red",
        prefixes=tuple(scenario.subnets[h] for h in hosts[:2]),
        hosts=tuple(hosts[:2]),
        queue_share=0.5,
    ))
    registry.register(TenantSpec(
        name="blue",
        prefixes=tuple(scenario.subnets[h] for h in hosts[2:]),
        hosts=tuple(hosts[2:]),
        queue_share=0.5,
    ))
    return scenario, server, registry, hosts


def test_set_slices_builds_views_and_checks(server, registry):
    incidents = server.set_slices(registry)
    assert incidents == []
    assert sorted(server.tenant_views) == ["blue", "red"]
    assert server.isolation is not None
    assert server.isolation.full_checks == 1
    for view in server.tenant_views.values():
        assert view.num_paths() > 0


def test_set_slices_rejects_foreign_headerspace(server, scenario):
    from repro.bdd.headerspace import HeaderSpace

    foreign = SliceRegistry(HeaderSpace())
    foreign.register(TenantSpec(name="x", prefixes=("10.0.0.0/24",)))
    with pytest.raises(ValueError, match="HeaderSpace"):
        server.set_slices(foreign)


def test_leak_raises_incident_through_server(server, registry, scenario, hosts):
    server.set_slices(registry)
    blue_port = registry.tenants["blue"].edge_ports[0]
    sub = scenario.subnets[hosts[0]].rsplit("/", 1)[0] + "/26"
    server.apply_rule_update(blue_port.switch, sub, blue_port.port)
    incidents = server.drain_isolation_incidents()
    assert incidents
    assert server.isolation_incidents_total == len(incidents)
    assert all(i.src_tenant == "red" for i in incidents)
    server.apply_rule_delete(blue_port.switch, sub)
    assert server.drain_isolation_incidents() == []


def test_report_attribution_and_tenant_metrics():
    scenario, server, registry, hosts = routed_setup()
    server.set_slices(registry)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel,
        report_sink=server.receive_report_bytes,
    )
    for src, dst in scenario.host_pairs():
        net.inject_from_host(src, scenario.header_between(src, dst))
    assert set(server.tenant_reports) == {"red", "blue"}
    assert sum(server.tenant_reports.values()) > 0
    text = render_prometheus(server.obs.registry.snapshot())
    assert 'veridp_tenant_reports_total{tenant="red"}' in text
    assert 'veridp_tenant_view_paths{tenant="blue"}' in text
    assert 'veridp_coverage_tenant_dark_paths{tenant="red"}' in text
    assert 'veridp_coverage_tenant_path_ratio{tenant="blue"}' in text
    assert "veridp_isolation_incidents_total 0" in text
    assert "veridp_isolation_checks_total" in text


def test_per_tenant_dark_paths_filter():
    scenario, server, registry, hosts = routed_setup()
    server.set_slices(registry)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel,
        report_sink=server.receive_report_bytes,
    )
    # Drive only red-destined traffic: blue's slice stays dark.
    for src in hosts:
        for dst in hosts[:2]:
            if src != dst:
                net.inject_from_host(src, scenario.header_between(src, dst))
    red_dark = server.coverage.dark_paths("red")
    blue_dark = server.coverage.dark_paths("blue")
    all_dark = server.coverage.dark_paths()
    assert len(blue_dark) > 0
    # Tenant filters carve disjoint subsets of the full dark list (paths
    # outside any footprint remain in neither tenant's work list).
    assert len(red_dark) + len(blue_dark) <= len(all_dark)
    # Every dark path attributed to blue really delivers at blue's ports.
    blue_ports = set(registry.tenants["blue"].edge_ports)
    assert all(outport in blue_ports for _, outport, _ in blue_dark)


def test_stats_carries_tenant_and_isolation_sections(server, registry):
    server.set_slices(registry)
    stats = server.stats()
    assert set(stats["tenants"]) == {"red", "blue"}
    for row in stats["tenants"].values():
        assert {"view_pairs", "view_paths", "reports", "pair_syncs"} <= set(row)
    iso = stats["isolation"]
    assert iso["incidents_total"] == 0
    assert iso["full_checks"] == 1


def test_daemon_auto_wires_quota_queue():
    scenario, server, registry, hosts = routed_setup()
    server.set_slices(registry)
    daemon = VeriDPDaemon(server, workers=1, queue_size=64)
    assert isinstance(daemon._queue, TenantQuotaQueue)
    assert daemon._queue.cap_of("red") == 32
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    with daemon:
        sent = 0
        for src, dst in scenario.host_pairs():
            result = net.inject_from_host(
                src, scenario.header_between(src, dst)
            )
            for report in result.reports:
                from repro.core.reports import pack_report

                daemon.submit(pack_report(report, net.codec))
                sent += 1
        daemon.join()
    stats = daemon.stats()
    assert stats["processed"] == sent
    assert set(stats["tenants"]) <= {"red", "blue", ""}
    assert sum(row["puts"] for row in stats["tenants"].values()) == sent


def test_daemon_without_slices_keeps_plain_queue(server):
    daemon = VeriDPDaemon(server, workers=1)
    assert not isinstance(daemon._queue, TenantQuotaQueue)


def test_refresh_retargets_views_and_verifier():
    scenario, server, registry, hosts = routed_setup()
    server.set_slices(registry)
    paths_before = {
        n: v.num_paths() for n, v in server.tenant_views.items()
    }
    full_checks = server.isolation.full_checks
    # Install through the channel: snapshot provider goes dirty, the next
    # refresh rebuilds the table and must re-point views + verifier.
    from repro.netmodel.rules import FlowRule, Forward, Match

    host_port = scenario.topo.host_port(hosts[0])
    scenario.controller.install(
        host_port.switch,
        FlowRule(
            priority=140,
            match=Match.build(
                dst=scenario.subnets[hosts[0]].rsplit("/", 1)[0] + "/26"
            ),
            action=Forward(host_port.port),
        ),
    )
    server.refresh_if_dirty()
    assert server.isolation.full_checks == full_checks + 1
    for name, view in server.tenant_views.items():
        assert view.shared is server.table
        assert view.num_paths() >= paths_before[name] - 1
    assert server.drain_isolation_incidents() == []
