"""TenantPathTable: slicing correctness, journal resync, node sharing."""

from repro.slice.views import TenantPathTable


def _view(server, registry, name):
    return TenantPathTable(
        server.table, server.hs, registry.tenants[name]
    )


def test_view_slices_to_footprint(server, registry):
    server.refresh_if_dirty()
    bdd = server.hs.bdd
    red = registry.tenants["red"]
    view = _view(server, registry, "red")
    assert len(view) > 0
    for inport, outport in view.pairs():
        for entry in view.lookup(inport, outport):
            # Every sliced header set sits inside the footprint...
            assert bdd.diff(entry.headers, red.footprint) == server.hs.empty
            # ...and inside some shared entry for the same pair.
            assert any(
                bdd.diff(entry.headers, shared.headers) == server.hs.empty
                for shared in server.table.lookup(inport, outport)
            )


def test_views_partition_the_table(server, registry):
    """red + blue views cover exactly the paths the resolver attributes."""
    server.refresh_if_dirty()
    red = _view(server, registry, "red")
    blue = _view(server, registry, "blue")
    bdd = server.hs.bdd
    both = bdd.or_(
        registry.tenants["red"].footprint,
        registry.tenants["blue"].footprint,
    )
    # Footprints are disjoint, so the two views partition exactly the
    # shared entries that intersect either footprint (paths outside any
    # tenant's space — hairpins, unowned slices — belong to neither view).
    in_scope = sum(
        1
        for i, o in server.table.pairs()
        for e in server.table.lookup(i, o)
        if bdd.and_(e.headers, both) != server.hs.empty
    )
    assert red.num_paths() + blue.num_paths() == in_scope
    overlap = set(red.pairs()) & set(blue.pairs())
    for inport, outport in overlap:
        red_headers = [e.headers for e in red.lookup(inport, outport)]
        blue_headers = [e.headers for e in blue.lookup(inport, outport)]
        assert not set(red_headers) & set(blue_headers)


def test_incremental_sync_rescans_only_dirty_pairs(server, registry, scenario, hosts):
    server.refresh_if_dirty()
    view = _view(server, registry, "red")
    before = view.pair_syncs
    assert view.sync() == 0  # clean journal: no work
    # Mutate one subnet's behavior at the victim's edge switch (a drop
    # specialization: same-port specializations are behavior no-ops the
    # incremental updater rightly won't dirty).
    from repro.netmodel.rules import DROP_PORT

    subnet = scenario.subnets[hosts[0]]
    switch = scenario.topo.host_port(hosts[0]).switch
    sub = subnet.rsplit("/", 1)[0] + "/26"
    server.apply_rule_update(switch, sub, DROP_PORT)
    synced = view.sync()
    assert 0 < synced < len(server.table.pairs())
    assert view.pair_syncs == before + synced


def test_view_noop_resync_keeps_version(server, registry):
    """Re-slicing an unchanged pair must not bump the view's version."""
    server.refresh_if_dirty()
    view = _view(server, registry, "red")
    version = view.table.version
    for inport, outport in view.pairs():
        assert view._sync_pair(inport, outport) is False
    assert view.table.version == version


def test_retarget_follows_table_swap(server, registry):
    server.refresh_if_dirty()
    view = _view(server, registry, "red")
    paths = view.num_paths()
    view.retarget(server.table)
    assert view.num_paths() == paths
    assert view.full_syncs >= 1


def test_vector_kernel_on_view(server, registry):
    server.refresh_if_dirty()
    view = _view(server, registry, "red")
    kernel = view.vector_kernel()
    # The kernel compiles the *view's* table (possibly None without numpy);
    # stats must come from the private table either way.
    stats = view.stats()
    assert stats.num_paths == view.num_paths()
    if kernel is not None:
        assert kernel is view.table.vector_kernel(server.hs)


def test_node_store_shared_across_tenant_views(server, registry):
    """N tenant views allocate no duplicate BDD nodes (hash-consing).

    Building every tenant's view twice on the same HeaderSpace must leave
    the node count unchanged the second time, and produce identical
    canonical node ids for every sliced header set — the satellite
    acceptance check that N tenants cost one node table, not N.
    """
    server.refresh_if_dirty()
    views = {
        name: _view(server, registry, name) for name in registry.tenants
    }
    fingerprint = {
        name: [
            (inport, outport, tuple(e.headers for e in view.lookup(inport, outport)))
            for inport, outport in sorted(
                view.pairs(), key=lambda p: (str(p[0]), str(p[1]))
            )
        ]
        for name, view in views.items()
    }
    nodes_after_first = server.hs.bdd.num_nodes()
    rebuilt = {
        name: _view(server, registry, name) for name in registry.tenants
    }
    assert server.hs.bdd.num_nodes() == nodes_after_first
    for name, view in rebuilt.items():
        again = [
            (inport, outport, tuple(e.headers for e in view.lookup(inport, outport)))
            for inport, outport in sorted(
                view.pairs(), key=lambda p: (str(p[0]), str(p[1]))
            )
        ]
        assert again == fingerprint[name]
