"""Shared fixtures: a routed linear fabric partitioned into two tenants."""

import pytest

from repro.core.server import VeriDPServer
from repro.slice.registry import SliceRegistry, TenantSpec
from repro.topologies import build_linear
from repro.topologies.base import lpm_ruleset_for


@pytest.fixture
def scenario():
    return build_linear(4, install_routes=False)


@pytest.fixture
def server(scenario):
    """An incremental server with the base LPM ruleset installed."""
    srv = VeriDPServer(scenario.topo, channel=None, incremental=True)
    ruleset = lpm_ruleset_for(scenario.topo, scenario.subnets)
    for switch in sorted(ruleset):
        for prefix, port in ruleset[switch]:
            srv.apply_rule_update(switch, prefix, port)
    return srv


@pytest.fixture
def hosts(scenario):
    return sorted(scenario.subnets)


def two_tenant_registry(server, scenario, hosts):
    registry = SliceRegistry(server.hs, scenario.topo)
    registry.register(
        TenantSpec(
            name="red",
            prefixes=(scenario.subnets[hosts[0]], scenario.subnets[hosts[1]]),
            hosts=(hosts[0], hosts[1]),
            sampling_interval=0.5,
            queue_share=0.25,
        )
    )
    registry.register(
        TenantSpec(
            name="blue",
            prefixes=(scenario.subnets[hosts[2]], scenario.subnets[hosts[3]]),
            hosts=(hosts[2], hosts[3]),
        )
    )
    return registry


@pytest.fixture
def registry(server, scenario, hosts):
    return two_tenant_registry(server, scenario, hosts)
