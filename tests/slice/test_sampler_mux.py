"""TenantSamplerMux: per-tenant sampling budgets."""

from repro.core.sampling import TenantSamplerMux


def mux(**kwargs):
    owners = {}
    return TenantSamplerMux(owners.get, **kwargs), owners


def test_per_tenant_intervals():
    sampler, owners = mux(default_interval=1.0, intervals={"fast": 0.1})
    owners.update({"f": "fast", "s": "slow"})
    assert sampler.should_sample("f", 0.0)  # first packet always sampled
    assert sampler.should_sample("s", 0.0)
    # 0.5s later: only the fast tenant's interval (0.1) has elapsed.
    assert sampler.should_sample("f", 0.5)
    assert not sampler.should_sample("s", 0.5)


def test_eviction_pressure_stays_inside_the_slice():
    sampler, owners = mux(capacity=2)
    for i in range(8):
        owners[f"h{i}"] = "heavy"
    owners["q"] = "quiet"
    assert sampler.should_sample("q", 0.0)
    for i in range(8):
        sampler.should_sample(f"h{i}", 0.0)
    # The heavy tenant churned its own bounded table; the quiet tenant's
    # flow state survived, so its next packet is NOT treated as new.
    assert not sampler.should_sample("q", 0.5)
    assert sampler.sampler_for("heavy").active_flows == 2
    assert sampler.sampler_for("quiet").active_flows == 1


def test_set_interval_retunes_live_sampler():
    sampler, owners = mux(default_interval=10.0)
    owners["f"] = "t"
    sampler.should_sample("f", 0.0)
    assert not sampler.should_sample("f", 1.0)
    sampler.set_interval("t", 0.5)
    assert sampler.should_sample("f", 1.0)


def test_unattributed_flows_share_default_sampler():
    sampler, owners = mux()
    sampler.should_sample("unknown-1", 0.0)
    sampler.should_sample("unknown-2", 0.0)
    stats = sampler.stats()
    assert stats[""]["seen"] == 2
    assert stats[""]["active_flows"] == 2


def test_stats_keyed_by_tenant():
    sampler, owners = mux(intervals={"a": 0.25})
    owners.update({"x": "a", "y": "b"})
    sampler.should_sample("x", 0.0)
    sampler.should_sample("y", 0.0)
    stats = sampler.stats()
    assert stats["a"] == {
        "seen": 1, "sampled": 1, "active_flows": 1, "interval": 0.25
    }
    assert stats["b"]["interval"] == 1.0
