"""SliceRegistry: validation, attribution, declarative loading."""

import json

import pytest

from repro.bdd.headerspace import parse_prefix
from repro.netmodel.topology import PortRef
from repro.slice.registry import SliceRegistry, TenantSpec


def test_spec_validation():
    with pytest.raises(ValueError):
        TenantSpec(name="", prefixes=("10.0.0.0/24",))
    with pytest.raises(ValueError):
        TenantSpec(name="t", prefixes=())
    with pytest.raises(ValueError):
        TenantSpec(name="t", prefixes=("10.0.0.0/24",), queue_share=0.0)
    with pytest.raises(ValueError):
        TenantSpec(name="t", prefixes=("10.0.0.0/24",), queue_share=1.5)
    with pytest.raises(ValueError):
        TenantSpec(name="t", prefixes=("10.0.0.0/24",), sampling_interval=-1)


def test_register_rejects_overlap_and_duplicates(server):
    registry = SliceRegistry(server.hs)
    registry.register(TenantSpec(name="a", prefixes=("10.0.0.0/24",)))
    with pytest.raises(ValueError, match="duplicate"):
        registry.register(TenantSpec(name="a", prefixes=("10.9.0.0/24",)))
    # A sub-prefix of an existing tenant's space is an overlap.
    with pytest.raises(ValueError, match="overlaps"):
        registry.register(TenantSpec(name="b", prefixes=("10.0.0.128/25",)))
    # Disjoint space is fine.
    registry.register(TenantSpec(name="c", prefixes=("10.1.0.0/24",)))
    assert sorted(t.name for t in registry) == ["a", "c"]


def test_register_rejects_port_double_ownership(server, scenario, hosts):
    registry = SliceRegistry(server.hs, scenario.topo)
    registry.register(
        TenantSpec(name="a", prefixes=("10.0.0.0/24",), hosts=(hosts[0],))
    )
    with pytest.raises(ValueError, match="owned by both"):
        registry.register(
            TenantSpec(name="b", prefixes=("10.1.0.0/24",), hosts=(hosts[0],))
        )
    # The failed registration must not leave a half-registered tenant.
    assert "b" not in registry.tenants


def test_classify_dst_longest_prefix_wins(server):
    registry = SliceRegistry(server.hs)
    registry.register(TenantSpec(name="coarse", prefixes=("10.0.0.0/16",)))
    # Carve a /24 out via a *disjoint* tenant in other space plus check LPM
    # ordering with nested plens registered by unrelated tenants.
    registry.register(TenantSpec(name="other", prefixes=("10.1.0.0/24",)))
    addr_coarse, _ = parse_prefix("10.0.5.1/32")
    addr_other, _ = parse_prefix("10.1.0.9/32")
    addr_miss, _ = parse_prefix("192.168.0.1/32")
    assert registry.classify_dst(addr_coarse) == "coarse"
    assert registry.classify_dst(addr_other) == "other"
    assert registry.classify_dst(addr_miss) is None


def test_remove_clears_ownership_and_lpm(registry):
    red = registry.tenants["red"]
    registry.remove("red")
    assert "red" not in registry.tenants
    for ref in red.edge_ports:
        assert ref not in registry.port_owner
    value, _ = red.prefixes[0]
    assert registry.classify_dst(value) is None
    # blue unaffected
    assert registry.port_owner
    assert len(registry) == 1


def test_edge_ports_derived_from_topology(registry, scenario, hosts):
    red = registry.tenants["red"]
    assert red.edge_ports == (
        scenario.topo.host_port(hosts[0]),
        scenario.topo.host_port(hosts[1]),
    )
    for ref in red.edge_ports:
        assert registry.port_owner[ref] == "red"


def test_budget_views(registry):
    assert registry.sampling_intervals() == {"red": 0.5}
    assert registry.queue_shares() == {"red": 0.25}


def test_entry_resolver_attributes_by_port_owner(server, registry):
    server.refresh_if_dirty()
    resolve = registry.entry_resolver()
    seen = set()
    for inport, outport in server.table.pairs():
        for entry in server.table.lookup(inport, outport):
            seen.add(resolve(inport, outport, entry))
    # Both tenants are attributed; paths outside any footprint (hairpins,
    # non-delivered slices) legitimately resolve to None.
    assert {"red", "blue"} <= seen <= {"red", "blue", None}


def test_load_roundtrip(tmp_path, server, scenario, hosts):
    doc = {
        "tenants": [
            {
                "name": "red",
                "prefixes": [scenario.subnets[hosts[0]]],
                "hosts": [hosts[0]],
                "queue_share": 0.5,
            },
            {
                "name": "blue",
                "prefixes": [scenario.subnets[hosts[2]]],
                "hosts": [hosts[2]],
                "sampling_interval": 2.0,
            },
        ]
    }
    path = tmp_path / "slices.json"
    path.write_text(json.dumps(doc))
    registry = SliceRegistry.load(str(path), server.hs, scenario.topo)
    assert sorted(registry.tenants) == ["blue", "red"]
    assert registry.queue_shares() == {"red": 0.5}
    assert registry.sampling_intervals() == {"blue": 2.0}
    assert registry.tenants["red"].edge_ports == (
        scenario.topo.host_port(hosts[0]),
    )


def test_parse_specs_rejects_bad_document():
    with pytest.raises(ValueError):
        SliceRegistry.parse_specs({})
    with pytest.raises(ValueError):
        SliceRegistry.parse_specs({"tenants": []})
