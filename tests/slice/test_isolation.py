"""IsolationVerifier: full sweep, leak detection/blame, incremental scope."""

from repro.bdd.headerspace import parse_prefix
from repro.slice.isolation import IsolationVerifier


def _verifier(server, registry):
    server.refresh_if_dirty()
    return IsolationVerifier(
        registry,
        server.table,
        server.hs,
        provider=server._provider,
        updater=server.updater,
    )


def _leak(server, registry, scenario, hosts):
    """Route a /26 of red's first subnet to blue's first edge port."""
    victim_subnet = scenario.subnets[hosts[0]]
    blue_port = registry.tenants["blue"].edge_ports[0]
    sub = victim_subnet.rsplit("/", 1)[0] + "/26"
    server.apply_rule_update(blue_port.switch, sub, blue_port.port)
    return sub, blue_port


def test_full_check_clean_fabric(server, registry):
    iso = _verifier(server, registry)
    assert iso.check_full() == []
    assert iso.full_checks == 1
    assert iso.last_victims is None  # full sweep: all tenants in scope
    assert iso.last_table_pairs > 0
    assert iso.last_tenant_pairs > 0
    assert iso.checks_total == iso.last_tenant_pairs


def test_leak_detected_with_blame(server, registry, scenario, hosts):
    iso = _verifier(server, registry)
    iso.check_full()
    sub, blue_port = _leak(server, registry, scenario, hosts)
    incidents = iso.recheck()
    assert incidents
    value, plen = parse_prefix(sub)
    for inc in incidents:
        assert inc.src_tenant == "red"
        assert inc.dst_tenant == "blue"
        assert inc.outport == blue_port
        assert inc.witness is not None
        # The witness lies inside the leaked /26.
        assert inc.witness["dst_ip"] >> (32 - plen) == value >> (32 - plen)
        assert inc.leaked_rule == (blue_port.switch, sub, blue_port.port)
        assert "ISOLATION red -> blue" in str(inc)
    # Heal: delete the rule, the next recheck comes back clean.
    server.apply_rule_delete(blue_port.switch, sub)
    assert iso.recheck() == []


def test_recheck_scopes_to_dirty_pairs_and_victims(server, registry, scenario, hosts):
    iso = _verifier(server, registry)
    iso.check_full()
    full_pairs = iso.last_table_pairs
    sub, blue_port = _leak(server, registry, scenario, hosts)
    iso.recheck()
    # The change feed names red (its footprint moved), not blue.
    assert iso.last_victims == {"red"}
    # Only the dirty pairs were re-examined — strictly fewer than a sweep.
    assert 0 < iso.last_table_pairs < full_pairs
    server.apply_rule_delete(blue_port.switch, sub)
    iso.recheck()
    assert iso.last_victims == {"red"}


def test_recheck_noop_when_nothing_changed(server, registry):
    iso = _verifier(server, registry)
    iso.check_full()
    assert iso.recheck() == []
    assert iso.last_table_pairs == 0
    assert iso.last_tenant_pairs == 0


def test_recheck_degrades_to_full_on_journal_overflow(server, registry):
    iso = _verifier(server, registry)
    iso.check_full()
    full_pairs = iso.last_table_pairs
    # Blow the dirty journal: more notes than its cap.
    from repro.core.pathtable import _DIRTY_LOG_CAP as cap

    pair = server.table.pairs()[0]
    for _ in range(cap + 1):
        server.table.note_dirty(*pair)
    iso.recheck()
    assert iso.last_table_pairs == full_pairs  # whole table re-proved


def test_unowned_outports_are_out_of_scope(server, scenario, hosts):
    """The documented blind spot: leaks to unowned edge ports don't count."""
    from tests.slice.conftest import two_tenant_registry

    registry = two_tenant_registry(server, scenario, hosts)
    # Deregister blue: its ports become unowned, red's space routed there
    # is no longer anyone's property.
    blue_port = registry.tenants["blue"].edge_ports[0]
    registry.remove("blue")
    iso = _verifier(server, registry)
    iso.check_full()
    sub = scenario.subnets[hosts[0]].rsplit("/", 1)[0] + "/26"
    server.apply_rule_update(blue_port.switch, sub, blue_port.port)
    assert iso.recheck() == []


def test_retarget_reproves_everything(server, registry):
    iso = _verifier(server, registry)
    iso.check_full()
    incidents = iso.retarget(server.table)
    assert incidents == []
    assert iso.full_checks == 2
