"""Tests for the policy-query API over the path table."""

import pytest

from repro.bdd.headerspace import HeaderSpace
from repro.core.pathtable import PathTableBuilder
from repro.core.queries import PolicyChecker
from repro.netmodel.rules import Match
from repro.netmodel.topology import PortRef
from repro.topologies import build_fattree, build_figure5, build_linear, build_stanford


@pytest.fixture(scope="module")
def figure5_checker():
    scenario = build_figure5()
    hs = HeaderSpace()
    table = PathTableBuilder(scenario.topo, hs).build()
    return scenario, PolicyChecker(table, hs, scenario.topo)


@pytest.fixture(scope="module")
def stanford_checker():
    scenario = build_stanford(subnets_per_zone=1)
    hs = HeaderSpace()
    table = PathTableBuilder(scenario.topo, hs).build()
    return scenario, PolicyChecker(table, hs, scenario.topo)


class TestReachability:
    def test_reachable_pair(self, figure5_checker):
        scenario, checker = figure5_checker
        result = checker.reachability("H1", "H3")
        assert result.holds
        assert result.witnesses

    def test_headers_filter(self, figure5_checker):
        scenario, checker = figure5_checker
        # SSH from H1 reaches H3 (via the middlebox).
        assert checker.reachability(
            "H1", "H3", Match.build(src="10.0.1.1/32", dst_port=22)
        ).holds

    def test_unreachable_header_space(self, figure5_checker):
        scenario, checker = figure5_checker
        # Traffic to an address outside every rule never reaches H3.
        result = checker.reachability("H1", "H3", Match.build(dst="99.0.0.0/8"))
        assert not result.holds

    def test_accepts_port_refs(self, figure5_checker):
        scenario, checker = figure5_checker
        src = scenario.topo.host_port("H1")
        dst = scenario.topo.host_port("H3")
        assert checker.reachability(src, dst).holds

    def test_all_pairs_matrix(self):
        scenario = build_linear(3)
        hs = HeaderSpace()
        table = PathTableBuilder(scenario.topo, hs).build()
        checker = PolicyChecker(table, hs, scenario.topo)
        matrix = checker.all_pairs_reachability()
        assert len(matrix) == 6
        assert all(matrix.values())


class TestIsolation:
    def test_acl_enforced_isolation(self, figure5_checker):
        """H2's traffic to H3 is dropped at S3: isolation holds."""
        scenario, checker = figure5_checker
        result = checker.isolation("H2", "H3", Match.build(src="10.0.1.2/32"))
        assert result.holds

    def test_leak_reported_as_violation(self, figure5_checker):
        scenario, checker = figure5_checker
        result = checker.isolation("H1", "H3")
        assert not result.holds
        assert result.violations  # the delivering paths are the evidence

    def test_stanford_private_space_isolation(self, stanford_checker):
        """The sozb ACL denies 10/8: no path from sozb's host to cozb's
        10.63.16.0/20 subnet exists in the configuration."""
        scenario, checker = stanford_checker
        result = checker.isolation(
            "h_sozb_0", "h_cozb_0", Match.build(dst="10.0.0.0/8")
        )
        assert result.holds


class TestBlackHoles:
    def test_unroutable_space_is_reported(self, figure5_checker):
        scenario, checker = figure5_checker
        result = checker.black_holes("H1")
        assert not result.holds  # the all-match query includes unroutable space
        drop_switches = {o.switch for _, o, _ in result.violations}
        assert drop_switches  # and names the dropping switches

    def test_routed_traffic_is_blackhole_free(self, figure5_checker):
        scenario, checker = figure5_checker
        result = checker.black_holes(
            "H1", Match.build(src="10.0.1.1/32", dst="10.0.2.0/24")
        )
        assert result.holds

    def test_acl_drop_located(self, stanford_checker):
        scenario, checker = stanford_checker
        result = checker.black_holes("h_sozb_0", Match.build(dst="10.63.16.0/20"))
        assert not result.holds
        assert any(o.switch == "sozb" for _, o, _ in result.violations)


class TestWaypoint:
    def test_ssh_must_cross_middlebox(self, figure5_checker):
        """Figure 2's intent on the Figure 5 network: SSH traverses MB."""
        scenario, checker = figure5_checker
        result = checker.waypoint(
            "H1", "H3", "MB", Match.build(dst_port=22, proto=6)
        )
        assert result.holds

    def test_http_bypasses_middlebox(self, figure5_checker):
        scenario, checker = figure5_checker
        result = checker.waypoint("H1", "H3", "MB", Match.build(dst_port=80))
        assert not result.holds
        assert result.violations

    def test_switch_waypoint(self, figure5_checker):
        scenario, checker = figure5_checker
        # All H1 -> H3 traffic passes S1 trivially (it's the entry switch).
        assert checker.waypoint("H1", "H3", "S1").holds

    def test_no_traffic_means_not_holding(self, figure5_checker):
        scenario, checker = figure5_checker
        result = checker.waypoint("H1", "H3", "MB", Match.build(dst="99.0.0.0/8"))
        assert not result.holds  # vacuous policies don't "hold"


class TestDiversityAndLength:
    def test_te_split_detected(self):
        """Figure 3's TE intent: the split traffic uses >= 2 distinct paths."""
        from repro.netmodel.rules import FlowRule, Forward
        from repro.netmodel.topology import Topology
        from repro.topologies.base import wire_scenario

        topo = Topology("diamond")
        for sid in ("S1", "S2", "S3", "S4"):
            topo.add_switch(sid, num_ports=3)
        topo.add_link("S1", 2, "S2", 1)
        topo.add_link("S1", 3, "S3", 1)
        topo.add_link("S2", 2, "S4", 2)
        topo.add_link("S3", 2, "S4", 3)
        topo.add_host("SRC", "S1", 1)
        topo.add_host("DST", "S4", 1)
        scenario = wire_scenario(
            topo, {"SRC": "10.0.1.0/24", "DST": "10.0.2.0/24"},
            {"SRC": "10.0.1.1", "DST": "10.0.2.1"}, install_routes=False,
        )
        ctrl = scenario.controller
        ctrl.install_path(Match.build(dst="10.0.2.0/24"), ["S1", "S3", "S4"],
                          1, 1, priority=200)
        ctrl.install_path(Match.build(dst="10.0.2.0/24", src_port=(0, 1023)),
                          ["S1", "S2", "S4"], 1, 1, priority=300)
        hs = HeaderSpace()
        table = PathTableBuilder(scenario.topo, hs).build()
        checker = PolicyChecker(table, hs, scenario.topo)
        paths = checker.path_diversity("SRC", "DST", Match.build(dst="10.0.2.0/24"))
        assert len(paths) == 2

    def test_single_path_network(self):
        scenario = build_linear(3)
        hs = HeaderSpace()
        table = PathTableBuilder(scenario.topo, hs).build()
        checker = PolicyChecker(table, hs, scenario.topo)
        paths = checker.path_diversity("H1", "H3")
        assert len(paths) == 1

    def test_max_path_length(self, figure5_checker):
        scenario, checker = figure5_checker
        # The SSH detour S1 -> S2 -> MB -> S2 -> S3 is the longest: 4 hops.
        assert checker.max_path_length() == 4
        assert checker.max_path_length(Match.build(dst_port=80)) <= 3

    def test_fattree_ttl_dimensioning(self):
        """The query gives a tighter TTL than the topology bound."""
        scenario = build_fattree(4)
        hs = HeaderSpace()
        table = PathTableBuilder(scenario.topo, hs).build()
        checker = PolicyChecker(table, hs, scenario.topo)
        assert checker.max_path_length() == 5  # edge-agg-core-agg-edge
        assert checker.max_path_length() < scenario.topo.diameter_bound()


class TestQueryResult:
    def test_bool_and_str(self, figure5_checker):
        _, checker = figure5_checker
        result = checker.reachability("H1", "H3")
        assert bool(result)
        assert "HOLDS" in str(result)
        bad = checker.isolation("H1", "H3")
        assert "VIOLATED" in str(bad)
