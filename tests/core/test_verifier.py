"""Unit tests for tag verification (Algorithm 3)."""

import pytest

from repro.bdd.headerspace import HeaderSpace
from repro.core.pathtable import PathTableBuilder
from repro.core.reports import TagReport
from repro.core.verifier import Verdict, Verifier
from repro.netmodel.packet import Header
from repro.netmodel.rules import DROP_PORT
from repro.netmodel.topology import PortRef
from repro.topologies import build_figure5


@pytest.fixture(scope="module")
def setup():
    scenario = build_figure5()
    hs = HeaderSpace()
    builder = PathTableBuilder(scenario.topo, hs)
    table = builder.build()
    return scenario, hs, builder, table


def good_report(scenario, table, hs, src="H1", dst="H3", dst_port=80):
    """A report exactly as a healthy data plane would send it."""
    inport = scenario.topo.host_port(src)
    outport = scenario.topo.host_port(dst)
    header = scenario.header_between(src, dst, dst_port=dst_port)
    for entry in table.lookup(inport, outport):
        if hs.contains(entry.headers, header.as_dict()):
            return TagReport(inport, outport, header, entry.tag), entry
    raise AssertionError("fixture produced no matching path")


class TestVerdicts:
    def test_pass_on_correct_report(self, setup):
        scenario, hs, builder, table = setup
        report, entry = good_report(scenario, table, hs)
        result = Verifier(table, hs).verify(report)
        assert result.verdict is Verdict.PASS
        assert result.passed
        assert result.matched_entry is entry

    def test_pass_on_middlebox_path(self, setup):
        scenario, hs, builder, table = setup
        report, _ = good_report(scenario, table, hs, dst_port=22)
        assert Verifier(table, hs).verify(report).passed

    def test_fail_on_wrong_tag(self, setup):
        scenario, hs, builder, table = setup
        report, entry = good_report(scenario, table, hs)
        bad = TagReport(report.inport, report.outport, report.header, entry.tag ^ 0x1)
        result = Verifier(table, hs).verify(bad)
        assert result.verdict is Verdict.FAIL_TAG_MISMATCH
        assert result.expected_tag == entry.tag

    def test_fail_unknown_pair(self, setup):
        scenario, hs, builder, table = setup
        report = TagReport(
            PortRef("S2", 1),  # internal port: never an index
            PortRef("S3", 2),
            Header(dst_port=80),
            0,
        )
        assert Verifier(table, hs).verify(report).verdict is Verdict.FAIL_UNKNOWN_PAIR

    def test_fail_no_path_for_header(self, setup):
        scenario, hs, builder, table = setup
        # H2's traffic to H3 is dropped at S3, so a *delivery* report for it
        # matches no path of the (S1:2, S3:2) pair.
        inport = scenario.topo.host_port("H2")
        outport = scenario.topo.host_port("H3")
        header = scenario.header_between("H2", "H3")
        result = Verifier(table, hs).verify(TagReport(inport, outport, header, 0))
        assert result.verdict in (Verdict.FAIL_NO_PATH, Verdict.FAIL_UNKNOWN_PAIR)
        assert not result.passed

    def test_drop_report_passes_when_configured(self, setup):
        """S3 is *supposed* to drop H2's traffic: the drop report verifies."""
        scenario, hs, builder, table = setup
        inport = scenario.topo.host_port("H2")
        outport = PortRef("S3", DROP_PORT)
        header = scenario.header_between("H2", "H3")
        entries = table.lookup(inport, outport)
        matching = [e for e in entries if hs.contains(e.headers, header.as_dict())]
        assert matching
        report = TagReport(inport, outport, header, matching[0].tag)
        assert Verifier(table, hs).verify(report).passed


class TestNoFalsePositives:
    def test_every_table_path_verifies(self, setup):
        """Zero false positives (Section 6.3): every configured path, when
        actually taken, passes verification."""
        scenario, hs, builder, table = setup
        verifier = Verifier(table, hs)
        for inport, outport, entry in table.all_entries():
            header = hs.sample_header(entry.headers)
            assert header is not None
            report = TagReport(inport, outport, Header(**header), entry.tag)
            assert verifier.verify(report).passed, f"{inport}->{outport} {entry}"


class TestCounters:
    def test_counters_accumulate(self, setup):
        scenario, hs, builder, table = setup
        verifier = Verifier(table, hs)
        report, entry = good_report(scenario, table, hs)
        verifier.verify(report)
        verifier.verify(
            TagReport(report.inport, report.outport, report.header, entry.tag ^ 1)
        )
        assert verifier.verified_count == 2
        assert verifier.failure_count == 1
        assert verifier.counters[Verdict.PASS] == 1

    def test_mean_time_positive_after_verifications(self, setup):
        scenario, hs, builder, table = setup
        verifier = Verifier(table, hs)
        report, _ = good_report(scenario, table, hs)
        for _ in range(5):
            verifier.verify(report)
        assert verifier.mean_verification_time_s() > 0

    def test_reset_counters(self, setup):
        scenario, hs, builder, table = setup
        verifier = Verifier(table, hs)
        report, _ = good_report(scenario, table, hs)
        verifier.verify(report)
        verifier.reset_counters()
        assert verifier.verified_count == 0
        assert verifier.mean_verification_time_s() == 0.0
