"""Tests for the vectorized batch verification kernel (``core.vector``).

Four layers are pinned to their scalar references:

* cube/descent entry evaluation against ``FlatBDD.evaluate_value`` on
  randomized predicates and headers (hypothesis),
* ``Verifier.verify_batch(vector=True)`` against the scalar batch path —
  verdicts, counts, failures, matched entries and counters,
* the wire-level :class:`WireBatchVerifier` against the shard worker's
  scalar ``_verify_wire`` (tampered, truncated and bad-version payloads
  included), plus frame/list API equivalence,
* the vectorized Bloom helpers against ``BloomTagScheme.may_contain``.

Plus the operational properties: per-pair kernel invalidation rides the
dirty-pair journal (delta resyncs recompile only touched pairs), and every
degraded mode — no numpy, tiny batches — falls back to the scalar loop
with the fallback counted.
"""

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")

from repro.analysis.timing import (
    check_vector_wire_parity,
    reports_from_table,
    wire_payloads_from_table,
)
from repro.bdd.headerspace import HeaderSpace
from repro.core import vector as vec
from repro.core.daemon import _verify_wire, build_shard_specs, wire_packing
from repro.core.incremental import IncrementalPathTable
from repro.core.pathtable import PathTableBuilder
from repro.core.reports import TagReport
from repro.core.verifier import Verdict, Verifier
from repro.netmodel.packet import Header
from repro.netmodel.topology import PortRef
from repro.topologies import build_figure5, build_linear

headers = st.builds(
    Header,
    src_ip=st.integers(min_value=0, max_value=(1 << 32) - 1),
    dst_ip=st.integers(min_value=0, max_value=(1 << 32) - 1),
    proto=st.integers(min_value=0, max_value=255),
    src_port=st.integers(min_value=0, max_value=65535),
    dst_port=st.integers(min_value=0, max_value=65535),
)


def predicate_from(hs, spec):
    """Build a BDD predicate from a hypothesis-drawn spec tree."""
    kind = spec[0]
    if kind == "prefix":
        _, field, base, length = spec
        return hs.prefix(field, base, length)
    if kind == "exact":
        _, field, value = spec
        return hs.exact(field, value)
    if kind == "range":
        _, field, lo, hi = spec
        return hs.range_(field, min(lo, hi), max(lo, hi))
    if kind == "not":
        return hs.bdd.not_(predicate_from(hs, spec[1]))
    op = hs.bdd.and_ if kind == "and" else hs.bdd.or_
    return op(predicate_from(hs, spec[1]), predicate_from(hs, spec[2]))


predicates = st.recursive(
    st.one_of(
        st.tuples(
            st.just("prefix"),
            st.sampled_from(["src_ip", "dst_ip"]),
            st.integers(min_value=0, max_value=(1 << 32) - 1),
            st.integers(min_value=0, max_value=32),
        ),
        st.tuples(
            st.just("exact"),
            st.just("proto"),
            st.integers(min_value=0, max_value=255),
        ),
        st.tuples(
            st.just("range"),
            st.sampled_from(["src_port", "dst_port"]),
            st.integers(min_value=0, max_value=65535),
            st.integers(min_value=0, max_value=65535),
        ),
    ),
    lambda children: st.one_of(
        st.tuples(st.just("not"), children),
        st.tuples(st.just("and"), children, children),
        st.tuples(st.just("or"), children, children),
    ),
    max_leaves=6,
)


def assemble_single(hs, flat, cube_cap):
    """One-entry assembly for ``flat`` (``cube_cap=0`` forces descent)."""
    kern = vec.compile_pair_kernel(
        [0], [flat], {0: (0,)}, True, hs.layout.total_bits, cube_cap=cube_cap
    )
    assert kern is not None
    return vec.KernelAssembly([kern], hs.layout.total_bits)


def marshal(hs, header_dicts):
    pack = vec.layout_pack_struct(hs.layout)
    names = hs.layout.field_names()
    parts = [pack.pack(*(d[name] for name in names)) for d in header_dicts]
    n = len(parts)
    hdr = np.frombuffer(b"".join(parts), dtype=np.uint8).reshape(n, -1)
    lane0, lane1 = vec.lanes_from_bytes(hdr)
    return hdr, lane0, lane1


class TestEntryEvaluation:
    @given(spec=predicates, batch=st.lists(headers, min_size=1, max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_cube_and_descent_tiers_match_scalar_evaluate(self, spec, batch):
        """Both evaluation tiers agree with ``FlatBDD.evaluate_value`` on
        random predicates and random header batches."""
        hs = HeaderSpace()
        flat = hs.bdd.compile_flat(predicate_from(hs, spec))
        dicts = [h.as_dict() for h in batch]
        expected = [flat.evaluate_value(hs.header_value(d)) for d in dicts]
        hdr, lane0, lane1 = marshal(hs, dicts)
        rows = np.arange(len(batch), dtype=np.int64)
        gidx = np.zeros(len(batch), dtype=np.int64)
        for cube_cap in (vec.CUBE_CAP, 0):  # cube tier, then forced descent
            assembly = assemble_single(hs, flat, cube_cap)
            got = assembly._eval_entries(rows, gidx, lane0, lane1, hdr)
            assert got.tolist() == expected

    def test_descent_forced_when_cap_zero(self):
        hs = HeaderSpace()
        flat = hs.bdd.compile_flat(hs.prefix("dst_ip", 0x0A000000, 8))
        assembly = assemble_single(hs, flat, 0)
        assert (assembly.ent_bucket == -1).all()  # no cube buckets
        assembly = assemble_single(hs, flat, vec.CUBE_CAP)
        assert (assembly.ent_bucket >= 0).all()


@pytest.fixture(scope="module")
def figure5():
    scenario = build_figure5()
    hs = HeaderSpace()
    builder = PathTableBuilder(scenario.topo, hs)
    table = builder.build()
    table.compile_matchers(hs)
    return scenario, hs, builder, table


def oracle_reports(builder, table, min_size=96):
    """A batch covering every verdict class, tiled past ``MIN_BATCH``."""
    base = reports_from_table(builder, table)
    assert base
    reports = list(base)
    for r in base:
        reports.append(TagReport(r.inport, r.outport, r.header, r.tag ^ 0x2A))
        reports.append(
            TagReport(PortRef("ghost", 1), r.outport, r.header, r.tag)
        )
    while len(reports) < min_size:
        reports += reports
    return reports


class TestVerifierOracle:
    def test_vector_batch_identical_to_scalar_batch(self, figure5):
        """The tentpole's oracle gate: ``verify_batch(vector=True)`` is
        verdict-for-verdict identical to the scalar batch path — including
        failures, matched entries and expected tags."""
        _, hs, builder, table = figure5
        reports = oracle_reports(builder, table)
        vector = Verifier(table, hs)
        scalar = Verifier(table, hs)
        vres = vector.verify_batch(reports, vector=True)
        sres = scalar.verify_batch(reports)
        assert vector.vector_batches == 1
        assert vector.vector_fallbacks == 0
        assert vres.verdicts == sres.verdicts
        assert vres.counts == sres.counts
        assert vector.counters == scalar.counters
        assert len(vres.failures) == len(sres.failures)
        for vf, sf in zip(vres.failures, sres.failures):
            assert vf.verdict is sf.verdict
            assert vf.report is sf.report
            assert vf.matched_entry is sf.matched_entry
            assert vf.expected_tag == sf.expected_tag

    def test_all_verdict_classes_exercised(self, figure5):
        _, hs, builder, table = figure5
        reports = oracle_reports(builder, table)
        result = Verifier(table, hs).verify_batch(reports, vector=True)
        seen = set(result.counts)
        assert Verdict.PASS in seen
        assert Verdict.FAIL_TAG_MISMATCH in seen
        assert Verdict.FAIL_UNKNOWN_PAIR in seen

    def test_small_batch_falls_back_to_scalar(self, figure5):
        _, hs, builder, table = figure5
        reports = reports_from_table(builder, table)[: vec.MIN_BATCH - 1]
        verifier = Verifier(table, hs)
        result = verifier.verify_batch(reports, vector=True)
        assert verifier.vector_fallbacks == 1
        assert verifier.vector_batches == 0
        assert result.verdicts == [Verdict.PASS] * len(reports)

    def test_no_numpy_falls_back_to_scalar(self, figure5, monkeypatch):
        _, hs, builder, table = figure5
        monkeypatch.setattr(vec, "HAVE_NUMPY", False)
        reports = oracle_reports(builder, table)
        verifier = Verifier(table, hs)
        result = verifier.verify_batch(reports, vector=True)
        assert verifier.vector_fallbacks == 1
        assert result.verdicts == Verifier(table, hs).verify_batch(reports).verdicts
        with pytest.raises(RuntimeError):
            vec.WireBatchVerifier({}, None)


class TestWireParity:
    def test_wire_kernel_matches_scalar_wire_path(self, figure5):
        """Default payload set: healthy + tampered + truncated + bad
        version, vector codes vs ``_verify_wire`` one by one."""
        _, hs, builder, table = figure5
        assert check_vector_wire_parity(builder, table) == []

    def test_frame_and_list_apis_agree(self, figure5):
        _, hs, builder, table = figure5
        payloads, codec = wire_payloads_from_table(builder, table, tamper=True)
        pairs = build_shard_specs(table, hs, codec, 1)[0]
        wirev = vec.WireBatchVerifier(pairs, wire_packing(hs.layout))
        list_codes = wirev.verify(list(payloads)).tolist()
        frame_codes = wirev.verify_frame(b"".join(payloads)).tolist()
        assert list_codes == frame_codes
        assert vec.VPASS in frame_codes and vec.VMISMATCH in frame_codes

    def test_frame_rejects_trailing_bytes(self, figure5):
        _, hs, builder, table = figure5
        payloads, codec = wire_payloads_from_table(builder, table, tamper=False)
        pairs = build_shard_specs(table, hs, codec, 1)[0]
        wirev = vec.WireBatchVerifier(pairs, wire_packing(hs.layout))
        with pytest.raises(ValueError):
            wirev.verify_frame(payloads[0] + b"\x00")
        assert wirev.verify_frame(b"").shape[0] == 0


class TestInvalidation:
    def test_delta_update_recompiles_only_touched_pairs(self):
        """The dirty-pair journal drives kernel invalidation: a rule churn
        recompiles exactly the pairs it dirtied, and the refreshed kernel
        stays verdict-identical to the scalar path."""
        scenario = build_linear(4)
        hs = HeaderSpace()
        inc = IncrementalPathTable(scenario.topo, hs)
        table = inc.table
        builder = PathTableBuilder(scenario.topo, hs, provider=inc.provider)
        assert table.vector_kernel(hs) is not None
        baseline = table.vector_kernel_compiles
        assert baseline == len(table.pairs())
        token, _ = table.dirty_since(None)

        inc.add_rule("S2", "10.99.0.0/16", 2)
        inc.delete_rule("S2", "10.99.0.0/16")
        _, dirty = table.dirty_since(token)
        assert dirty  # the churn touched some pairs...
        touched = {key for key in dirty if key in dict.fromkeys(table.pairs())}

        assert table.vector_kernel(hs) is not None
        delta = table.vector_kernel_compiles - baseline
        assert delta == len(touched)  # ...and only those recompiled
        assert delta < len(table.pairs())

        reports = oracle_reports(builder, table)
        vres = Verifier(table, hs).verify_batch(reports, vector=True)
        sres = Verifier(table, hs).verify_batch(reports)
        assert vres.verdicts == sres.verdicts


class TestBloomHelpers:
    @given(
        tags=st.lists(
            st.integers(min_value=0, max_value=(1 << 16) - 1),
            min_size=1,
            max_size=32,
        ),
        filters=st.lists(
            st.integers(min_value=0, max_value=(1 << 16) - 1),
            min_size=0,
            max_size=8,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_vectorized_membership_matches_scalar(self, tags, filters):
        for hf in filters:
            got = vec.bloom_member_batch(tags, hf).tolist()
            assert got == [(t & hf) == hf for t in tags]
        for tag in tags:
            miss = vec.bloom_first_miss(tag, filters)
            scalar = -1
            for i, hf in enumerate(filters):
                if (hf & tag) != hf:
                    scalar = i
                    break
            assert miss == scalar

    def test_localization_walk_vector_equals_scalar(self, monkeypatch):
        """``first_bloom_miss`` gives the same index with and without the
        vectorized sweep on real scheme-generated hop filters."""
        from repro.core import localization as loc
        from repro.core.bloom import BloomTagScheme
        from repro.netmodel.hops import Hop

        scheme = BloomTagScheme()
        hops = [Hop(1, f"S{i}", 2) for i in range(12)]
        tag = scheme.tag_of_path(hops[:7])  # hops 7.. untagged
        vector_miss = loc.first_bloom_miss(scheme, tag, hops)
        monkeypatch.setattr(loc, "_HAVE_NUMPY", False)
        scalar_miss = loc.first_bloom_miss(scheme, tag, hops)
        assert vector_miss == scalar_miss
        full = scheme.tag_of_path(hops)
        assert loc.first_bloom_miss(scheme, full, hops) == -1
