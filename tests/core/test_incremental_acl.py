"""Tests for incremental updates with inbound ACL rules.

Section 4.4 simplifies to pure prefix rules but notes "the incremental
update can also be performed with ACL rules".  These tests exercise that
claim: per-ingress deny entries added/removed incrementally, with the live
table asserted identical to a full rebuild after every operation, and with
interleaved prefix-rule churn.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.headerspace import HeaderSpace
from repro.core.incremental import IncrementalPathTable, LpmProvider
from repro.core.pathtable import PathTableBuilder
from repro.netmodel.rules import DROP_PORT, Match
from repro.netmodel.topology import PortRef
from repro.topologies import build_internet2, build_linear, lpm_ruleset_for


def table_signature(table):
    return {
        (inport, outport, entry.hops): entry.headers
        for inport, outport, entry in table.all_entries()
    }


def assert_matches_rebuild(inc):
    rebuilt = PathTableBuilder(
        inc.topo, inc.hs, provider=inc.provider,
        max_path_length=inc.builder.max_path_length,
    ).build()
    assert table_signature(inc.table) == table_signature(rebuilt)


def routed_linear():
    scenario = build_linear(3, install_routes=False)
    hs = HeaderSpace()
    inc = IncrementalPathTable(scenario.topo, hs)
    for switch, rules in sorted(
        lpm_ruleset_for(scenario.topo, scenario.subnets).items()
    ):
        for prefix, port in rules:
            inc.add_rule(switch, prefix, port)
    return scenario, hs, inc


class TestProviderAclState:
    def test_denied_set_accumulates(self):
        scenario = build_linear(3, install_routes=False)
        hs = HeaderSpace()
        provider = LpmProvider(scenario.topo, hs)
        a = Match.build(dst="10.0.2.0/24").to_bdd(hs)
        b = Match.build(dst_port=23).to_bdd(hs)
        provider.add_inbound_deny("S1", 1, a)
        provider.add_inbound_deny("S1", 1, b)
        denied = provider.inbound_denied("S1", 1)
        assert denied == hs.bdd.or_(a, b)

    def test_delta_is_only_new_headers(self):
        scenario = build_linear(3, install_routes=False)
        hs = HeaderSpace()
        provider = LpmProvider(scenario.topo, hs)
        broad = Match.build(dst="10.0.0.0/8").to_bdd(hs)
        narrow = Match.build(dst="10.0.2.0/24").to_bdd(hs)
        first = provider.add_inbound_deny("S1", 1, broad)
        assert first == broad
        second = provider.add_inbound_deny("S1", 1, narrow)
        assert second == hs.empty  # already covered by the /8

    def test_transfer_map_subtracts_denies(self):
        scenario, hs, inc = routed_linear()
        provider = inc.provider
        deny = Match.build(dst="10.0.2.0/24").to_bdd(hs)
        provider.add_inbound_deny("S1", 1, deny)
        tmap = provider.transfer_map("S1", 1)
        header = scenario.header_between("H1", "H3").as_dict()
        assert hs.contains(tmap[DROP_PORT], header)
        assert not any(
            hs.contains(pred, header)
            for port, pred in tmap.items()
            if port != DROP_PORT
        )
        # Other ingress ports are unaffected.
        tmap_other = provider.transfer_map("S1", 2)
        assert any(
            hs.contains(pred, header)
            for port, pred in tmap_other.items()
            if port != DROP_PORT
        )

    def test_remove_unknown_entry_raises(self):
        scenario = build_linear(3, install_routes=False)
        hs = HeaderSpace()
        provider = LpmProvider(scenario.topo, hs)
        with pytest.raises(KeyError):
            provider.remove_inbound_deny("S1", 1, hs.all_match)


class TestIncrementalAclEqualsRebuild:
    def test_add_deny_matches_rebuild(self):
        scenario, hs, inc = routed_linear()
        deny = Match.build(dst="10.0.2.0/24").to_bdd(hs)
        inc.add_inbound_deny("S1", 1, deny)
        assert_matches_rebuild(inc)

    def test_add_then_remove_restores(self):
        scenario, hs, inc = routed_linear()
        before = table_signature(inc.table)
        deny = Match.build(dst="10.0.2.0/24").to_bdd(hs)
        inc.add_inbound_deny("S1", 1, deny)
        inc.remove_inbound_deny("S1", 1, deny)
        assert table_signature(inc.table) == before
        assert_matches_rebuild(inc)

    def test_deny_on_transit_switch(self):
        """An ACL at a mid-path ingress cuts through flows from upstream."""
        scenario, hs, inc = routed_linear()
        deny = Match.build(dst_port=23).to_bdd(hs)
        inc.add_inbound_deny("S2", 3, deny)  # S2's ingress from S1
        assert_matches_rebuild(inc)
        # The drop path exists and carries the right hop.
        drop_entries = inc.table.lookup(
            scenario.topo.host_port("H1"), PortRef("S2", DROP_PORT)
        )
        telnet = scenario.header_between("H1", "H3", dst_port=23).as_dict()
        matching = [e for e in drop_entries if hs.contains(e.headers, telnet)]
        assert matching
        assert matching[0].hops[-1].is_drop()

    def test_interleaved_prefix_and_acl_churn(self):
        scenario, hs, inc = routed_linear()
        deny = Match.build(dst="10.0.2.0/25").to_bdd(hs)
        inc.add_inbound_deny("S2", 3, deny)
        assert_matches_rebuild(inc)
        # Prefix churn while the ACL is live: updates must respect it.
        inc.add_rule("S2", "10.0.2.128/25", 1)
        assert_matches_rebuild(inc)
        inc.delete_rule("S2", "10.0.2.128/25")
        assert_matches_rebuild(inc)
        inc.remove_inbound_deny("S2", 3, deny)
        assert_matches_rebuild(inc)

    def test_overlapping_denies(self):
        scenario, hs, inc = routed_linear()
        broad = Match.build(dst="10.0.0.0/8").to_bdd(hs)
        narrow = Match.build(dst="10.0.2.0/24").to_bdd(hs)
        inc.add_inbound_deny("S1", 1, narrow)
        assert_matches_rebuild(inc)
        inc.add_inbound_deny("S1", 1, broad)
        assert_matches_rebuild(inc)
        # Removing the narrow entry changes nothing (still covered).
        inc.remove_inbound_deny("S1", 1, narrow)
        assert_matches_rebuild(inc)
        inc.remove_inbound_deny("S1", 1, broad)
        assert_matches_rebuild(inc)

    def test_acl_on_internet2(self):
        scenario = build_internet2(prefixes_per_pop=1, install_routes=False)
        hs = HeaderSpace()
        inc = IncrementalPathTable(scenario.topo, hs)
        from repro.topologies import internet2_lpm_ruleset

        for switch, rules in sorted(internet2_lpm_ruleset(scenario).items()):
            for prefix, port in rules:
                inc.add_rule(switch, prefix, port)
        deny = Match.build(dst="10.0.0.0/30").to_bdd(hs)
        inc.add_inbound_deny("KANS", 1, deny)
        assert_matches_rebuild(inc)


class TestPropertyAclChurn:
    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_acl_and_prefix_sequences(self, data):
        scenario, hs, inc = routed_linear()
        live_denies = []
        deny_pool = [
            ("S1", 1, Match.build(dst="10.0.2.0/24").to_bdd(hs)),
            ("S2", 3, Match.build(dst_port=23).to_bdd(hs)),
            ("S2", 2, Match.build(dst="10.0.0.0/24").to_bdd(hs)),
            ("S3", 3, Match.build(src="10.0.0.0/24").to_bdd(hs)),
        ]
        n_ops = data.draw(st.integers(min_value=1, max_value=6))
        for _ in range(n_ops):
            if live_denies and data.draw(st.booleans()):
                entry = live_denies.pop(data.draw(
                    st.integers(0, len(live_denies) - 1)
                ))
                inc.remove_inbound_deny(*entry)
            else:
                entry = deny_pool[data.draw(st.integers(0, len(deny_pool) - 1))]
                if entry not in live_denies:
                    inc.add_inbound_deny(*entry)
                    live_denies.append(entry)
        assert_matches_rebuild(inc)
