"""Unit tests for the in-band VLAN/TOS encoding (Section 5 packet format)."""

import pytest

from repro.core.inband import (
    InbandState,
    TPID_INNER,
    TPID_OUTER,
    VLAN_STACK_BYTES,
    decode_vlan_stack,
    encode_vlan_stack,
    get_marker,
    set_marker,
)


class TestVlanStack:
    def test_round_trip(self):
        data = encode_vlan_stack(tag=0xBEEF, inport_id=0x1234)
        assert decode_vlan_stack(data) == (0xBEEF, 0x1234)

    def test_stack_is_eight_bytes(self):
        assert len(encode_vlan_stack(0, 0)) == VLAN_STACK_BYTES == 8

    def test_tpids_on_wire(self):
        data = encode_vlan_stack(0xAAAA, 0x0155)
        assert int.from_bytes(data[0:2], "big") == TPID_OUTER
        assert int.from_bytes(data[4:6], "big") == TPID_INNER

    def test_tag_occupies_outer_tci(self):
        data = encode_vlan_stack(0xCAFE, 0)
        assert int.from_bytes(data[2:4], "big") == 0xCAFE

    def test_tag_over_16_bits_rejected(self):
        with pytest.raises(ValueError):
            encode_vlan_stack(0x10000, 0)

    def test_inport_over_14_bits_rejected(self):
        with pytest.raises(ValueError):
            encode_vlan_stack(0, 1 << 14)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            decode_vlan_stack(b"\x00" * 7)

    def test_wrong_tpid_rejected(self):
        data = bytearray(encode_vlan_stack(1, 2))
        data[0] = 0x12
        with pytest.raises(ValueError):
            decode_vlan_stack(bytes(data))

    def test_max_values_round_trip(self):
        data = encode_vlan_stack(0xFFFF, (1 << 14) - 1)
        assert decode_vlan_stack(data) == (0xFFFF, (1 << 14) - 1)

    def test_round_trip_with_port_codec(self):
        """End-to-end: PortRef -> 14-bit id -> VLAN stack -> back."""
        from repro.core.reports import PortCodec
        from repro.netmodel.topology import PortRef

        codec = PortCodec(["S1", "S2"])
        ref = PortRef("S2", 7)
        data = encode_vlan_stack(0x00FF, codec.encode(ref))
        _, wire_id = decode_vlan_stack(data)
        assert codec.decode(wire_id) == ref


class TestMarker:
    def test_set_and_get(self):
        tos = set_marker(0x00, True)
        assert get_marker(tos)
        assert not get_marker(set_marker(tos, False))

    def test_preserves_other_tos_bits(self):
        dscp = 0b1011_1000  # EF
        assert set_marker(dscp, True) & 0b1111_1000 == dscp
        assert set_marker(dscp | 1, False) & 0b1111_1000 == dscp

    def test_range_checks(self):
        with pytest.raises(ValueError):
            set_marker(256, True)
        with pytest.raises(ValueError):
            get_marker(-1)


class TestInbandState:
    def test_validation(self):
        with pytest.raises(ValueError):
            InbandState(True, 1 << 16, 0)
        with pytest.raises(ValueError):
            InbandState(True, 0, 1 << 14)

    def test_frozen(self):
        state = InbandState(True, 1, 2)
        with pytest.raises(AttributeError):
            state.tag = 5
