"""Unit tests for path-table construction (Algorithm 2)."""

import pytest

from repro.bdd.headerspace import HeaderSpace
from repro.core.pathtable import PathEntry, PathTable, PathTableBuilder
from repro.netmodel.hops import Hop
from repro.netmodel.packet import Header
from repro.netmodel.rules import DROP_PORT
from repro.netmodel.topology import PortRef
from repro.topologies import build_figure5, build_linear, build_ring


@pytest.fixture(scope="module")
def figure5():
    scenario = build_figure5()
    hs = HeaderSpace()
    builder = PathTableBuilder(scenario.topo, hs)
    table = builder.build()
    return scenario, hs, builder, table


class TestPathTableStructure:
    def test_lookup_unknown_pair_is_empty(self):
        table = PathTable()
        assert table.lookup(PortRef("S1", 1), PortRef("S2", 1)) == ()

    def test_add_and_lookup(self):
        table = PathTable()
        entry = PathEntry(headers=1, hops=(Hop(1, "S", 2),), tag=3)
        table.add(PortRef("S", 1), PortRef("S", 2), entry)
        assert table.lookup(PortRef("S", 1), PortRef("S", 2)) == (entry,)
        assert table.num_paths() == 1
        assert len(table) == 1

    def test_lookup_result_is_immutable_snapshot(self):
        """Regression: lookup used to hand out the table's internal list —
        callers could corrupt the index by mutating it."""
        table = PathTable()
        entry = PathEntry(headers=1, hops=(Hop(1, "S", 2),), tag=3)
        table.add(PortRef("S", 1), PortRef("S", 2), entry)
        snapshot = table.lookup(PortRef("S", 1), PortRef("S", 2))
        with pytest.raises(AttributeError):
            snapshot.append(entry)  # tuples have no append
        assert table.num_paths() == 1
        # A later add is not visible through the earlier snapshot either.
        table.add(PortRef("S", 1), PortRef("S", 2), entry)
        assert len(snapshot) == 1
        assert len(table.lookup(PortRef("S", 1), PortRef("S", 2))) == 2

    def test_stats_empty_table(self):
        stats = PathTable().stats()
        assert stats.num_pairs == 0
        assert stats.num_paths == 0
        assert stats.avg_path_length == 0.0

    def test_paths_per_pair(self):
        table = PathTable()
        e = PathEntry(headers=1, hops=(Hop(1, "S", 2),), tag=0)
        table.add(PortRef("S", 1), PortRef("S", 2), e)
        table.add(PortRef("S", 1), PortRef("S", 2), e)
        table.add(PortRef("S", 2), PortRef("S", 1), e)
        assert sorted(table.paths_per_pair()) == [1, 2]

    def test_remove_empty(self):
        hs = HeaderSpace()
        table = PathTable()
        table.add(
            PortRef("S", 1),
            PortRef("S", 2),
            PathEntry(headers=hs.empty, hops=(Hop(1, "S", 2),), tag=0),
        )
        table.add(
            PortRef("S", 1),
            PortRef("S", 3),
            PathEntry(headers=hs.all_match, hops=(Hop(1, "S", 3),), tag=0),
        )
        assert table.remove_empty(hs) == 1
        assert len(table) == 1


class TestFigure5Table:
    """The paper's Table 1, entry by entry."""

    def test_ssh_path_via_middlebox(self, figure5):
        scenario, hs, builder, table = figure5
        entries = table.lookup(PortRef("S1", 1), PortRef("S3", 2))
        ssh = [
            e
            for e in entries
            if hs.contains(
                e.headers,
                scenario.header_between("H1", "H3", dst_port=22).as_dict(),
            )
        ]
        assert len(ssh) == 1
        assert ssh[0].hops == (
            Hop(1, "S1", 3),
            Hop(1, "S2", 3),
            Hop(3, "S2", 2),
            Hop(1, "S3", 2),
        )

    def test_non_ssh_path_direct(self, figure5):
        scenario, hs, builder, table = figure5
        entries = table.lookup(PortRef("S1", 1), PortRef("S3", 2))
        http = [
            e
            for e in entries
            if hs.contains(
                e.headers,
                scenario.header_between("H1", "H3", dst_port=80).as_dict(),
            )
        ]
        assert len(http) == 1
        assert http[0].hops == (Hop(1, "S1", 4), Hop(3, "S3", 2))

    def test_h2_traffic_has_drop_path(self, figure5):
        scenario, hs, builder, table = figure5
        entries = table.lookup(PortRef("S1", 2), PortRef("S3", DROP_PORT))
        header = scenario.header_between("H2", "H3", dst_port=80).as_dict()
        assert any(hs.contains(e.headers, header) for e in entries)

    def test_two_paths_for_h1_to_h3_pair(self, figure5):
        _, _, _, table = figure5
        assert len(table.lookup(PortRef("S1", 1), PortRef("S3", 2))) == 2

    def test_tags_differ_between_paths(self, figure5):
        _, _, _, table = figure5
        entries = table.lookup(PortRef("S1", 1), PortRef("S3", 2))
        assert entries[0].tag != entries[1].tag

    def test_header_sets_disjoint_within_pair(self, figure5):
        _, hs, _, table = figure5
        for pair in table.pairs():
            entries = table.lookup(*pair)
            for i, a in enumerate(entries):
                for b in entries[i + 1 :]:
                    assert hs.bdd.and_(a.headers, b.headers) == hs.empty

    def test_tags_match_hop_recomputation(self, figure5):
        _, _, builder, table = figure5
        for _, _, entry in table.all_entries():
            assert entry.tag == builder.scheme.tag_of_path(entry.hops)

    def test_no_empty_header_sets(self, figure5):
        _, hs, _, table = figure5
        for _, _, entry in table.all_entries():
            assert entry.headers != hs.empty


class TestBuilderOnLinear:
    def test_every_host_pair_has_a_path(self):
        scenario = build_linear(4)
        hs = HeaderSpace()
        table = PathTableBuilder(scenario.topo, hs).build()
        topo = scenario.topo
        for src, dst in scenario.host_pairs():
            inport = topo.host_port(src)
            outport = topo.host_port(dst)
            header = scenario.header_between(src, dst).as_dict()
            entries = table.lookup(inport, outport)
            assert any(hs.contains(e.headers, header) for e in entries), (
                f"no path for {src}->{dst}"
            )

    def test_entry_ports_are_edge_ports(self):
        scenario = build_linear(3)
        builder = PathTableBuilder(scenario.topo, HeaderSpace())
        for port in builder.entry_ports():
            assert scenario.topo.is_edge_port(port)

    def test_custom_entry_ports(self):
        scenario = build_linear(3)
        hs = HeaderSpace()
        one_port = [scenario.topo.host_port("H1")]
        table = PathTableBuilder(scenario.topo, hs, entry_ports=one_port).build()
        assert all(pair[0] == one_port[0] for pair in table.pairs())

    def test_build_time_recorded(self):
        scenario = build_linear(3)
        table = PathTableBuilder(scenario.topo, HeaderSpace()).build()
        assert table.build_time_s > 0


class TestLoopCut:
    def test_ring_with_looping_rules_terminates(self):
        """Install rules that loop all traffic around the ring; the builder
        must cut the loop (Section 6.1's rule) and record no infinite path."""
        from repro.netmodel.rules import FlowRule, Forward, Match

        scenario = build_ring(4, install_routes=False)
        for sid in scenario.topo.switches:
            scenario.controller.install(sid, FlowRule(10, Match(), Forward(2)))
        table = PathTableBuilder(scenario.topo, HeaderSpace()).build()
        max_len = scenario.topo.diameter_bound()
        for _, _, entry in table.all_entries():
            assert entry.path_length() <= max_len


class TestExpectedPath:
    def test_expected_path_matches_table(self, figure5):
        scenario, hs, builder, table = figure5
        header = scenario.header_between("H1", "H3", dst_port=22).as_dict()
        hops = builder.expected_path(PortRef("S1", 1), header)
        assert hops == [
            Hop(1, "S1", 3),
            Hop(1, "S2", 3),
            Hop(3, "S2", 2),
            Hop(1, "S3", 2),
        ]

    def test_expected_path_of_dropped_traffic_ends_at_drop(self, figure5):
        scenario, hs, builder, table = figure5
        header = scenario.header_between("H2", "H3").as_dict()
        hops = builder.expected_path(PortRef("S1", 2), header)
        assert hops[-1].out_port == DROP_PORT

    def test_reach_records_only_when_enabled(self, figure5):
        scenario, hs, builder, table = figure5
        assert builder.reach_index == {}
        recording = PathTableBuilder(scenario.topo, hs, record_reach=True)
        recording.build()
        assert set(recording.reach_index) == {"S1", "S2", "S3"}
