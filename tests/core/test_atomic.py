"""Tests for atomic predicates and the atomic path-table builder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.atomic import AtomicUniverse, compute_atoms
from repro.bdd.engine import BDD, FALSE, TRUE
from repro.bdd.headerspace import HeaderSpace
from repro.core.atomic_builder import AtomicPathTableBuilder
from repro.core.pathtable import PathTableBuilder
from repro.topologies import build_fattree, build_figure5, build_internet2, build_linear


class TestComputeAtoms:
    def test_no_predicates_single_atom(self):
        bdd = BDD(4)
        assert compute_atoms(bdd, []) == [TRUE]

    def test_one_predicate_two_atoms(self):
        bdd = BDD(4)
        x = bdd.var(0)
        atoms = compute_atoms(bdd, [x])
        assert set(atoms) == {x, bdd.not_(x)}

    def test_trivial_predicates_skipped(self):
        bdd = BDD(4)
        assert compute_atoms(bdd, [TRUE, FALSE]) == [TRUE]

    def test_nested_prefixes_linear_atoms(self):
        hs = HeaderSpace()
        preds = [
            hs.prefix("dst_ip", 0x0A000000, 8),
            hs.prefix("dst_ip", 0x0A010000, 16),
            hs.prefix("dst_ip", 0x0A010100, 24),
        ]
        atoms = compute_atoms(hs.bdd, preds)
        # nested chains refine linearly: n+1 atoms, not 2^n
        assert len(atoms) == 4

    def test_partition_property(self):
        bdd = BDD(6)
        preds = [bdd.var(0), bdd.and_(bdd.var(1), bdd.var(2)), bdd.xor(bdd.var(3), bdd.var(0))]
        universe = AtomicUniverse(bdd, preds)
        assert universe.is_partition()


class TestAtomicUniverse:
    @pytest.fixture
    def universe(self):
        bdd = BDD(6)
        generators = [bdd.var(0), bdd.and_(bdd.var(1), bdd.var(2))]
        return bdd, generators, AtomicUniverse(bdd, generators)

    def test_generators_round_trip(self, universe):
        bdd, generators, uni = universe
        for g in generators:
            assert uni.to_bdd(uni.from_bdd(g)) == g

    def test_boolean_combinations_round_trip(self, universe):
        bdd, generators, uni = universe
        combos = [
            bdd.and_(generators[0], generators[1]),
            bdd.or_(generators[0], bdd.not_(generators[1])),
            bdd.diff(generators[1], generators[0]),
        ]
        for combo in combos:
            assert uni.to_bdd(uni.from_bdd(combo)) == combo

    def test_set_ops_mirror_bdd_ops(self, universe):
        bdd, generators, uni = universe
        a, b = generators
        assert uni.from_bdd(bdd.and_(a, b)) == uni.from_bdd(a) & uni.from_bdd(b)
        assert uni.from_bdd(bdd.or_(a, b)) == uni.from_bdd(a) | uni.from_bdd(b)
        assert uni.from_bdd(bdd.diff(a, b)) == uni.from_bdd(a) - uni.from_bdd(b)

    def test_terminal_conversions(self, universe):
        _, _, uni = universe
        assert uni.from_bdd(FALSE) == frozenset()
        assert uni.from_bdd(TRUE) == uni.all_atoms
        assert uni.to_bdd(frozenset()) == FALSE
        assert uni.to_bdd(uni.all_atoms) == TRUE

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_random_combinations(self, data):
        bdd = BDD(5)
        generators = [bdd.var(i) for i in range(3)]
        uni = AtomicUniverse(bdd, generators)
        # A random Boolean combination of the generators.
        expr = generators[data.draw(st.integers(0, 2))]
        for _ in range(data.draw(st.integers(0, 4))):
            op = data.draw(st.sampled_from(["and", "or", "diff", "not"]))
            other = generators[data.draw(st.integers(0, 2))]
            if op == "and":
                expr = bdd.and_(expr, other)
            elif op == "or":
                expr = bdd.or_(expr, other)
            elif op == "diff":
                expr = bdd.diff(expr, other)
            else:
                expr = bdd.not_(expr)
        assert uni.to_bdd(uni.from_bdd(expr)) == expr


def table_signature(table):
    return {
        (inport, outport, entry.hops): entry.headers
        for inport, outport, entry in table.all_entries()
    }


class TestAtomicBuilderEquivalence:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: build_linear(3),
            lambda: build_figure5(),
            lambda: build_internet2(prefixes_per_pop=1),
            lambda: build_fattree(4),
        ],
        ids=["linear", "figure5", "internet2", "fattree4"],
    )
    def test_identical_to_direct_builder(self, factory):
        scenario = factory()
        hs = HeaderSpace()
        direct = PathTableBuilder(scenario.topo, hs).build()
        atomic = AtomicPathTableBuilder(scenario.topo, hs).build()
        assert table_signature(atomic) == table_signature(direct)

    def test_tags_preserved(self):
        scenario = build_linear(3)
        hs = HeaderSpace()
        atomic = AtomicPathTableBuilder(scenario.topo, hs).build()
        direct = PathTableBuilder(scenario.topo, hs).build()
        atomic_tags = {
            (i, o, e.hops): e.tag for i, o, e in atomic.all_entries()
        }
        direct_tags = {
            (i, o, e.hops): e.tag for i, o, e in direct.all_entries()
        }
        assert atomic_tags == direct_tags

    def test_atomization_time_reported(self):
        scenario = build_linear(3)
        builder = AtomicPathTableBuilder(scenario.topo, HeaderSpace())
        builder.build()
        assert builder.atomization_time_s > 0
        assert builder.universe is not None
        assert len(builder.universe) > 1

    def test_rejects_rewrites(self):
        from repro.bdd.headerspace import parse_ipv4
        from repro.netmodel.rules import FlowRule, Match, Rewrite

        scenario = build_linear(3)
        scenario.controller.install(
            "S2",
            FlowRule(300, Match.build(dst="9.9.9.9/32"),
                     Rewrite((("dst_ip", parse_ipv4("10.0.2.1")),), 2)),
        )
        builder = AtomicPathTableBuilder(scenario.topo, HeaderSpace())
        with pytest.raises(ValueError):
            builder.build()

    def test_verifier_works_on_atomic_table(self):
        from repro.core.verifier import Verifier
        from repro.analysis.timing import reports_from_table

        scenario = build_fattree(4)
        hs = HeaderSpace()
        base = PathTableBuilder(scenario.topo, hs)
        atomic = AtomicPathTableBuilder(scenario.topo, hs).build()
        verifier = Verifier(atomic, hs)
        for report in reports_from_table(base, atomic, limit=50):
            assert verifier.verify(report).passed
