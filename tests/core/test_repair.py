"""Tests for the automatic repair engine (the paper's future work #2)."""

import pytest

from repro.core.repair import RepairEngine, RepairOutcome
from repro.core.server import VeriDPServer
from repro.dataplane import (
    DataPlaneNetwork,
    DeleteRule,
    IgnorePriorities,
    InjectRule,
    KillSwitch,
    ModifyRuleOutput,
)
from repro.netmodel.rules import DROP_PORT, FlowRule, Forward, Match
from repro.topologies import build_linear


@pytest.fixture
def rig():
    scenario = build_linear(3)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )
    engine = RepairEngine(scenario.controller, server, probe=net.inject)
    return scenario, server, net, engine


def provoke(scenario, server, net):
    """Send the H1->H3 flow and return the first incident (must exist)."""
    server.drain_incidents()
    net.inject_from_host("H1", scenario.header_between("H1", "H3"))
    incidents = server.drain_incidents()
    assert incidents, "expected the fault to be detected"
    return incidents[0]


def victim_rule(scenario, net, switch="S2"):
    header = scenario.header_between("H1", "H3")
    return net.switch(switch).table.lookup(header, 3)


class TestReissuePath:
    def test_deleted_rule_repaired(self, rig):
        scenario, server, net, engine = rig
        rule = victim_rule(scenario, net)
        DeleteRule("S2", rule.rule_id).apply(net)
        incident = provoke(scenario, server, net)

        result = engine.repair(incident)
        assert result.outcome is RepairOutcome.FIXED_BY_REISSUE
        assert result.fixed
        assert any(a.kind == "reissue" and a.switch_id == "S2" for a in result.actions)
        # The flow really works again.
        final = net.inject_from_host("H1", scenario.header_between("H1", "H3"))
        assert final.status == "delivered"
        assert server.drain_incidents() == []

    def test_rewired_rule_repaired(self, rig):
        scenario, server, net, engine = rig
        rule = victim_rule(scenario, net)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        incident = provoke(scenario, server, net)
        result = engine.repair(incident)
        assert result.fixed
        assert net.switch("S2").table.get(rule.rule_id).action == rule.action

    def test_blackholed_rule_repaired(self, rig):
        scenario, server, net, engine = rig
        rule = victim_rule(scenario, net)
        ModifyRuleOutput("S2", rule.rule_id, DROP_PORT).apply(net)
        incident = provoke(scenario, server, net)
        assert engine.repair(incident).fixed


class TestResyncPath:
    def test_foreign_rule_needs_resync(self, rig):
        """A foreign high-priority rule shadows the legitimate one; only a
        flush-and-resync removes it."""
        scenario, server, net, engine = rig
        foreign = FlowRule(9999, Match.build(dst="10.0.2.0/24"), Forward(1))
        InjectRule("S2", foreign).apply(net)
        incident = provoke(scenario, server, net)

        result = engine.repair(incident)
        assert result.outcome is RepairOutcome.FIXED_BY_RESYNC
        assert foreign.rule_id not in net.switch("S2").table
        final = net.inject_from_host("H1", scenario.header_between("H1", "H3"))
        assert final.status == "delivered"
        assert server.drain_incidents() == []

    def test_resync_restores_full_table(self, rig):
        scenario, server, net, engine = rig
        logical = len(scenario.topo.switch("S2").flow_table)
        InjectRule("S2", FlowRule(9999, Match.build(dst="10.0.2.0/24"), Forward(1))).apply(net)
        incident = provoke(scenario, server, net)
        engine.repair(incident)
        assert len(net.switch("S2").table) == logical


class TestUnrepairable:
    def test_dead_switch_unrepairable(self, rig):
        scenario, server, net, engine = rig
        # Fault first (so an incident exists), then the switch dies.
        rule = victim_rule(scenario, net)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        incident = provoke(scenario, server, net)
        KillSwitch("S2").apply(net)

        result = engine.repair(incident)
        assert result.outcome is RepairOutcome.UNREPAIRABLE
        assert not result.fixed

    def test_priority_ignoring_switch_unrepairable(self, rig):
        """Broken lookup logic is not a table-content problem: reissue and
        resync push the same rules into the same broken pipeline."""
        scenario, server, net, engine = rig
        scenario.controller.install(
            "S2", FlowRule(1, Match.build(dst="10.0.0.0/8"), Forward(3))
        )
        IgnorePriorities("S2").apply(net)
        incident = provoke(scenario, server, net)
        result = engine.repair(incident)
        assert result.outcome is RepairOutcome.UNREPAIRABLE

    def test_transient_incident_nothing_to_do(self, rig):
        """If the flow verifies again by the time repair runs (e.g. the
        operator already fixed it), the engine touches nothing."""
        scenario, server, net, engine = rig
        rule = victim_rule(scenario, net)
        original = net.switch("S2").table.get(rule.rule_id)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        incident = provoke(scenario, server, net)
        net.switch("S2").install(original)  # externally healed
        result = engine.repair(incident)
        assert result.outcome is RepairOutcome.NOTHING_TO_DO
        assert result.actions == []


class TestAuditTrail:
    def test_result_str_lists_actions(self, rig):
        scenario, server, net, engine = rig
        rule = victim_rule(scenario, net)
        DeleteRule("S2", rule.rule_id).apply(net)
        incident = provoke(scenario, server, net)
        result = engine.repair(incident)
        text = str(result)
        assert "reissue" in text and "S2" in text

    def test_probe_counter(self, rig):
        scenario, server, net, engine = rig
        rule = victim_rule(scenario, net)
        DeleteRule("S2", rule.rule_id).apply(net)
        incident = provoke(scenario, server, net)
        result = engine.repair(incident)
        assert result.probes_sent >= 2  # pre-check + post-reissue check
