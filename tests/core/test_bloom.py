"""Unit tests for Murmur3 and the tag schemes."""

import pytest

from repro.core.bloom import BloomTagScheme, XorTagScheme, murmur3_32
from repro.netmodel.hops import Hop


class TestMurmur3:
    """Published MurmurHash3 x86/32 test vectors."""

    @pytest.mark.parametrize(
        "data,seed,expected",
        [
            (b"", 0, 0x00000000),
            (b"", 1, 0x514E28B7),
            (b"", 0xFFFFFFFF, 0x81F16F39),
            (b"\x00\x00\x00\x00", 0, 0x2362F9DE),
            (b"a", 0, 0x3C2569B2),
            (b"abc", 0, 0xB3DD93FA),
            (b"Hello, world!", 0x9747B28C, 0x24884CBA),
            (b"The quick brown fox jumps over the lazy dog", 0x9747B28C, 0x2FA826CD),
        ],
    )
    def test_vectors(self, data, seed, expected):
        assert murmur3_32(data, seed) == expected

    def test_deterministic(self):
        assert murmur3_32(b"veridp") == murmur3_32(b"veridp")

    def test_output_is_32_bit(self):
        for data in [b"", b"x", b"xy", b"xyz", b"wxyz", b"vwxyz"]:
            assert 0 <= murmur3_32(data) < (1 << 32)


@pytest.fixture
def scheme():
    return BloomTagScheme(bits=16, hashes=3)


HOP_A = Hop(1, "S1", 3)
HOP_B = Hop(1, "S2", 3)
HOP_C = Hop(3, "S2", 2)


class TestBloomTagScheme:
    def test_empty_tag_is_zero(self, scheme):
        assert scheme.empty_tag == 0

    def test_hop_filter_within_width(self, scheme):
        assert 0 < scheme.hop_filter(HOP_A) <= scheme.tag_mask

    def test_hop_filter_at_most_k_bits(self, scheme):
        assert bin(scheme.hop_filter(HOP_A)).count("1") <= 3

    def test_add_is_or(self, scheme):
        tag = scheme.add(scheme.empty_tag, HOP_A)
        assert tag == scheme.hop_filter(HOP_A)
        tag2 = scheme.add(tag, HOP_B)
        assert tag2 == scheme.hop_filter(HOP_A) | scheme.hop_filter(HOP_B)

    def test_add_idempotent(self, scheme):
        tag = scheme.add(scheme.empty_tag, HOP_A)
        assert scheme.add(tag, HOP_A) == tag

    def test_tag_of_path_order_independent(self, scheme):
        hops = [HOP_A, HOP_B, HOP_C]
        assert scheme.tag_of_path(hops) == scheme.tag_of_path(list(reversed(hops)))

    def test_may_contain_no_false_negatives(self, scheme):
        tag = scheme.tag_of_path([HOP_A, HOP_B, HOP_C])
        for hop in (HOP_A, HOP_B, HOP_C):
            assert scheme.may_contain(tag, hop)

    def test_may_contain_rejects_on_empty_tag(self, scheme):
        assert not scheme.may_contain(scheme.empty_tag, HOP_A)

    def test_distinct_hops_usually_differ(self, scheme):
        filters = {scheme.hop_filter(Hop(i, f"S{i}", i + 1)) for i in range(1, 30)}
        # With 16 bits / 3 hashes, near-all of 29 random hops are distinct.
        assert len(filters) > 25

    def test_different_widths_give_different_filters(self):
        narrow = BloomTagScheme(bits=8)
        wide = BloomTagScheme(bits=64)
        assert narrow.hop_filter(HOP_A) <= 0xFF
        assert wide.hop_filter(HOP_A) != narrow.hop_filter(HOP_A)

    def test_saturation(self, scheme):
        assert scheme.saturation(0) == 0.0
        assert scheme.saturation(scheme.tag_mask) == 1.0

    def test_false_positive_probability_monotone_in_path_length(self, scheme):
        probs = [scheme.false_positive_probability(n) for n in range(0, 10)]
        assert probs[0] == 0.0
        assert all(a <= b for a, b in zip(probs, probs[1:]))

    def test_fp_probability_decreases_with_width(self):
        narrow = BloomTagScheme(bits=8)
        wide = BloomTagScheme(bits=64)
        assert wide.false_positive_probability(5) < narrow.false_positive_probability(5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BloomTagScheme(bits=0)
        with pytest.raises(ValueError):
            BloomTagScheme(bits=16, hashes=0)

    def test_hop_key_bytes_injective_on_tricky_cases(self):
        # Switch names that would collide under naive concatenation.
        a = Hop(1, "S12", 3)
        b = Hop(1, "S1", 23)  # "1"+"S12"+"3" vs "1"+"S1"+"23" ambiguity
        assert a.key_bytes() != b.key_bytes()


class TestXorTagScheme:
    def test_add_is_xor(self):
        scheme = XorTagScheme(bits=16)
        tag = scheme.add(0, HOP_A)
        assert scheme.add(tag, HOP_A) == 0  # XOR cancels

    def test_tag_of_path_matches_adds(self):
        scheme = XorTagScheme(bits=16)
        tag = 0
        for hop in (HOP_A, HOP_B, HOP_C):
            tag = scheme.add(tag, hop)
        assert tag == scheme.tag_of_path([HOP_A, HOP_B, HOP_C])

    def test_hop_value_never_zero(self):
        scheme = XorTagScheme(bits=16)
        for i in range(1, 50):
            assert scheme.hop_value(Hop(i, f"S{i}", i + 1)) != 0

    def test_no_membership_api(self):
        scheme = XorTagScheme()
        assert not hasattr(scheme, "may_contain")

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            XorTagScheme(bits=0)
