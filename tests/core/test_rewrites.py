"""Tests for the header-rewrite extension (the paper's future work #1).

The paper's VeriDP "cannot handle packet rewrites"; its conclusion names
"incorporating header rewrites into the current VeriDP framework" as future
work.  This reproduction implements it: ``Rewrite`` actions on rules,
symbolic image/preimage of header sets through rewrite chains in the path
table, and verification of exit headers against the transformed sets.
"""

import pytest

from repro.bdd.headerspace import HeaderSpace, parse_ipv4
from repro.core.pathtable import PathTableBuilder
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork, DropRuleInstall
from repro.netmodel.packet import Header
from repro.netmodel.predicates import SwitchPredicates
from repro.netmodel.rules import DROP_PORT, FlowRule, Forward, Match, Rewrite
from repro.netmodel.topology import PortRef, Topology
from repro.topologies import build_linear

VIP = "198.51.100.1"
H3_IP = "10.0.2.1"


@pytest.fixture
def nat_scenario():
    """Linear H1-S1-S2-S3-H3 plus a VIP: S2 NATs 198.51.100.1 -> H3."""
    scenario = build_linear(3)
    ctrl = scenario.controller
    # S1 routes VIP traffic towards S2 (port 2); S2 rewrites and forwards on.
    ctrl.install("S1", FlowRule(300, Match.build(dst=f"{VIP}/32"), Forward(2)))
    ctrl.install(
        "S2",
        FlowRule(
            300,
            Match.build(dst=f"{VIP}/32"),
            Rewrite((("dst_ip", parse_ipv4(H3_IP)),), 2),
        ),
    )
    return scenario


class TestRewriteAction:
    def test_effective_sets_last_write_wins(self):
        rw = Rewrite((("dst_ip", 1), ("dst_ip", 2), ("proto", 6)), 3)
        assert rw.effective_sets() == (("dst_ip", 2), ("proto", 6))

    def test_requires_sets(self):
        with pytest.raises(ValueError):
            Rewrite((), 1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Rewrite((("dst_ip", -1),), 1)
        with pytest.raises(ValueError):
            Rewrite((("dst_ip", 1),), -1)

    def test_rule_helpers(self):
        rule = FlowRule(10, Match(), Rewrite((("proto", 17),), 4))
        assert rule.output_port() == 4
        assert rule.rewrite_sets() == (("proto", 17),)
        assert "set[proto=17]" in rule.describe()


class TestHeaderSpaceTransforms:
    def test_set_field_image(self):
        hs = HeaderSpace()
        src = hs.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8)
        image = hs.set_field(src, "dst_ip", parse_ipv4("192.0.2.7"))
        assert hs.contains(
            image,
            {"src_ip": 0, "dst_ip": parse_ipv4("192.0.2.7"), "proto": 6,
             "src_port": 1, "dst_port": 2},
        )
        # Everything in the image has the pinned value.
        assert hs.bdd.implies(image, hs.exact("dst_ip", parse_ipv4("192.0.2.7")))

    def test_set_field_preserves_other_fields(self):
        hs = HeaderSpace()
        src = hs.exact("dst_port", 443)
        image = hs.set_field(src, "dst_ip", 9)
        assert hs.bdd.implies(image, hs.exact("dst_port", 443))

    def test_preimage_inverts_image_membership(self):
        hs = HeaderSpace()
        ops = [("dst_ip", 7), ("proto", 17)]
        constraint = hs.bdd.and_(hs.exact("dst_ip", 7), hs.exact("dst_port", 53))
        pre = hs.preimage_sets(constraint, ops)
        header = {"src_ip": 5, "dst_ip": 123, "proto": 6, "src_port": 1, "dst_port": 53}
        rewritten = hs.rewrite_header(header, ops)
        assert hs.contains(pre, header) == hs.contains(constraint, rewritten)

    def test_preimage_of_unsatisfiable_constraint(self):
        hs = HeaderSpace()
        # After dst_ip := 7, no packet can have dst_ip == 9.
        pre = hs.preimage_sets(hs.exact("dst_ip", 9), [("dst_ip", 7)])
        assert pre == hs.empty

    def test_preimage_frees_overwritten_field(self):
        hs = HeaderSpace()
        pre = hs.preimage_sets(hs.exact("dst_ip", 7), [("dst_ip", 7)])
        assert pre == hs.all_match  # any entry dst_ip works

    def test_rewrite_header_concrete(self):
        hs = HeaderSpace()
        out = hs.rewrite_header({"dst_ip": 1, "proto": 6}, [("dst_ip", 9)])
        assert out == {"dst_ip": 9, "proto": 6}


class TestTransferActionsWithRewrites:
    def test_rewrite_slice_carries_ops(self):
        topo = Topology()
        info = topo.add_switch("S", num_ports=4)
        info.flow_table.add(
            FlowRule(10, Match.build(dst="10.0.0.0/8"), Rewrite((("proto", 17),), 2))
        )
        hs = HeaderSpace()
        actions = SwitchPredicates(info, hs).transfer_actions(1)
        rewrite_slices = [a for a in actions if a.rewrites]
        assert len(rewrite_slices) == 1
        assert rewrite_slices[0].out_port == 2
        assert rewrite_slices[0].rewrites == (("proto", 17),)

    def test_actions_partition_space(self):
        topo = Topology()
        info = topo.add_switch("S", num_ports=4)
        info.flow_table.add(
            FlowRule(20, Match.build(dst="10.0.0.0/8", dst_port=80),
                     Rewrite((("dst_port", 8080),), 2))
        )
        info.flow_table.add(FlowRule(10, Match.build(dst="10.0.0.0/8"), Forward(3)))
        hs = HeaderSpace()
        actions = SwitchPredicates(info, hs).transfer_actions(1)
        union = hs.bdd.or_many(a.pred for a in actions)
        assert union == hs.all_match
        for i, a in enumerate(actions):
            for b in actions[i + 1 :]:
                assert hs.bdd.and_(a.pred, b.pred) == hs.empty

    def test_outbound_acl_pulled_back_through_rewrite(self):
        """An egress ACL filters the *rewritten* packet."""
        from repro.netmodel.rules import Acl, AclEntry

        topo = Topology()
        info = topo.add_switch("S", num_ports=4)
        info.flow_table.add(
            FlowRule(10, Match.build(dst="10.0.0.0/8"),
                     Rewrite((("dst_port", 8080),), 2))
        )
        info.out_acl[2] = Acl([AclEntry(Match.build(dst_port=8080), permit=False)])
        hs = HeaderSpace()
        sp = SwitchPredicates(info, hs)
        actions = sp.transfer_actions(1)
        # Every 10/8 packet becomes dst_port 8080 and is then blocked:
        # the forwarding slice must be empty, the drop slice total.
        assert all(a.out_port == DROP_PORT for a in actions if a.pred != hs.empty)


class TestNatPathTable:
    def test_vip_entry_has_distinct_exit_headers(self, nat_scenario):
        hs = HeaderSpace()
        builder = PathTableBuilder(nat_scenario.topo, hs)
        table = builder.build()
        topo = nat_scenario.topo
        entries = table.lookup(topo.host_port("H1"), topo.host_port("H3"))
        vip_entries = [e for e in entries if e.rewrites]
        assert len(vip_entries) == 1
        entry = vip_entries[0]
        assert entry.rewrites == (("dst_ip", parse_ipv4(H3_IP)),)
        vip_header = Header.from_strings("10.0.0.1", VIP, 6, 1000, 80)
        nat_header = vip_header.with_(dst_ip=parse_ipv4(H3_IP))
        assert hs.contains(entry.headers, vip_header.as_dict())
        assert not hs.contains(entry.headers, nat_header.as_dict())
        assert hs.contains(entry.exit_header_set(), nat_header.as_dict())
        assert not hs.contains(entry.exit_header_set(), vip_header.as_dict())

    def test_expected_path_follows_rewrite(self, nat_scenario):
        hs = HeaderSpace()
        builder = PathTableBuilder(nat_scenario.topo, hs)
        builder.build()
        vip_header = Header.from_strings("10.0.0.1", VIP, 6, 1000, 80)
        hops = builder.expected_path(PortRef("S1", 1), vip_header.as_dict())
        assert [h.switch for h in hops] == ["S1", "S2", "S3"]
        assert hops[-1].out_port == 1  # delivered to H3


class TestNatEndToEnd:
    def test_healthy_nat_traffic_verifies(self, nat_scenario):
        server = VeriDPServer(nat_scenario.topo, nat_scenario.channel)
        net = DataPlaneNetwork(
            nat_scenario.topo,
            nat_scenario.channel,
            report_sink=server.receive_report_bytes,
        )
        vip_header = Header.from_strings("10.0.0.1", VIP, 6, 1000, 80)
        result = net.inject_from_host("H1", vip_header)
        assert result.status == "delivered"
        assert result.delivered_to == "H3"
        # The delivered packet carries the rewritten destination.
        assert result.reports[0].header.dst_ip == parse_ipv4(H3_IP)
        assert server.incidents == []
        assert server.stats()["passed"] == 1

    def test_missing_nat_rule_detected(self, nat_scenario):
        """The NAT rule silently fails to install: VIP traffic dies at S2,
        and the (S1, S2:⊥) report matches no configured path."""
        server = VeriDPServer(nat_scenario.topo, nat_scenario.channel)
        net = DataPlaneNetwork(
            nat_scenario.topo,
            nat_scenario.channel,
            report_sink=server.receive_report_bytes,
        )
        nat_rule = nat_scenario.topo.switch("S2").flow_table.lookup(
            Header.from_strings("10.0.0.1", VIP, 6, 1, 1), 3
        )
        net.switch("S2").external_delete(nat_rule.rule_id)
        result = net.inject_from_host(
            "H1", Header.from_strings("10.0.0.1", VIP, 6, 1000, 80)
        )
        assert result.status == "dropped"
        assert len(server.incidents) == 1
        assert not server.incidents[0].verification.passed

    def test_wrong_rewrite_target_detected_when_unroutable(self, nat_scenario):
        """An attacker redirects the VIP to a dead address: the packet drops
        downstream and the drop report fails verification."""
        server = VeriDPServer(nat_scenario.topo, nat_scenario.channel)
        net = DataPlaneNetwork(
            nat_scenario.topo,
            nat_scenario.channel,
            report_sink=server.receive_report_bytes,
        )
        nat_rule = nat_scenario.topo.switch("S2").flow_table.lookup(
            Header.from_strings("10.0.0.1", VIP, 6, 1, 1), 3
        )
        hijacked = FlowRule(
            nat_rule.priority,
            nat_rule.match,
            Rewrite((("dst_ip", parse_ipv4("10.0.99.99")),), 2),
            rule_id=nat_rule.rule_id,
        )
        net.switch("S2").external_insert(hijacked)
        result = net.inject_from_host(
            "H1", Header.from_strings("10.0.0.1", VIP, 6, 1000, 80)
        )
        assert result.status == "dropped"
        assert len(server.incidents) == 1

    def test_masquerade_limitation_documented(self, nat_scenario):
        """Known residual blind spot: a wrong rewrite whose output coincides
        with legitimate traffic *on the same hop sequence* verifies, because
        header identity is lost at the rewrite.  This test pins down the
        limitation rather than hiding it."""
        server = VeriDPServer(nat_scenario.topo, nat_scenario.channel)
        net = DataPlaneNetwork(
            nat_scenario.topo,
            nat_scenario.channel,
            report_sink=server.receive_report_bytes,
        )
        nat_rule = nat_scenario.topo.switch("S2").flow_table.lookup(
            Header.from_strings("10.0.0.1", VIP, 6, 1, 1), 3
        )
        # Rewrite to H2's address: the packet is delivered to H2 along a hop
        # sequence that legitimate H1->H2 traffic also uses.
        hijacked = FlowRule(
            nat_rule.priority,
            nat_rule.match,
            Rewrite((("dst_ip", parse_ipv4("10.0.1.1")),), 1),
            rule_id=nat_rule.rule_id,
        )
        net.switch("S2").external_insert(hijacked)
        result = net.inject_from_host(
            "H1", Header.from_strings("10.0.0.1", VIP, 6, 1000, 80)
        )
        assert result.status == "delivered"
        assert result.delivered_to == "H2"  # hijacked!
        assert server.incidents == []  # ...and invisible to VeriDP
