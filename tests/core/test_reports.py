"""Unit tests for tag reports and their wire encoding."""

import pytest

from repro.core.reports import (
    MAX_PORT_ID,
    PortCodec,
    ReportDecodeError,
    TagReport,
    pack_report,
    unpack_report,
)
from repro.netmodel.packet import Header
from repro.netmodel.rules import DROP_PORT
from repro.netmodel.topology import PortRef


@pytest.fixture
def codec():
    return PortCodec(["S1", "S2", "S3"])


class TestPortCodec:
    def test_round_trip(self, codec):
        ref = PortRef("S2", 5)
        assert codec.decode(codec.encode(ref)) == ref

    def test_drop_port_round_trip(self, codec):
        ref = PortRef("S1", DROP_PORT)
        assert codec.decode(codec.encode(ref)) == ref

    def test_14_bit_range(self, codec):
        assert 0 <= codec.encode(PortRef("S3", MAX_PORT_ID)) < (1 << 14)

    def test_register_is_idempotent(self, codec):
        first = codec.register("S1")
        assert codec.register("S1") == first
        assert len(codec) == 3

    def test_unknown_switch_raises(self, codec):
        with pytest.raises(KeyError):
            codec.encode(PortRef("S9", 1))

    def test_port_too_wide_raises(self, codec):
        with pytest.raises(ValueError):
            codec.encode(PortRef("S1", MAX_PORT_ID + 1))

    def test_decode_unknown_index_raises(self, codec):
        with pytest.raises(ValueError):
            codec.decode((200 << 6) | 1)

    def test_decode_out_of_range_raises(self, codec):
        with pytest.raises(ValueError):
            codec.decode(1 << 14)


class TestWireFormat:
    def make_report(self, **overrides):
        fields = dict(
            inport=PortRef("S1", 1),
            outport=PortRef("S3", 2),
            header=Header(src_ip=0x0A000001, dst_ip=0x0A000002, proto=6,
                          src_port=1234, dst_port=80),
            tag=0xBEEF,
            ttl_expired=False,
        )
        fields.update(overrides)
        return TagReport(**fields)

    def test_round_trip(self, codec):
        report = self.make_report()
        assert unpack_report(pack_report(report, codec), codec) == report

    def test_round_trip_drop_outport(self, codec):
        report = self.make_report(outport=PortRef("S2", DROP_PORT))
        assert unpack_report(pack_report(report, codec), codec) == report

    def test_round_trip_ttl_flag(self, codec):
        report = self.make_report(ttl_expired=True)
        assert unpack_report(pack_report(report, codec), codec).ttl_expired

    def test_payload_is_fixed_size(self, codec):
        a = pack_report(self.make_report(), codec)
        b = pack_report(self.make_report(tag=0), codec)
        assert len(a) == len(b) == 27

    def test_tag_width_up_to_64_bits(self, codec):
        report = self.make_report(tag=(1 << 64) - 1)
        assert unpack_report(pack_report(report, codec), codec).tag == (1 << 64) - 1

    def test_oversized_tag_rejected(self, codec):
        with pytest.raises(ValueError):
            pack_report(self.make_report(tag=1 << 64), codec)

    def test_truncated_payload_rejected(self, codec):
        payload = pack_report(self.make_report(), codec)
        with pytest.raises(ValueError):
            unpack_report(payload[:-1], codec)

    def test_bad_version_rejected(self, codec):
        payload = bytearray(pack_report(self.make_report(), codec))
        payload[0] = 99
        with pytest.raises(ValueError):
            unpack_report(bytes(payload), codec)

    def test_str_mentions_ports(self, codec):
        text = str(self.make_report())
        assert "S1" in text and "S3" in text


class TestReportDecodeError:
    """Satellite regression: decode failure is one typed, catchable error."""

    def make_payload(self, codec):
        report = TagReport(
            inport=PortRef("S1", 1),
            outport=PortRef("S3", 2),
            header=Header(src_ip=0x0A000001, dst_ip=0x0A000002, proto=6,
                          src_port=1234, dst_port=80),
            tag=0xBEEF,
        )
        return pack_report(report, codec)

    def test_every_truncated_prefix_raises_decode_error(self, codec):
        """Fuzz every prefix length: never a bare struct.error or KeyError."""
        payload = self.make_payload(codec)
        for cut in range(len(payload)):
            with pytest.raises(ReportDecodeError):
                unpack_report(payload[:cut], codec)

    def test_oversized_payload_raises_decode_error(self, codec):
        payload = self.make_payload(codec)
        with pytest.raises(ReportDecodeError):
            unpack_report(payload + b"\x00", codec)

    def test_unknown_switch_index_raises_decode_error(self, codec):
        """A port id beyond the codec must not leak IndexError/KeyError."""
        payload = bytearray(self.make_payload(codec))
        payload[2] = 0xFF  # inport high byte -> switch index way out of range
        payload[3] = 0x00
        with pytest.raises(ReportDecodeError):
            unpack_report(bytes(payload), codec)

    def test_bad_version_raises_decode_error(self, codec):
        payload = bytearray(self.make_payload(codec))
        payload[0] = 99
        with pytest.raises(ReportDecodeError):
            unpack_report(bytes(payload), codec)

    def test_decode_error_is_a_value_error(self, codec):
        """Backwards compatibility: older call sites catch ValueError."""
        assert issubclass(ReportDecodeError, ValueError)

    def test_fuzzed_bitflips_never_raise_untyped(self, codec):
        """Single-bit corruption anywhere decodes or raises only the typed error."""
        import random

        payload = self.make_payload(codec)
        rng = random.Random(1337)
        for _ in range(500):
            data = bytearray(payload)
            bit = rng.randrange(len(data) * 8)
            data[bit // 8] ^= 1 << (bit % 8)
            try:
                unpack_report(bytes(data), codec)
            except ReportDecodeError:
                pass  # typed failure is the contract
