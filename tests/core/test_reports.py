"""Unit tests for tag reports and their wire encoding."""

import pytest

from repro.core.reports import (
    MAX_PORT_ID,
    PortCodec,
    TagReport,
    pack_report,
    unpack_report,
)
from repro.netmodel.packet import Header
from repro.netmodel.rules import DROP_PORT
from repro.netmodel.topology import PortRef


@pytest.fixture
def codec():
    return PortCodec(["S1", "S2", "S3"])


class TestPortCodec:
    def test_round_trip(self, codec):
        ref = PortRef("S2", 5)
        assert codec.decode(codec.encode(ref)) == ref

    def test_drop_port_round_trip(self, codec):
        ref = PortRef("S1", DROP_PORT)
        assert codec.decode(codec.encode(ref)) == ref

    def test_14_bit_range(self, codec):
        assert 0 <= codec.encode(PortRef("S3", MAX_PORT_ID)) < (1 << 14)

    def test_register_is_idempotent(self, codec):
        first = codec.register("S1")
        assert codec.register("S1") == first
        assert len(codec) == 3

    def test_unknown_switch_raises(self, codec):
        with pytest.raises(KeyError):
            codec.encode(PortRef("S9", 1))

    def test_port_too_wide_raises(self, codec):
        with pytest.raises(ValueError):
            codec.encode(PortRef("S1", MAX_PORT_ID + 1))

    def test_decode_unknown_index_raises(self, codec):
        with pytest.raises(ValueError):
            codec.decode((200 << 6) | 1)

    def test_decode_out_of_range_raises(self, codec):
        with pytest.raises(ValueError):
            codec.decode(1 << 14)


class TestWireFormat:
    def make_report(self, **overrides):
        fields = dict(
            inport=PortRef("S1", 1),
            outport=PortRef("S3", 2),
            header=Header(src_ip=0x0A000001, dst_ip=0x0A000002, proto=6,
                          src_port=1234, dst_port=80),
            tag=0xBEEF,
            ttl_expired=False,
        )
        fields.update(overrides)
        return TagReport(**fields)

    def test_round_trip(self, codec):
        report = self.make_report()
        assert unpack_report(pack_report(report, codec), codec) == report

    def test_round_trip_drop_outport(self, codec):
        report = self.make_report(outport=PortRef("S2", DROP_PORT))
        assert unpack_report(pack_report(report, codec), codec) == report

    def test_round_trip_ttl_flag(self, codec):
        report = self.make_report(ttl_expired=True)
        assert unpack_report(pack_report(report, codec), codec).ttl_expired

    def test_payload_is_fixed_size(self, codec):
        a = pack_report(self.make_report(), codec)
        b = pack_report(self.make_report(tag=0), codec)
        assert len(a) == len(b) == 27

    def test_tag_width_up_to_64_bits(self, codec):
        report = self.make_report(tag=(1 << 64) - 1)
        assert unpack_report(pack_report(report, codec), codec).tag == (1 << 64) - 1

    def test_oversized_tag_rejected(self, codec):
        with pytest.raises(ValueError):
            pack_report(self.make_report(tag=1 << 64), codec)

    def test_truncated_payload_rejected(self, codec):
        payload = pack_report(self.make_report(), codec)
        with pytest.raises(ValueError):
            unpack_report(payload[:-1], codec)

    def test_bad_version_rejected(self, codec):
        payload = bytearray(pack_report(self.make_report(), codec))
        payload[0] = 99
        with pytest.raises(ValueError):
            unpack_report(bytes(payload), codec)

    def test_str_mentions_ports(self, codec):
        text = str(self.make_report())
        assert "S1" in text and "S3" in text
