"""Unit tests for flow sampling (Section 4.5)."""

import pytest

from repro.core.sampling import (
    AlwaysSampler,
    FlowSampler,
    NeverSampler,
    sampling_interval_for,
    worst_case_detection_latency,
)


class TestIntervalMath:
    def test_sampling_interval_for(self):
        assert sampling_interval_for(tau=1.0, max_inter_arrival=0.3) == pytest.approx(0.7)

    def test_unachievable_latency_raises(self):
        with pytest.raises(ValueError):
            sampling_interval_for(tau=0.3, max_inter_arrival=0.5)

    def test_bad_tau(self):
        with pytest.raises(ValueError):
            sampling_interval_for(tau=0, max_inter_arrival=0.1)

    def test_negative_inter_arrival(self):
        with pytest.raises(ValueError):
            sampling_interval_for(tau=1.0, max_inter_arrival=-1)

    def test_worst_case_latency_is_sum(self):
        assert worst_case_detection_latency(0.7, 0.3) == pytest.approx(1.0)

    def test_latency_bound_round_trip(self):
        """T_s chosen via the Section 4.5 rule meets the latency budget."""
        tau, t_a = 2.0, 0.5
        t_s = sampling_interval_for(tau, t_a)
        assert worst_case_detection_latency(t_s, t_a) <= tau + 1e-12

    def test_worst_case_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            worst_case_detection_latency(0, 0.1)
        with pytest.raises(ValueError):
            worst_case_detection_latency(1.0, -0.1)


class TestFlowSampler:
    def test_first_packet_always_sampled(self):
        sampler = FlowSampler(default_interval=1.0)
        assert sampler.should_sample("f1", now=0.0)

    def test_within_interval_not_sampled(self):
        sampler = FlowSampler(default_interval=1.0)
        sampler.should_sample("f1", now=0.0)
        assert not sampler.should_sample("f1", now=0.5)
        assert not sampler.should_sample("f1", now=1.0)  # strict inequality

    def test_after_interval_sampled(self):
        sampler = FlowSampler(default_interval=1.0)
        sampler.should_sample("f1", now=0.0)
        assert sampler.should_sample("f1", now=1.01)

    def test_flows_are_independent(self):
        sampler = FlowSampler(default_interval=1.0)
        sampler.should_sample("f1", now=0.0)
        assert sampler.should_sample("f2", now=0.5)

    def test_per_flow_interval_override(self):
        sampler = FlowSampler(default_interval=10.0)
        sampler.set_interval("fast", 0.1)
        sampler.should_sample("fast", now=0.0)
        assert sampler.should_sample("fast", now=0.2)
        assert sampler.interval_of("fast") == 0.1
        assert sampler.interval_of("other") == 10.0

    def test_sampling_rate(self):
        sampler = FlowSampler(default_interval=10.0)
        sampler.should_sample("f", now=0.0)  # sampled
        sampler.should_sample("f", now=1.0)  # not
        sampler.should_sample("f", now=2.0)  # not
        sampler.should_sample("f", now=11.0)  # sampled
        assert sampler.sampling_rate == pytest.approx(0.5)
        assert sampler.seen_count == 4
        assert sampler.sampled_count == 2

    def test_empty_rate_is_zero(self):
        assert FlowSampler().sampling_rate == 0.0

    def test_capacity_evicts_least_recently_hit(self):
        sampler = FlowSampler(default_interval=100.0, capacity=2)
        sampler.should_sample("a", now=0.0)
        sampler.should_sample("b", now=1.0)
        sampler.should_sample("a", now=2.0)  # refresh a's hit time
        sampler.should_sample("c", now=3.0)  # evicts b
        assert sampler.active_flows == 2
        # b returns as a "new" flow -> sampled again (over-sampling, never under)
        assert sampler.should_sample("b", now=4.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FlowSampler(default_interval=0)
        with pytest.raises(ValueError):
            FlowSampler(capacity=0)
        with pytest.raises(ValueError):
            FlowSampler().set_interval("f", 0)


class TestTrivialSamplers:
    def test_always(self):
        sampler = AlwaysSampler()
        assert all(sampler.should_sample("f", now=t) for t in range(5))

    def test_never(self):
        sampler = NeverSampler()
        assert not any(sampler.should_sample("f", now=t) for t in range(5))
