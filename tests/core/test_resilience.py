"""Unit tests for the resilience primitives (queue, DLQ, backoff, supervisor)."""

import threading
import time

import pytest

from repro.core.resilience import (
    DeadLetterQueue,
    OverflowPolicy,
    PolicyQueue,
    RestartBackoff,
    WorkerProbe,
    WorkerSupervisor,
)


class TestOverflowPolicy:
    def test_coerce_strings(self):
        assert OverflowPolicy.coerce("block") is OverflowPolicy.BLOCK
        assert OverflowPolicy.coerce("drop-oldest") is OverflowPolicy.DROP_OLDEST
        assert OverflowPolicy.coerce("drop-new") is OverflowPolicy.DROP_NEW
        assert OverflowPolicy.coerce(OverflowPolicy.BLOCK) is OverflowPolicy.BLOCK

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown overflow policy"):
            OverflowPolicy.coerce("yolo")


class TestPolicyQueue:
    def test_fifo_order(self):
        q = PolicyQueue(4)
        for i in range(3):
            assert q.put(i)
        assert [q.get(), q.get(), q.get()] == [0, 1, 2]

    def test_drop_new_rejects_and_counts(self):
        q = PolicyQueue(2, OverflowPolicy.DROP_NEW)
        assert q.put("a") and q.put("b")
        assert not q.put("c")
        assert q.stats()["dropped_new"] == 1
        assert q.get() == "a"  # oldest-wins: original items preserved

    def test_drop_oldest_evicts_and_counts(self):
        q = PolicyQueue(2, OverflowPolicy.DROP_OLDEST)
        assert q.put("a") and q.put("b")
        assert q.put("c")  # admits by evicting "a"
        assert q.stats()["dropped_oldest"] == 1
        assert q.get() == "b"
        assert q.get() == "c"

    def test_drop_oldest_settles_join_obligation(self):
        q = PolicyQueue(1, OverflowPolicy.DROP_OLDEST)
        q.put("a")
        q.put("b")  # evicts "a", which will never be task_done'd
        q.get()
        q.task_done()
        assert q.join(timeout=1.0)

    def test_block_waits_for_room(self):
        q = PolicyQueue(1, OverflowPolicy.BLOCK)
        q.put("a")
        done = []

        def producer():
            q.put("b")
            done.append(True)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not done  # blocked on the full queue
        assert q.get() == "a"
        thread.join(timeout=2)
        assert done

    def test_block_timeout_counts(self):
        q = PolicyQueue(1, OverflowPolicy.BLOCK)
        q.put("a")
        assert not q.put("b", timeout=0.01)
        assert q.stats()["block_timeouts"] == 1

    def test_force_put_bypasses_bound(self):
        q = PolicyQueue(1, OverflowPolicy.DROP_NEW)
        q.put("a")
        assert q.put("sentinel", force=True)
        assert q.qsize() == 2

    def test_join_tracks_unfinished(self):
        q = PolicyQueue(8)
        q.put("a")
        assert not q.join(timeout=0.01)
        q.get()
        q.task_done()
        assert q.join(timeout=1.0)

    def test_get_nowait_raises_when_empty(self):
        q = PolicyQueue(2)
        with pytest.raises(IndexError):
            q.get_nowait()

    def test_requires_positive_maxsize(self):
        with pytest.raises(ValueError):
            PolicyQueue(0)


class TestDeadLetterQueue:
    def test_add_records_structured_error(self):
        dlq = DeadLetterQueue(capacity=4)
        letter = dlq.add(b"xx", "decode", ValueError("bad version"))
        assert letter.stage == "decode"
        assert letter.error_type == "ValueError"
        assert "bad version" in letter.error
        assert dlq.pending == 1
        assert "decode" in letter.describe()

    def test_retry_recovers_on_success(self):
        dlq = DeadLetterQueue(capacity=4)
        dlq.add(b"xx", "decode", ValueError("transient"))
        recovered, quarantined = dlq.retry(lambda payload: None)
        assert (recovered, quarantined) == (1, 0)
        assert dlq.pending == 0
        assert dlq.stats()["dead_letter_recovered"] == 1

    def test_retry_then_quarantine(self):
        dlq = DeadLetterQueue(capacity=4, max_attempts=2)

        def always_fails(payload):
            raise ValueError("still broken")

        dlq.add(b"xx", "decode", ValueError("broken"))
        recovered, quarantined = dlq.retry(always_fails)
        assert (recovered, quarantined) == (0, 1)
        assert dlq.pending == 0
        assert dlq.quarantined == 1
        letters = dlq.drain_quarantined()
        assert len(letters) == 1
        assert letters[0].quarantined
        assert letters[0].attempts == 2
        assert dlq.quarantined == 0

    def test_capacity_overflow_quarantines_oldest(self):
        dlq = DeadLetterQueue(capacity=2)
        for i in range(3):
            dlq.add(bytes([i]), "decode", ValueError(str(i)))
        assert dlq.pending == 2
        assert dlq.quarantined == 1
        assert dlq.total == 3


class TestRestartBackoff:
    def test_exponential_and_capped(self):
        backoff = RestartBackoff(base=0.1, factor=2.0, cap=0.5, healthy_after=1e9)
        delays = [backoff.next_delay(now=1.0) for _ in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_reset_after_healthy_period(self):
        backoff = RestartBackoff(base=0.1, factor=2.0, cap=1.0, healthy_after=10.0)
        assert backoff.next_delay(now=0.0) == 0.1
        assert backoff.next_delay(now=1.0) == pytest.approx(0.2)
        # A long quiet stretch forgives the crash streak.
        assert backoff.next_delay(now=100.0) == 0.1

    def test_rejects_bad_schedule(self):
        with pytest.raises(ValueError):
            RestartBackoff(base=0.0)


class FakeFleet:
    """A pretend worker pool the supervisor can probe and restart."""

    def __init__(self, workers=2):
        self.alive = [True] * workers
        self.heartbeat_age = [0.0] * workers
        self.restarted = []

    def probe(self):
        return [
            WorkerProbe(i, self.alive[i], self.heartbeat_age[i])
            for i in range(len(self.alive))
        ]

    def restart(self, worker_id):
        self.alive[worker_id] = True
        self.heartbeat_age[worker_id] = 0.0
        self.restarted.append(worker_id)


class TestWorkerSupervisor:
    def make(self, fleet, **kwargs):
        kwargs.setdefault("backoff", RestartBackoff(base=0.001, cap=0.002))
        return WorkerSupervisor(fleet.probe, fleet.restart, **kwargs)

    def test_restarts_dead_worker(self):
        fleet = FakeFleet(2)
        supervisor = self.make(fleet, restart_budget=5)
        fleet.alive[1] = False
        assert supervisor.check_once() == 1
        assert fleet.restarted == [1]
        assert supervisor.restarts == 1

    def test_restarts_wedged_worker(self):
        fleet = FakeFleet(2)
        supervisor = self.make(fleet, restart_budget=5, heartbeat_timeout=1.0)
        fleet.heartbeat_age[0] = 5.0  # alive but unresponsive
        assert supervisor.check_once() == 1
        assert fleet.restarted == [0]
        assert supervisor.wedged_restarts == 1

    def test_healthy_fleet_untouched(self):
        fleet = FakeFleet(3)
        supervisor = self.make(fleet)
        assert supervisor.check_once() == 0
        assert fleet.restarted == []

    def test_budget_exhaustion_fires_callback_once(self):
        fleet = FakeFleet(1)
        degraded = []
        supervisor = self.make(
            fleet,
            restart_budget=2,
            on_budget_exhausted=lambda: degraded.append(True),
        )
        for _ in range(2):
            fleet.alive[0] = False
            supervisor.check_once()
        fleet.alive[0] = False
        supervisor.check_once()  # third death exceeds the budget
        assert supervisor.exhausted
        assert degraded == [True]
        assert supervisor.restarts == 2
        # Once exhausted, no further restarts ever happen.
        supervisor.check_once()
        assert len(fleet.restarted) == 2

    def test_polling_thread_detects_death(self):
        fleet = FakeFleet(1)
        supervisor = self.make(fleet, restart_budget=5, poll_interval=0.01)
        supervisor.start()
        try:
            fleet.alive[0] = False
            deadline = time.time() + 5
            while not fleet.restarted and time.time() < deadline:
                time.sleep(0.01)
            assert fleet.restarted == [0]
        finally:
            supervisor.stop()
        assert not supervisor.running

    def test_stats_shape(self):
        fleet = FakeFleet(1)
        supervisor = self.make(fleet, restart_budget=7)
        stats = supervisor.stats()
        assert stats["restart_budget"] == 7
        assert stats["restarts"] == 0
        assert stats["budget_exhausted"] == 0
