"""Unit tests for the resilience primitives (queue, DLQ, backoff, supervisor)."""

import threading
import time

import pytest

from repro.core.reports import REPORT_SIZE, Frame
from repro.core.resilience import (
    DeadLetterQueue,
    OverflowPolicy,
    PolicyQueue,
    RestartBackoff,
    TenantQuotaQueue,
    WorkerProbe,
    WorkerSupervisor,
)


def mkframe(n, fill=0x41, tenants=None):
    """An ``n``-row frame of synthetic wire rows (row i's last byte is i)."""
    data = b"".join(
        bytes([1, fill]) + bytes(REPORT_SIZE - 3) + bytes([i]) for i in range(n)
    )
    return Frame(data, tenants=tenants)


class TestOverflowPolicy:
    def test_coerce_strings(self):
        assert OverflowPolicy.coerce("block") is OverflowPolicy.BLOCK
        assert OverflowPolicy.coerce("drop-oldest") is OverflowPolicy.DROP_OLDEST
        assert OverflowPolicy.coerce("drop-new") is OverflowPolicy.DROP_NEW
        assert OverflowPolicy.coerce(OverflowPolicy.BLOCK) is OverflowPolicy.BLOCK

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown overflow policy"):
            OverflowPolicy.coerce("yolo")


class TestPolicyQueue:
    def test_fifo_order(self):
        q = PolicyQueue(4)
        for i in range(3):
            assert q.put(i)
        assert [q.get(), q.get(), q.get()] == [0, 1, 2]

    def test_drop_new_rejects_and_counts(self):
        q = PolicyQueue(2, OverflowPolicy.DROP_NEW)
        assert q.put("a") and q.put("b")
        assert not q.put("c")
        assert q.stats()["dropped_new"] == 1
        assert q.get() == "a"  # oldest-wins: original items preserved

    def test_drop_oldest_evicts_and_counts(self):
        q = PolicyQueue(2, OverflowPolicy.DROP_OLDEST)
        assert q.put("a") and q.put("b")
        assert q.put("c")  # admits by evicting "a"
        assert q.stats()["dropped_oldest"] == 1
        assert q.get() == "b"
        assert q.get() == "c"

    def test_drop_oldest_settles_join_obligation(self):
        q = PolicyQueue(1, OverflowPolicy.DROP_OLDEST)
        q.put("a")
        q.put("b")  # evicts "a", which will never be task_done'd
        q.get()
        q.task_done()
        assert q.join(timeout=1.0)

    def test_block_waits_for_room(self):
        q = PolicyQueue(1, OverflowPolicy.BLOCK)
        q.put("a")
        done = []

        def producer():
            q.put("b")
            done.append(True)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not done  # blocked on the full queue
        assert q.get() == "a"
        thread.join(timeout=2)
        assert done

    def test_block_timeout_counts(self):
        q = PolicyQueue(1, OverflowPolicy.BLOCK)
        q.put("a")
        assert not q.put("b", timeout=0.01)
        assert q.stats()["block_timeouts"] == 1

    def test_force_put_bypasses_bound(self):
        q = PolicyQueue(1, OverflowPolicy.DROP_NEW)
        q.put("a")
        assert q.put("sentinel", force=True)
        assert q.qsize() == 2

    def test_join_tracks_unfinished(self):
        q = PolicyQueue(8)
        q.put("a")
        assert not q.join(timeout=0.01)
        q.get()
        q.task_done()
        assert q.join(timeout=1.0)

    def test_get_nowait_raises_when_empty(self):
        q = PolicyQueue(2)
        with pytest.raises(IndexError):
            q.get_nowait()

    def test_requires_positive_maxsize(self):
        with pytest.raises(ValueError):
            PolicyQueue(0)


class TestPolicyQueueFrames:
    """The report-weighted queue: frames weigh their rows, and every
    overflow policy accounts drops per report at frame boundaries."""

    def test_frame_weighs_its_rows(self):
        q = PolicyQueue(10)
        assert q.put_frame(mkframe(4)) == 4
        assert q.qsize() == 4
        assert q.stats()["puts"] == 4
        frame = q.get()
        assert isinstance(frame, Frame) and frame.count == 4
        q.task_done(reports=4)
        assert q.join(timeout=1.0)

    def test_drop_new_admits_the_fitting_prefix(self):
        q = PolicyQueue(6, OverflowPolicy.DROP_NEW)
        assert q.put_frame(mkframe(4)) == 4
        assert q.put_frame(mkframe(4)) == 2  # split at the bound
        stats = q.stats()
        assert stats["dropped_new"] == 2
        assert stats["queued"] == 6
        assert stats["puts"] == 8
        first, second = q.get(), q.get()
        assert first.count == 4
        assert second.count == 2
        # The admitted prefix is the frame's *head* rows.
        assert second.row(0)[-1] == 0 and second.row(1)[-1] == 1

    def test_drop_new_refuses_whole_frame_when_no_room(self):
        q = PolicyQueue(3, OverflowPolicy.DROP_NEW)
        assert q.put_frame(mkframe(3)) == 3
        assert q.put_frame(mkframe(5)) == 0
        assert q.stats()["dropped_new"] == 5

    def test_drop_oldest_evicts_queued_reports_one_at_a_time(self):
        q = PolicyQueue(5, OverflowPolicy.DROP_OLDEST)
        assert q.put_frame(mkframe(3, fill=0xAA)) == 3
        assert q.put_frame(mkframe(4, fill=0xBB)) == 4
        stats = q.stats()
        assert stats["dropped_oldest"] == 2
        assert stats["queued"] == 5
        # The old frame survives with a narrowed window (rows 2..3).
        old = q.get()
        assert old.count == 1
        assert old.row(0)[-1] == 2
        assert q.get().count == 4
        # Evictions settled their join obligation at eviction time.
        q.task_done(reports=1)
        q.task_done(reports=4)
        assert q.join(timeout=1.0)

    def test_drop_oldest_frame_wider_than_queue_sheds_own_head(self):
        q = PolicyQueue(4, OverflowPolicy.DROP_OLDEST)
        q.put("x")
        assert q.put_frame(mkframe(6)) == 4  # newest-wins: keeps rows 2..5
        stats = q.stats()
        assert stats["dropped_oldest"] == 3  # "x" plus the frame's rows 0-1
        frame = q.get()
        assert frame.count == 4
        assert frame.row(0)[-1] == 2

    def test_block_admits_prefix_then_times_out_mid_frame(self):
        q = PolicyQueue(4, OverflowPolicy.BLOCK)
        assert q.put_frame(mkframe(3)) == 3
        admitted = q.put_frame(mkframe(3), timeout=0.01)
        assert admitted == 1  # the fitting prefix went in before the wait
        stats = q.stats()
        assert stats["block_timeouts"] == 2
        assert stats["queued"] == 4

    def test_block_admits_rest_when_consumer_makes_room(self):
        q = PolicyQueue(4, OverflowPolicy.BLOCK)
        q.put_frame(mkframe(4))
        got = []

        def producer():
            got.append(q.put_frame(mkframe(4), timeout=5.0))

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        drained = q.get()
        q.task_done(reports=drained.count)
        thread.join(timeout=5)
        assert got == [4]

    def test_put_many_mixes_scalars_and_frames(self):
        q = PolicyQueue(10)
        admitted = q.put_many([b"a", mkframe(3), b"b", mkframe(2)])
        assert admitted == 7
        assert q.qsize() == 7
        assert q.stats()["puts"] == 7

    def test_put_many_counts_refusals_per_report(self):
        q = PolicyQueue(4, OverflowPolicy.DROP_NEW)
        admitted = q.put_many([mkframe(3), mkframe(3), b"x"])
        assert admitted == 4  # 3 + a 1-row split prefix
        stats = q.stats()
        assert stats["dropped_new"] == 3  # 2 frame rows + the scalar
        assert stats["puts"] == 7

    def test_get_many_batches_without_splitting_frames(self):
        q = PolicyQueue(32)
        q.put(b"a")
        q.put_frame(mkframe(4))
        q.put(b"b")
        items = q.get_many(3)
        # The scalar fits; the 4-row frame would exceed the budget and is
        # never split on the consumer side, so the batch stops before it.
        assert items == [b"a"]
        items = q.get_many(16)
        assert isinstance(items[0], Frame) and items[0].count == 4
        assert items[1] == b"b"

    def test_get_many_returns_oversized_first_item_whole(self):
        q = PolicyQueue(32)
        q.put_frame(mkframe(8))
        items = q.get_many(2)
        assert len(items) == 1 and items[0].count == 8

    def test_get_many_blocks_for_first_item_only(self):
        q = PolicyQueue(8)
        with pytest.raises(TimeoutError):
            q.get_many(4, timeout=0.01)

    def test_get_many_rejects_nonpositive_budget(self):
        q = PolicyQueue(8)
        with pytest.raises(ValueError):
            q.get_many(0)


class TestTenantQuotaFrames:
    """Frame admission under per-tenant quotas: bulk charges stay exact
    per report and per tenant."""

    def make_queue(self, maxsize=8, policy=OverflowPolicy.DROP_NEW, **kwargs):
        kwargs.setdefault("shares", {"red": 0.5, "blue": 0.5})
        return TenantQuotaQueue(maxsize, policy, **kwargs)

    def test_bulk_path_charges_each_tenant_once(self):
        q = self.make_queue()
        frame = mkframe(4)
        admitted = q.put_frame(frame, tenants=["red", "red", "blue", None])
        assert admitted == 4
        tenants = q.stats()["tenants"]
        assert tenants["red"]["queued"] == 2
        assert tenants["blue"]["queued"] == 1
        assert tenants[""]["queued"] == 1
        assert tenants["red"]["puts"] == 2

    def test_get_releases_per_row_occupancy(self):
        q = self.make_queue()
        q.put_frame(mkframe(3), tenants=["red", "red", "blue"])
        frame = q.get()
        assert isinstance(frame, Frame) and frame.count == 3
        assert frame.row_tenant(0) == "red"
        tenants = q.stats()["tenants"]
        assert tenants["red"]["queued"] == 0
        assert tenants["blue"]["queued"] == 0

    def test_over_quota_tenant_refused_row_wise(self):
        # red's cap is 4 of 8; a frame carrying 5 red rows and 2 blue rows
        # must shed exactly the over-quota red row.
        q = self.make_queue()
        frame = mkframe(7)
        admitted = q.put_frame(
            frame, tenants=["red"] * 5 + ["blue"] * 2
        )
        assert admitted == 6
        tenants = q.stats()["tenants"]
        assert tenants["red"]["queued"] == 4
        assert tenants["red"]["dropped"] == 1
        assert tenants["blue"]["queued"] == 2
        assert tenants["blue"]["dropped"] == 0
        assert q.stats()["dropped_new"] == 1

    def test_quota_refusal_is_per_tenant_even_under_block(self):
        # BLOCK never lets an over-quota tenant stall the others.
        q = self.make_queue(policy=OverflowPolicy.BLOCK)
        q.put_frame(mkframe(4), tenants=["red"] * 4)  # red at cap
        admitted = q.put_frame(
            mkframe(3), timeout=0.05, tenants=["red", "blue", "blue"]
        )
        assert admitted == 2
        tenants = q.stats()["tenants"]
        assert tenants["red"]["dropped"] == 1
        assert tenants["blue"]["queued"] == 2

    def test_global_refusal_releases_bulk_reservation(self):
        # The bulk path reserves occupancy up front; rows the *global*
        # policy then refuses must release it (and charge the tenant).
        q = self.make_queue(maxsize=4, shares={"red": 1.0})
        assert q.put_frame(mkframe(3), tenants=["red"] * 3) == 3
        assert q.put_frame(mkframe(3), tenants=["red"] * 3) == 1
        tenants = q.stats()["tenants"]
        assert tenants["red"]["queued"] == 4
        assert tenants["red"]["dropped"] == 2
        assert q.stats()["dropped_new"] == 2

    def test_eviction_releases_the_right_tenants_occupancy(self):
        q = self.make_queue(
            maxsize=4, policy=OverflowPolicy.DROP_OLDEST,
            shares={"red": 1.0, "blue": 1.0},
        )
        q.put_frame(mkframe(2), tenants=["red", "red"])
        q.put_frame(mkframe(4), tenants=["blue"] * 4)
        tenants = q.stats()["tenants"]
        assert tenants["red"]["queued"] == 0
        assert tenants["red"]["dropped"] == 2
        assert tenants["blue"]["queued"] == 4
        assert q.stats()["dropped_oldest"] == 2

    def test_scalar_and_frame_ledgers_are_one_currency(self):
        q = self.make_queue(maxsize=16)
        q.put(b"scalar-row")
        q.put_frame(mkframe(3), tenants=["red", "red", "blue"])
        stats = q.stats()
        assert stats["puts"] == 4
        assert stats["queued"] == 4

    def test_tenant_stamp_length_must_match_window(self):
        q = self.make_queue()
        with pytest.raises(ValueError, match="tenant stamps"):
            q.put_frame(mkframe(3), tenants=["red"])


class TestDeadLetterQueue:
    def test_add_records_structured_error(self):
        dlq = DeadLetterQueue(capacity=4)
        letter = dlq.add(b"xx", "decode", ValueError("bad version"))
        assert letter.stage == "decode"
        assert letter.error_type == "ValueError"
        assert "bad version" in letter.error
        assert dlq.pending == 1
        assert "decode" in letter.describe()

    def test_retry_recovers_on_success(self):
        dlq = DeadLetterQueue(capacity=4)
        dlq.add(b"xx", "decode", ValueError("transient"))
        recovered, quarantined = dlq.retry(lambda payload: None)
        assert (recovered, quarantined) == (1, 0)
        assert dlq.pending == 0
        assert dlq.stats()["dead_letter_recovered"] == 1

    def test_retry_then_quarantine(self):
        dlq = DeadLetterQueue(capacity=4, max_attempts=2)

        def always_fails(payload):
            raise ValueError("still broken")

        dlq.add(b"xx", "decode", ValueError("broken"))
        recovered, quarantined = dlq.retry(always_fails)
        assert (recovered, quarantined) == (0, 1)
        assert dlq.pending == 0
        assert dlq.quarantined == 1
        letters = dlq.drain_quarantined()
        assert len(letters) == 1
        assert letters[0].quarantined
        assert letters[0].attempts == 2
        assert dlq.quarantined == 0

    def test_capacity_overflow_quarantines_oldest(self):
        dlq = DeadLetterQueue(capacity=2)
        for i in range(3):
            dlq.add(bytes([i]), "decode", ValueError(str(i)))
        assert dlq.pending == 2
        assert dlq.quarantined == 1
        assert dlq.total == 3


class TestRestartBackoff:
    def test_exponential_and_capped(self):
        backoff = RestartBackoff(base=0.1, factor=2.0, cap=0.5, healthy_after=1e9)
        delays = [backoff.next_delay(now=1.0) for _ in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_reset_after_healthy_period(self):
        backoff = RestartBackoff(base=0.1, factor=2.0, cap=1.0, healthy_after=10.0)
        assert backoff.next_delay(now=0.0) == 0.1
        assert backoff.next_delay(now=1.0) == pytest.approx(0.2)
        # A long quiet stretch forgives the crash streak.
        assert backoff.next_delay(now=100.0) == 0.1

    def test_rejects_bad_schedule(self):
        with pytest.raises(ValueError):
            RestartBackoff(base=0.0)


class FakeFleet:
    """A pretend worker pool the supervisor can probe and restart."""

    def __init__(self, workers=2):
        self.alive = [True] * workers
        self.heartbeat_age = [0.0] * workers
        self.restarted = []

    def probe(self):
        return [
            WorkerProbe(i, self.alive[i], self.heartbeat_age[i])
            for i in range(len(self.alive))
        ]

    def restart(self, worker_id):
        self.alive[worker_id] = True
        self.heartbeat_age[worker_id] = 0.0
        self.restarted.append(worker_id)


class TestWorkerSupervisor:
    def make(self, fleet, **kwargs):
        kwargs.setdefault("backoff", RestartBackoff(base=0.001, cap=0.002))
        return WorkerSupervisor(fleet.probe, fleet.restart, **kwargs)

    def test_restarts_dead_worker(self):
        fleet = FakeFleet(2)
        supervisor = self.make(fleet, restart_budget=5)
        fleet.alive[1] = False
        assert supervisor.check_once() == 1
        assert fleet.restarted == [1]
        assert supervisor.restarts == 1

    def test_restarts_wedged_worker(self):
        fleet = FakeFleet(2)
        supervisor = self.make(fleet, restart_budget=5, heartbeat_timeout=1.0)
        fleet.heartbeat_age[0] = 5.0  # alive but unresponsive
        assert supervisor.check_once() == 1
        assert fleet.restarted == [0]
        assert supervisor.wedged_restarts == 1

    def test_healthy_fleet_untouched(self):
        fleet = FakeFleet(3)
        supervisor = self.make(fleet)
        assert supervisor.check_once() == 0
        assert fleet.restarted == []

    def test_budget_exhaustion_fires_callback_once(self):
        fleet = FakeFleet(1)
        degraded = []
        supervisor = self.make(
            fleet,
            restart_budget=2,
            on_budget_exhausted=lambda: degraded.append(True),
        )
        for _ in range(2):
            fleet.alive[0] = False
            supervisor.check_once()
        fleet.alive[0] = False
        supervisor.check_once()  # third death exceeds the budget
        assert supervisor.exhausted
        assert degraded == [True]
        assert supervisor.restarts == 2
        # Once exhausted, no further restarts ever happen.
        supervisor.check_once()
        assert len(fleet.restarted) == 2

    def test_polling_thread_detects_death(self):
        fleet = FakeFleet(1)
        supervisor = self.make(fleet, restart_budget=5, poll_interval=0.01)
        supervisor.start()
        try:
            fleet.alive[0] = False
            deadline = time.time() + 5
            while not fleet.restarted and time.time() < deadline:
                time.sleep(0.01)
            assert fleet.restarted == [0]
        finally:
            supervisor.stop()
        assert not supervisor.running

    def test_stats_shape(self):
        fleet = FakeFleet(1)
        supervisor = self.make(fleet, restart_budget=7)
        stats = supervisor.stats()
        assert stats["restart_budget"] == 7
        assert stats["restarts"] == 0
        assert stats["budget_exhausted"] == 0
