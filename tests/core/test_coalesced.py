"""Coalesced incremental updates + parallel build parity (ISSUE 5).

Three independent ways of reaching a path-table state — per-event
incremental updates, coalesced staged flushes, and a from-scratch rebuild
(serial or parallel) — must land on semantically identical tables.
``table_fingerprint`` is the oracle: manager-independent, order-blind.
"""

import pytest

from repro.bdd.headerspace import HeaderSpace
from repro.core.incremental import IncrementalPathTable, UpdateFlushStats
from repro.core.pathtable import PathTable, PathTableBuilder
from repro.persist.snapshot import table_fingerprint
from repro.topologies import build_internet2, build_linear, internet2_lpm_ruleset


def base_operations(scenario):
    ruleset = internet2_lpm_ruleset(scenario)
    return [
        ("add", switch, prefix, port)
        for switch, rules in sorted(ruleset.items())
        for prefix, port in rules
    ]


CHURN = [
    # Nested prefixes restructure the SEAT tree; the delete undoes the
    # parent while its child stays, the cross-PoP adds dirty other regions.
    ("add", "SEAT", "10.99.0.0/16", 1),
    ("add", "SEAT", "10.99.1.0/24", 2),
    ("del", "SEAT", "10.99.0.0/16", None),
    ("add", "CHIC", "10.98.0.0/16", 1),
    ("add", "NEWY", "10.97.0.0/16", 1),
    ("del", "SEAT", "10.99.1.0/24", None),
]


def apply_per_event(inc, operations):
    for op, switch, prefix, port in operations:
        if op == "add":
            inc.add_rule(switch, prefix, port)
        else:
            inc.delete_rule(switch, prefix)


def apply_staged(inc, operations):
    for op, switch, prefix, port in operations:
        if op == "add":
            inc.stage_add_rule(switch, prefix, port)
        else:
            inc.stage_delete_rule(switch, prefix)
    return inc.flush_updates()


class TestCoalescedParity:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_internet2(prefixes_per_pop=1)

    def test_coalesced_equals_per_event_and_rebuild(self, scenario):
        ops = base_operations(scenario)

        hs_event = HeaderSpace()
        per_event = IncrementalPathTable(scenario.topo, hs_event)
        apply_per_event(per_event, ops + CHURN)

        hs_coal = HeaderSpace()
        coalesced = IncrementalPathTable(scenario.topo, hs_coal)
        apply_per_event(coalesced, ops)  # same starting table
        stats = apply_staged(coalesced, CHURN)

        want = table_fingerprint(per_event.table, hs_event.bdd)
        assert table_fingerprint(coalesced.table, hs_coal.bdd) == want

        rebuilt = PathTableBuilder(
            scenario.topo, hs_coal, provider=coalesced.provider
        ).build()
        assert table_fingerprint(rebuilt, hs_coal.bdd) == want

        assert isinstance(stats, UpdateFlushStats)
        assert stats.events == len(CHURN)
        assert stats.dirty_switches >= 3  # SEAT, CHIC, NEWY at least
        assert stats.elapsed_s > 0
        assert coalesced.last_flush is stats
        assert coalesced.pending_updates == 0

    def test_direct_update_autoflushes_staged_events(self, scenario):
        hs = HeaderSpace()
        inc = IncrementalPathTable(scenario.topo, hs)
        apply_per_event(inc, base_operations(scenario))
        inc.stage_add_rule("SEAT", "10.99.0.0/16", 1)
        assert inc.pending_updates == 1
        # A direct (per-event) call must not interleave with staged state:
        # it flushes first, so ordering matches the WAL.
        inc.add_rule("CHIC", "10.98.0.0/16", 1)
        assert inc.pending_updates == 0

        hs2 = HeaderSpace()
        ref = IncrementalPathTable(scenario.topo, hs2)
        apply_per_event(
            ref,
            base_operations(scenario)
            + [("add", "SEAT", "10.99.0.0/16", 1), ("add", "CHIC", "10.98.0.0/16", 1)],
        )
        assert table_fingerprint(inc.table, hs.bdd) == table_fingerprint(
            ref.table, hs2.bdd
        )

    def test_flush_with_nothing_staged_is_noop(self, scenario):
        inc = IncrementalPathTable(build_linear(3, install_routes=False).topo, HeaderSpace())
        stats = inc.flush_updates()
        assert stats.events == 0


class TestParallelBuildParity:
    def test_parallel_build_matches_serial(self, monkeypatch):
        # Hosts below the CPU crossover silently build serially; force the
        # pool on so the parity comparison is not serial-vs-serial.
        monkeypatch.setenv("REPRO_BUILD_MIN_CPUS", "1")
        scenario = build_internet2(prefixes_per_pop=1)
        hs_serial = HeaderSpace()
        serial = PathTableBuilder(scenario.topo, hs_serial).build()
        hs_par = HeaderSpace()
        parallel = PathTableBuilder(scenario.topo, hs_par).build(workers=3)
        if parallel.build_workers == 1:
            pytest.skip("no fork start method on this platform")
        assert table_fingerprint(parallel, hs_par.bdd) == table_fingerprint(
            serial, hs_serial.bdd
        )

    def test_parallel_reach_index_matches_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUILD_MIN_CPUS", "1")
        scenario = build_internet2(prefixes_per_pop=1)

        def reach_signature(builder, workers):
            builder.build(workers=workers)
            return {
                switch: sorted(
                    (r.in_port, r.hops, r.tag) for r in records
                )
                for switch, records in builder.reach_index.items()
            }

        hs = HeaderSpace()
        builder = PathTableBuilder(scenario.topo, hs, record_reach=True)
        serial = reach_signature(builder, 1)
        parallel = reach_signature(builder, 3)
        assert parallel == serial

    def test_serial_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERIAL_BUILD", "1")
        scenario = build_linear(3)
        table = PathTableBuilder(scenario.topo, HeaderSpace()).build(workers=4)
        assert table.build_workers == 1

    def test_small_host_crossover_falls_back_and_counts(self, monkeypatch):
        """A host below ``REPRO_BUILD_MIN_CPUS`` builds serially and the
        downgrade lands on ``BUILD_STATS["parallel_fallback"]``."""
        from repro.core.pathtable import BUILD_STATS

        monkeypatch.setenv("REPRO_BUILD_MIN_CPUS", "1024")
        before = BUILD_STATS["parallel_fallback"]
        scenario = build_linear(3)
        table = PathTableBuilder(scenario.topo, HeaderSpace()).build(workers=4)
        assert table.build_workers == 1
        assert BUILD_STATS["parallel_fallback"] == before + 1


class TestDirtyJournal:
    def test_tokens_and_deltas(self):
        table = PathTable()
        token = table.dirty_token()
        table.note_dirty("a", "b")
        table.note_dirty("a", "b")  # deduped in the delta
        table.note_dirty("c", "d")
        token2, dirty = table.dirty_since(token)
        assert dirty == [("a", "b"), ("c", "d")]
        _, nothing = table.dirty_since(token2)
        assert nothing == []

    def test_overflow_invalidates_tokens(self):
        table = PathTable()
        token = table.dirty_token()
        for i in range(5000):
            table.note_dirty(i, i)
        _, dirty = table.dirty_since(token)
        assert dirty is None  # journal overflowed: consumers must resync fully

    def test_foreign_table_token_never_validates(self):
        table = PathTable()
        token = table.dirty_token()
        other = PathTable()
        _, dirty = other.dirty_since(token)
        assert dirty is None

    def test_untracked_touch_marks_all_dirty(self):
        table = PathTable()
        token = table.dirty_token()
        table.touch()
        _, dirty = table.dirty_since(token)
        assert dirty is None

    def test_tracked_touch_preserves_journal(self):
        table = PathTable()
        token = table.dirty_token()
        table.note_dirty("a", "b")
        table.touch(tracked=True)
        _, dirty = table.dirty_since(token)
        assert dirty == [("a", "b")]
