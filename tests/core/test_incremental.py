"""Unit tests for incremental path-table updates (Section 4.4)."""

import pytest

from repro.bdd.headerspace import HeaderSpace, parse_prefix
from repro.core.incremental import (
    IncrementalPathTable,
    LpmProvider,
    PrefixRuleTree,
)
from repro.core.pathtable import PathTableBuilder
from repro.netmodel.rules import DROP_PORT
from repro.topologies import build_internet2, build_linear, internet2_lpm_ruleset
from repro.topologies.base import lpm_ruleset_for


@pytest.fixture
def hs():
    return HeaderSpace()


class TestPrefixRuleTree:
    def test_empty_tree_drops_everything(self, hs):
        tree = PrefixRuleTree(hs, "S")
        preds = tree.port_predicates()
        assert preds[DROP_PORT] == hs.all_match

    def test_add_moves_delta_from_drop(self, hs):
        tree = PrefixRuleTree(hs, "S")
        delta = tree.add(parse_prefix("10.0.0.0/8"), 2)
        assert delta.from_port == DROP_PORT
        assert delta.to_port == 2
        assert delta.delta == hs.prefix("dst_ip", 0x0A000000, 8)

    def test_nested_add_delta_excludes_children(self, hs):
        tree = PrefixRuleTree(hs, "S")
        tree.add(parse_prefix("10.0.1.0/24"), 3)
        delta = tree.add(parse_prefix("10.0.0.0/8"), 2)
        # The /8 match must exclude the pre-existing /24.
        p8 = hs.prefix("dst_ip", 0x0A000000, 8)
        p24 = hs.prefix("dst_ip", 0x0A000100, 24)
        assert delta.delta == hs.bdd.diff(p8, p24)
        assert delta.from_port == DROP_PORT

    def test_child_add_takes_from_parent(self, hs):
        tree = PrefixRuleTree(hs, "S")
        tree.add(parse_prefix("10.0.0.0/8"), 2)
        delta = tree.add(parse_prefix("10.0.1.0/24"), 3)
        assert delta.from_port == 2
        assert delta.to_port == 3

    def test_delete_returns_delta_to_parent(self, hs):
        tree = PrefixRuleTree(hs, "S")
        tree.add(parse_prefix("10.0.0.0/8"), 2)
        tree.add(parse_prefix("10.0.1.0/24"), 3)
        delta = tree.delete(parse_prefix("10.0.1.0/24"))
        assert delta.from_port == 3
        assert delta.to_port == 2

    def test_delete_reattaches_grandchildren(self, hs):
        tree = PrefixRuleTree(hs, "S")
        tree.add(parse_prefix("10.0.0.0/8"), 2)
        tree.add(parse_prefix("10.0.0.0/16"), 3)
        tree.add(parse_prefix("10.0.1.0/24"), 4)
        tree.delete(parse_prefix("10.0.0.0/16"))
        # /24 must now be a child of /8: deleting /8 moves /24's complement.
        node = tree.find(parse_prefix("10.0.0.0/8"))
        assert any(c.prefix == parse_prefix("10.0.1.0/24") for c in node.children)

    def test_duplicate_prefix_rejected(self, hs):
        tree = PrefixRuleTree(hs, "S")
        tree.add(parse_prefix("10.0.0.0/8"), 2)
        with pytest.raises(ValueError):
            tree.add(parse_prefix("10.0.0.0/8"), 3)

    def test_zero_prefix_reserved(self, hs):
        tree = PrefixRuleTree(hs, "S")
        with pytest.raises(ValueError):
            tree.add((0, 0), 1)
        with pytest.raises(ValueError):
            tree.delete((0, 0))

    def test_delete_missing_raises(self, hs):
        with pytest.raises(KeyError):
            PrefixRuleTree(hs, "S").delete(parse_prefix("10.0.0.0/8"))

    def test_port_predicates_partition(self, hs):
        tree = PrefixRuleTree(hs, "S")
        tree.add(parse_prefix("10.0.0.0/8"), 1)
        tree.add(parse_prefix("10.1.0.0/16"), 2)
        tree.add(parse_prefix("192.168.0.0/16"), 3)
        preds = tree.port_predicates()
        union = hs.bdd.or_many(preds.values())
        assert union == hs.all_match
        values = list(preds.values())
        for i, a in enumerate(values):
            for b in values[i + 1 :]:
                assert hs.bdd.and_(a, b) == hs.empty

    def test_len_tracks_rules(self, hs):
        tree = PrefixRuleTree(hs, "S")
        assert len(tree) == 0
        tree.add(parse_prefix("10.0.0.0/8"), 1)
        tree.add(parse_prefix("10.1.0.0/16"), 2)
        assert len(tree) == 2
        tree.delete(parse_prefix("10.0.0.0/8"))
        assert len(tree) == 1


class TestLpmProviderIncrementalPreds:
    def test_incremental_predicates_match_recomputation(self, hs):
        scenario = build_linear(3, install_routes=False)
        provider = LpmProvider(scenario.topo, hs)
        moves = [
            ("S1", "10.0.0.0/24", 2),
            ("S1", "10.0.1.0/24", 1),
            ("S1", "10.0.0.0/16", 2),
            ("S1", "10.0.0.128/25", 1),
        ]
        for switch, prefix, port in moves:
            provider.add_rule(switch, prefix, port)
        provider.delete_rule("S1", "10.0.0.0/24")
        fresh = provider.trees["S1"].port_predicates()
        live = provider.transfer_map("S1", 1)
        for port, pred in fresh.items():
            assert live.get(port, hs.empty) == pred
        # ports without rules stay empty
        for port, pred in live.items():
            if port not in fresh:
                assert pred == hs.empty


def table_signature(table):
    """Canonical comparable form: {(inport, outport, hops): headers_bdd}."""
    return {
        (inport, outport, entry.hops): entry.headers
        for inport, outport, entry in table.all_entries()
    }


class TestIncrementalEqualsRebuild:
    def _check(self, scenario, operations):
        hs = HeaderSpace()
        inc = IncrementalPathTable(scenario.topo, hs)
        for op, switch, prefix, port in operations:
            if op == "add":
                inc.add_rule(switch, prefix, port)
            else:
                inc.delete_rule(switch, prefix)
        sig_incremental = table_signature(inc.table)
        sig_rebuilt = table_signature(
            PathTableBuilder(scenario.topo, hs, provider=inc.provider).build()
        )
        assert sig_incremental == sig_rebuilt

    def test_single_add(self):
        scenario = build_linear(3, install_routes=False)
        self._check(scenario, [("add", "S1", "10.0.0.0/24", 2)])

    def test_route_chain(self):
        scenario = build_linear(3, install_routes=False)
        ruleset = lpm_ruleset_for(scenario.topo, scenario.subnets)
        operations = [
            ("add", switch, prefix, port)
            for switch, rules in sorted(ruleset.items())
            for prefix, port in rules
        ]
        self._check(scenario, operations)

    def test_add_then_delete_restores(self):
        scenario = build_linear(3, install_routes=False)
        operations = [
            ("add", "S1", "10.0.0.0/24", 2),
            ("add", "S2", "10.0.0.0/24", 2),
            ("add", "S1", "10.0.0.0/16", 1),
            ("del", "S1", "10.0.0.0/16", None),
        ]
        self._check(scenario, operations)

    def test_nested_prefixes_on_internet2(self):
        scenario = build_internet2(prefixes_per_pop=1)
        ruleset = internet2_lpm_ruleset(scenario)
        operations = [
            ("add", switch, prefix, port)
            for switch, rules in sorted(ruleset.items())
            for prefix, port in rules
        ]
        # Add nested prefixes on one PoP to exercise tree restructuring.
        operations += [
            ("add", "SEAT", "10.0.0.0/16", 1),
            ("add", "SEAT", "10.0.0.0/26", 2),
            ("del", "SEAT", "10.0.0.0/16", None),
        ]
        self._check(scenario, operations)

    def test_update_time_recorded(self):
        scenario = build_linear(3, install_routes=False)
        inc = IncrementalPathTable(scenario.topo, HeaderSpace())
        elapsed = inc.add_rule("S1", "10.0.0.0/24", 2)
        assert elapsed > 0
        assert inc.last_update_s == elapsed
