"""Unit tests for fault localization (Algorithm 4 and the strawman)."""

import random

import pytest

from repro.core.localization import PathInferLocalizer, StrawmanLocalizer
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork, ModifyRuleOutput, random_misforward_fault
from repro.netmodel.rules import DROP_PORT, Forward
from repro.netmodel.topology import PortRef
from repro.topologies import build_fattree, build_linear


@pytest.fixture
def fattree():
    scenario = build_fattree(4)
    server = VeriDPServer(scenario.topo, scenario.channel, localize_failures=False)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    localizer = PathInferLocalizer(server.builder, server.scheme, scenario.topo)
    return scenario, server, net, localizer


def failed_reports(scenario, server, net):
    """All (delivery, report, verification) triples that fail verification."""
    failures = []
    for src, dst in scenario.host_pairs():
        delivery = net.inject_from_host(src, scenario.header_between(src, dst))
        for report in delivery.reports:
            verification = server.verifier.verify(report)
            if not verification.passed:
                failures.append((delivery, report, verification))
    return failures


class TestPathInfer:
    def test_misforward_recovers_real_path(self, fattree):
        scenario, server, net, localizer = fattree
        rng = random.Random(3)
        fault = random_misforward_fault(net, rng)
        failures = failed_reports(scenario, server, net)
        assert failures, "fault was not exercised; adjust the seed"
        for delivery, report, _ in failures:
            result = localizer.localize(report)
            assert result.recovered
            assert result.contains_path(delivery.hops) or (
                report.ttl_expired and result.contains_prefix_of(delivery.hops)
            )
            assert fault.switch_id in result.blamed_switches()

    def test_drop_fault_localized(self, fattree):
        """Rewire a used edge-switch rule to the drop port; the black-hole
        must be blamed on the right switch."""
        scenario, server, net, localizer = fattree
        # Find a rule actually used by some flow: take the first hop of a ping.
        delivery = net.inject_from_host(
            "h0_0_0", scenario.header_between("h0_0_0", "h3_1_1")
        )
        victim_hop = delivery.hops[1]  # a non-entry switch on the path
        switch = net.switch(victim_hop.switch)
        rule = switch.table.lookup(
            scenario.header_between("h0_0_0", "h3_1_1"), victim_hop.in_port
        )
        ModifyRuleOutput(victim_hop.switch, rule.rule_id, DROP_PORT).apply(net)

        delivery = net.inject_from_host(
            "h0_0_0", scenario.header_between("h0_0_0", "h3_1_1")
        )
        assert delivery.status == "dropped"
        report = delivery.reports[-1]
        verification = server.verifier.verify(report)
        assert not verification.passed
        result = localizer.localize(report)
        assert result.recovered
        assert victim_hop.switch in result.blamed_switches()

    def test_clean_network_reports_pass_without_localization(self, fattree):
        scenario, server, net, localizer = fattree
        assert failed_reports(scenario, server, net) == []


class TestStrawman:
    def test_strawman_blames_a_switch_on_misforward(self, fattree):
        scenario, server, net, _ = fattree
        strawman = StrawmanLocalizer(server.builder, server.scheme)
        rng = random.Random(3)
        fault = random_misforward_fault(net, rng)
        failures = failed_reports(scenario, server, net)
        assert failures
        blamed_any = False
        for _, report, _ in failures:
            result = strawman.localize(report)
            if result.candidates:
                blamed_any = True
        assert blamed_any

    def test_strawman_returns_no_paths(self, fattree):
        """The strawman cannot reconstruct paths, only point a finger."""
        scenario, server, net, _ = fattree
        strawman = StrawmanLocalizer(server.builder, server.scheme)
        random_misforward_fault(net, random.Random(3))
        for _, report, _ in failed_reports(scenario, server, net):
            for candidate in strawman.localize(report).candidates:
                assert candidate.hops == ()


class TestLocalizationResultHelpers:
    def test_blamed_switches_deduplicated(self, fattree):
        from repro.core.localization import CandidatePath, LocalizationResult
        from repro.core.reports import TagReport
        from repro.netmodel.packet import Header

        report = TagReport(PortRef("a", 1), PortRef("b", 1), Header(), 0)
        result = LocalizationResult(report=report)
        from repro.netmodel.hops import Hop

        result.candidates.append(CandidatePath((Hop(1, "S1", 2),), "S1"))
        result.candidates.append(CandidatePath((Hop(1, "S1", 3),), "S1"))
        result.candidates.append(CandidatePath((Hop(1, "S2", 3),), "S2"))
        assert result.blamed_switches() == ["S1", "S2"]

    def test_contains_prefix_of(self, fattree):
        from repro.core.localization import CandidatePath, LocalizationResult
        from repro.core.reports import TagReport
        from repro.netmodel.hops import Hop
        from repro.netmodel.packet import Header

        report = TagReport(PortRef("a", 1), PortRef("b", 1), Header(), 0)
        result = LocalizationResult(report=report)
        result.candidates.append(
            CandidatePath((Hop(1, "S1", 2), Hop(1, "S2", 2)), "S1")
        )
        actual = [Hop(1, "S1", 2), Hop(1, "S2", 2), Hop(1, "S3", 2)]
        assert result.contains_prefix_of(actual)
        assert not result.contains_path(actual)
        assert not result.contains_prefix_of([Hop(9, "S9", 9)])


class TestLinearTopologyLocalization:
    def test_single_path_network_blames_exact_switch(self):
        scenario = build_linear(4)
        server = VeriDPServer(scenario.topo, scenario.channel, localize_failures=False)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        localizer = PathInferLocalizer(server.builder, server.scheme, scenario.topo)
        # Divert H1->H4 traffic at S2 towards S1 (port 3): the packet ping-pongs
        # or exits wrongly; verification must fail and blame S2.
        header = scenario.header_between("H1", "H4")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        delivery = net.inject_from_host("H1", header)
        assert delivery.reports
        report = delivery.reports[-1]
        assert not server.verifier.verify(report).passed
        result = localizer.localize(report)
        assert "S2" in result.blamed_switches()
