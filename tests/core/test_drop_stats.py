"""Drop-key canonicalization: one shim, both spellings, equal numbers.

``dropped_new`` / ``dropped_oldest`` are the canonical queue-drop stats;
``dropped_full_queue`` (and the ``dropped`` rollup) survive only as
compatibility aliases computed by ``drop_stat_aliases`` — THE single
place the legacy spelling is produced.  These tests pin both spellings
on both daemons so neither can silently drift from the other.
"""

from repro.core.daemon import ShardedVeriDPDaemon, VeriDPDaemon
from repro.core.resilience import drop_stat_aliases
from repro.core.server import VeriDPServer
from repro.topologies import build_linear


def make_server():
    scenario = build_linear(4)
    return VeriDPServer(scenario.topo, scenario.channel)


class TestShim:
    def test_aliases_are_derived_from_canonical_keys(self):
        stats = {"dropped_new": 3, "dropped_oldest": 2, "block_timeouts": 1}
        out = drop_stat_aliases(stats)
        assert out is stats  # mutates in place
        assert stats["dropped"] == 6
        assert stats["dropped_full_queue"] == 4  # new + timeouts

    def test_missing_keys_default_to_zero(self):
        stats = drop_stat_aliases({})
        assert stats["dropped_new"] == 0
        assert stats["dropped_oldest"] == 0
        assert stats["block_timeouts"] == 0
        assert stats["dropped"] == 0
        assert stats["dropped_full_queue"] == 0


class TestDaemonSpellings:
    def test_thread_daemon_emits_both_spellings(self):
        with VeriDPDaemon(make_server()) as daemon:
            stats = daemon.stats()
        assert "dropped_new" in stats
        assert "dropped_oldest" in stats
        assert (
            stats["dropped_full_queue"]
            == stats["dropped_new"] + stats["block_timeouts"]
        )
        assert (
            stats["dropped"]
            == stats["dropped_new"]
            + stats["dropped_oldest"]
            + stats["block_timeouts"]
        )

    def test_sharded_daemon_emits_both_spellings(self):
        with ShardedVeriDPDaemon(make_server(), workers=2) as daemon:
            stats = daemon.stats()
        assert "dropped_new" in stats
        assert "dropped_oldest" in stats
        assert (
            stats["dropped_full_queue"]
            == stats["dropped_new"] + stats["block_timeouts"]
        )

    def test_spellings_agree_under_real_drops(self):
        """Overflow a tiny queue: the alias must track the canonical count."""
        scenario = build_linear(4)
        server = VeriDPServer(scenario.topo, scenario.channel)
        daemon = VeriDPDaemon(server, queue_size=2, overflow="drop-new")
        # Not started: the queue only fills, so drops are deterministic.
        for _ in range(16):
            daemon.submit(b"\x00" * 27)
        stats = daemon.stats()
        assert stats["dropped_new"] > 0
        assert stats["dropped_full_queue"] == (
            stats["dropped_new"] + stats["block_timeouts"]
        )
        assert stats["dropped"] >= stats["dropped_new"]
