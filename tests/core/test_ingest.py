"""Tests for the frame-native batched ingestion path (socket -> kernel).

Covers the shared ingest helpers (FrameBuffer, drain_socket, screen_frame,
shard_split), the daemons' ``submit_frame`` fast path, and the batched UDP
listener — including the oversize-datagram detection that replaced the old
magic 2048-byte receive buffer.
"""

import socket
import time

import pytest

from repro.core.daemon import (
    ShardedVeriDPDaemon,
    UdpReportListener,
    VeriDPDaemon,
    _shard_of,
)
from repro.core.ingest import (
    DEFAULT_INGEST_BATCH,
    HAVE_NUMPY,
    FrameBuffer,
    drain_socket,
    screen_frame,
    shard_split,
)
from repro.core.reports import (
    REPORT_SIZE,
    REPORT_VERSION,
    Frame,
    pack_report,
    payload_precheck,
    unpack_report,
)
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork, ModifyRuleOutput
from repro.topologies import build_linear


@pytest.fixture
def rig():
    scenario = build_linear(3)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    return scenario, server, net


def collect_payloads(scenario, net, count=50):
    payloads = []
    pairs = scenario.host_pairs()
    for i in range(count):
        src, dst = pairs[i % len(pairs)]
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        for report in result.reports:
            payloads.append(pack_report(report, net.codec))
    return payloads


def make_row(version=REPORT_VERSION, fill=0x41):
    return bytes([version]) + bytes([fill]) * (REPORT_SIZE - 1)


class TestFrameBuffer:
    def test_accumulates_rows_and_takes_frame(self):
        fb = FrameBuffer(4)
        rows = [make_row(fill=i) for i in range(3)]
        for row in rows:
            fb.slot()[:REPORT_SIZE] = row
            fb.commit()
        assert fb.rows == 3
        assert not fb.full
        assert fb.take() == b"".join(rows)
        assert fb.rows == 0  # reset for the next drain

    def test_full_at_capacity(self):
        fb = FrameBuffer(2)
        for _ in range(2):
            fb.slot()[:REPORT_SIZE] = make_row()
            fb.commit()
        assert fb.full

    def test_slot_is_one_byte_larger_than_a_report(self):
        # The +1 byte is the oversize detector: a longer datagram fills
        # REPORT_SIZE + 1 bytes instead of silently clipping to a report.
        fb = FrameBuffer(1)
        assert len(fb.slot()) == REPORT_SIZE + 1

    def test_slot_bytes_copies_uncommitted_prefix(self):
        fb = FrameBuffer(2)
        fb.slot()[:5] = b"hello"
        assert fb.slot_bytes(5) == b"hello"
        assert fb.rows == 0  # never committed

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FrameBuffer(0)


class TestDrainSocket:
    def make_pair(self):
        rx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        rx.bind(("127.0.0.1", 0))
        tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        return rx, tx

    def send_and_settle(self, tx, rx, payloads):
        for payload in payloads:
            tx.sendto(payload, rx.getsockname())
        # Loopback delivery is fast but not synchronous.
        time.sleep(0.05)

    def test_drains_pending_datagrams_into_frame(self):
        rx, tx = self.make_pair()
        try:
            rows = [make_row(fill=i) for i in range(5)]
            self.send_and_settle(tx, rx, rows)
            rx.setblocking(False)
            fb = FrameBuffer(8)
            count, odd = drain_socket(rx, fb)
            assert count == 5
            assert odd == []
            assert fb.take() == b"".join(rows)
        finally:
            rx.close()
            tx.close()

    def test_odd_sizes_reported_not_committed(self):
        rx, tx = self.make_pair()
        try:
            self.send_and_settle(
                tx, rx, [make_row(), b"short", make_row(), b"x" * 100]
            )
            rx.setblocking(False)
            fb = FrameBuffer(8)
            count, odd = drain_socket(rx, fb)
            assert count == 4
            assert fb.rows == 2
            assert [(p, n) for p, n in odd] == [
                (b"short", 5),
                (b"x" * (REPORT_SIZE + 1), REPORT_SIZE + 1),
            ]
        finally:
            rx.close()
            tx.close()

    def test_limit_stops_the_drain(self):
        rx, tx = self.make_pair()
        try:
            self.send_and_settle(tx, rx, [make_row()] * 6)
            rx.setblocking(False)
            fb = FrameBuffer(16)
            count, _ = drain_socket(rx, fb, limit=4)
            assert count == 4
            assert fb.rows == 4
        finally:
            rx.close()
            tx.close()

    def test_empty_socket_returns_zero(self):
        rx, tx = self.make_pair()
        try:
            rx.setblocking(False)
            count, odd = drain_socket(rx, FrameBuffer(4))
            assert (count, odd) == (0, [])
        finally:
            rx.close()
            tx.close()


class TestScreenFrame:
    def test_all_clean_frame_is_returned_whole(self):
        frame = b"".join(make_row(fill=i) for i in range(4))
        clean, rejected = screen_frame(frame)
        assert clean == frame
        assert rejected == []

    def test_bad_version_rows_rejected_with_scalar_reason(self):
        rows = [make_row(), make_row(version=9), make_row(), make_row(version=0)]
        clean, rejected = screen_frame(b"".join(rows))
        assert clean == rows[0] + rows[2]
        assert [(p, r) for p, r in rejected] == [
            (rows[1], payload_precheck(rows[1])),
            (rows[3], payload_precheck(rows[3])),
        ]

    def test_empty_frame(self):
        assert screen_frame(b"") == (b"", [])

    def test_unaligned_frame_rejected(self):
        with pytest.raises(ValueError, match="not a multiple"):
            screen_frame(b"x" * (REPORT_SIZE + 1))


class TestShardSplit:
    def rows_for(self, n):
        out = []
        for i in range(n):
            row = bytearray(make_row(fill=i % 251))
            row[2:6] = (i * 2654435761 % (1 << 32)).to_bytes(4, "big")
            out.append(bytes(row))
        return out

    def test_matches_scalar_shard_of(self):
        rows = self.rows_for(64)
        for workers in (1, 2, 3, 8):
            chunks = shard_split(b"".join(rows), workers)
            assert len(chunks) == workers
            expected = [[] for _ in range(workers)]
            for row in rows:
                key = int.from_bytes(row[2:6], "big")
                expected[_shard_of(key, workers)].append(row)
            assert chunks == [b"".join(rows) for rows in expected]

    def test_rows_are_partitioned_exactly_once(self):
        rows = self.rows_for(40)
        chunks = shard_split(b"".join(rows), 4)
        scattered = []
        for chunk in chunks:
            assert len(chunk) % REPORT_SIZE == 0
            scattered += [
                chunk[i : i + REPORT_SIZE]
                for i in range(0, len(chunk), REPORT_SIZE)
            ]
        assert sorted(scattered) == sorted(rows)

    def test_single_worker_fast_path(self):
        frame = b"".join(self.rows_for(5))
        assert shard_split(frame, 1) == [frame]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            shard_split(b"", 0)


@pytest.mark.skipif(not HAVE_NUMPY, reason="column extraction requires numpy")
class TestFrameColumns:
    def test_columns_match_unpack_report(self, rig):
        from repro.core.ingest import frame_columns

        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 20)
        cols = frame_columns(b"".join(payloads))
        for i, payload in enumerate(payloads):
            report = unpack_report(payload, net.codec)
            assert int(cols["version"][i]) == REPORT_VERSION
            assert int(cols["tag"][i]) == report.tag
            assert int(cols["src_ip"][i]) == report.header.src_ip
            assert int(cols["dst_ip"][i]) == report.header.dst_ip
            assert int(cols["proto"][i]) == report.header.proto
            assert int(cols["src_port"][i]) == report.header.src_port
            assert int(cols["dst_port"][i]) == report.header.dst_port
            assert int(cols["inport"][i]) == net.codec.encode(report.inport)
            assert int(cols["outport"][i]) == net.codec.encode(report.outport)

    def test_pair_keys_pack_inport_outport(self, rig):
        from repro.core.ingest import pair_keys

        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 10)
        keys = pair_keys(b"".join(payloads))
        for i, payload in enumerate(payloads):
            assert int(keys[i]) == int.from_bytes(payload[2:6], "big")

    def test_dst_ips_column(self, rig):
        from repro.core.ingest import dst_ips

        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 10)
        ips = dst_ips(b"".join(payloads))
        for i, payload in enumerate(payloads):
            assert int(ips[i]) == int.from_bytes(payload[18:22], "big")


class TestDaemonSubmitFrame:
    def test_frame_processes_like_scalars(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 60)
        with VeriDPDaemon(server, workers=2) as daemon:
            admitted = daemon.submit_frame(Frame(b"".join(payloads)))
            assert admitted == len(payloads)
            daemon.join()
            stats = daemon.stats()
        assert stats["processed"] == len(payloads)
        assert stats["verified"] == len(payloads)
        assert stats["frames"] == 1
        assert stats["failed"] == 0
        assert server.incidents == []

    def test_wire_kernel_bulk_passes_large_frames(self, rig):
        pytest.importorskip("numpy")
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 80)
        assert len(payloads) >= 32  # past the vector crossover
        with VeriDPDaemon(server, workers=1) as daemon:
            daemon.submit_frame(Frame(b"".join(payloads)))
            daemon.join()
            stats = daemon.stats()
        assert stats["processed"] == len(payloads)
        assert stats["wire_pass"] > 0  # the fast path actually engaged
        assert stats["verified"] == len(payloads)

    def test_frame_failures_match_scalar_incidents(self, rig):
        """Flagged rows are salvaged through the scalar path: same
        incidents, same counters as per-datagram submission."""
        scenario, server, net = rig
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        bad = []
        for _ in range(40):
            result = net.inject_from_host("H1", header)
            bad += [pack_report(r, net.codec) for r in result.reports]
        with VeriDPDaemon(server, workers=1) as daemon:
            daemon.submit_frame(Frame(b"".join(bad)))
            daemon.join()
            stats = daemon.stats()
        assert stats["failed"] == len(bad)
        assert len(server.incidents) == len(bad)
        assert all("S2" in i.blamed_switches for i in server.incidents)

    def test_malformed_rows_dead_lettered_like_scalars(self, rig):
        scenario, server, net = rig
        good = collect_payloads(scenario, net, 40)
        # A row the precheck passes but the codec cannot decode.
        bad = bytearray(good[0])
        bad[2], bad[3] = 0xFF, 0x00  # switch index way out of range
        rows = good + [bytes(bad)]
        with VeriDPDaemon(server, workers=1) as daemon:
            daemon.submit_frame(Frame(b"".join(rows)))
            daemon.join()
            stats = daemon.stats()
        assert stats["processed"] == len(good)
        assert stats["malformed"] == 1
        assert stats["dead_lettered"] == 1

    def test_empty_frame_is_a_noop(self, rig):
        _, server, _ = rig
        with VeriDPDaemon(server, workers=1) as daemon:
            assert daemon.submit_frame(Frame(b"")) == 0
            assert daemon.stats()["frames"] == 0

    def test_partial_admission_counts_refused_rows(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 10)
        daemon = VeriDPDaemon(server, workers=1, queue_size=4)
        # Not started: the queue fills, the frame is split at the bound.
        admitted = daemon.submit_frame(Frame(b"".join(payloads)))
        assert admitted == 4
        stats = daemon.stats()
        assert stats["dropped"] == len(payloads) - 4
        assert stats["submitted"] == len(payloads)
        daemon.start()
        daemon.join()
        daemon.stop()
        assert daemon.stats()["processed"] == 4

    def test_sharded_submit_frame(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 60)
        with ShardedVeriDPDaemon(server, workers=2, batch_size=16) as daemon:
            admitted = daemon.submit_frame(Frame(b"".join(payloads)))
            assert admitted == len(payloads)
            daemon.join()
            stats = daemon.stats()
        assert stats["processed"] == len(payloads)
        assert stats["verified"] == len(payloads)
        assert stats["failed"] == 0
        assert server.incidents == []

    def test_sharded_frame_and_scalar_stats_agree(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 30)
        with ShardedVeriDPDaemon(server, workers=2) as framed:
            framed.submit_frame(Frame(b"".join(payloads)))
            framed.join()
        scenario2 = build_linear(3)
        server2 = VeriDPServer(scenario2.topo, scenario2.channel)
        net2 = DataPlaneNetwork(scenario2.topo, scenario2.channel)
        with ShardedVeriDPDaemon(server2, workers=2) as scalar:
            for payload in payloads:
                scalar.submit(payload)
            scalar.join()
        f, s = framed.stats(), scalar.stats()
        for key in ("processed", "verified", "failed", "malformed", "submitted"):
            assert f[key] == s[key], key


class SenderMixin:
    def blast(self, listener, payloads):
        sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            for payload in payloads:
                sender.sendto(payload, listener.address)
        finally:
            sender.close()

    def await_received(self, listener, count, timeout=5.0):
        deadline = time.time() + timeout
        while listener.received < count and time.time() < deadline:
            time.sleep(0.01)


class TestBatchedListener(SenderMixin):
    def test_reports_arrive_through_the_batched_path(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 40)
        with VeriDPDaemon(server, workers=2) as daemon:
            with UdpReportListener(daemon, ingest_batch=16) as listener:
                assert listener.ingest_batch == 16
                self.blast(listener, payloads)
                self.await_received(listener, len(payloads))
                daemon.join()
                assert listener.received == len(payloads)
        stats = daemon.stats()
        assert stats["processed"] == len(payloads)
        assert stats["frames"] >= 1  # the handoff really used frames
        assert server.incidents == []

    def test_default_batch_size(self, rig):
        _, server, _ = rig
        daemon = VeriDPDaemon(server, workers=1)
        listener = UdpReportListener(daemon)
        assert listener.ingest_batch == DEFAULT_INGEST_BATCH

    def test_oversize_datagram_detected_and_dead_lettered(self, rig):
        """Satellite: the receive slot is REPORT_SIZE-derived, so a datagram
        longer than a report is *detected* as a kernel truncation — counted,
        dead-lettered — never silently clipped to 27 plausible bytes."""
        scenario, server, net = rig
        good = collect_payloads(scenario, net, 3)
        oversized = good[0] + b"trailing-garbage"
        with VeriDPDaemon(server, workers=1) as daemon:
            with UdpReportListener(daemon, ingest_batch=8) as listener:
                self.blast(listener, [oversized] + good)
                self.await_received(listener, 4)
                daemon.join()
                assert listener.oversize == 1
                assert listener.stats()["oversize"] == 1
        stats = daemon.stats()
        assert stats["processed"] == len(good)
        assert stats["malformed"] == 1
        letters = list(daemon.dead_letters._pending)
        assert any("oversize" in l.error for l in letters)

    def test_oversize_metric_exported(self, rig):
        scenario, server, net = rig
        with VeriDPDaemon(server, workers=1) as daemon:
            with UdpReportListener(daemon, ingest_batch=8) as listener:
                self.blast(listener, [b"x" * 200])
                self.await_received(listener, 1)
                snapshot = daemon.obs.registry.snapshot()
                assert snapshot.value("veridp_listener_oversize_total") == 1

    def test_scalar_loop_detects_oversize_too(self, rig):
        """ingest_batch=1 keeps the legacy loop but not the magic 2048
        buffer: oversize detection works identically."""
        scenario, server, net = rig
        good = collect_payloads(scenario, net, 2)
        with VeriDPDaemon(server, workers=1) as daemon:
            with UdpReportListener(daemon, ingest_batch=1) as listener:
                self.blast(listener, [good[0] + b"!!"] + good)
                self.await_received(listener, 3)
                daemon.join()
                assert listener.oversize == 1
        assert daemon.stats()["processed"] == len(good)

    def test_undersize_and_bad_version_counted_as_wrong_size(self, rig):
        scenario, server, net = rig
        good = collect_payloads(scenario, net, 3)
        bad_version = bytearray(good[0])
        bad_version[0] = 99
        with VeriDPDaemon(server, workers=1) as daemon:
            with UdpReportListener(daemon, ingest_batch=8) as listener:
                self.blast(listener, [b"tiny", bytes(bad_version)] + good)
                self.await_received(listener, 5)
                daemon.join()
                assert listener.wrong_size == 2
                assert listener.oversize == 0
        stats = daemon.stats()
        assert stats["processed"] == len(good)
        assert stats["malformed"] == 2

    def test_backpressure_drops_counted_per_report(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 10)
        daemon = VeriDPDaemon(server, workers=1, queue_size=2)
        # Daemon not started: the queue fills after 2 reports.
        with UdpReportListener(daemon, ingest_batch=64) as listener:
            self.blast(listener, payloads)
            self.await_received(listener, len(payloads))
            deadline = time.time() + 5
            while listener.dropped < len(payloads) - 2 and time.time() < deadline:
                time.sleep(0.01)
            assert listener.received == len(payloads)
            assert listener.dropped == len(payloads) - 2
        daemon.stop()

    def test_stop_is_prompt_in_batched_mode(self, rig):
        _, server, _ = rig
        daemon = VeriDPDaemon(server, workers=1)
        daemon.start()
        listener = UdpReportListener(daemon, ingest_batch=32)
        listener.start()
        time.sleep(0.05)
        start = time.time()
        listener.stop()
        assert time.time() - start < 2.0
        daemon.stop()

    def test_rejects_batch_below_one(self, rig):
        _, server, _ = rig
        daemon = VeriDPDaemon(server, workers=1)
        listener = UdpReportListener(daemon, ingest_batch=0)
        assert listener.ingest_batch == 1  # clamped to the scalar loop
