"""Tests for the compiled-matcher verification fast path.

Covers the four fast-path layers: flat-compiled BDD matchers, tag-first
candidate ordering with the per-flow cache, batch verification, and
coherence with ``core.incremental`` updates (the caches must observe rule
adds/deletes and rebuild, never serve stale verdicts).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.timing import check_fastpath_parity, reports_from_table
from repro.bdd.engine import FALSE, TRUE
from repro.bdd.headerspace import HeaderSpace
from repro.core.incremental import IncrementalPathTable
from repro.core.pathtable import PathTableBuilder
from repro.core.reports import TagReport
from repro.core.verifier import Verdict, Verifier
from repro.netmodel.packet import Header
from repro.topologies import build_figure5, build_linear
from repro.topologies.base import lpm_ruleset_for

headers = st.builds(
    Header,
    src_ip=st.integers(min_value=0, max_value=(1 << 32) - 1),
    dst_ip=st.integers(min_value=0, max_value=(1 << 32) - 1),
    proto=st.integers(min_value=0, max_value=255),
    src_port=st.integers(min_value=0, max_value=65535),
    dst_port=st.integers(min_value=0, max_value=65535),
)


@pytest.fixture(scope="module")
def figure5():
    scenario = build_figure5()
    hs = HeaderSpace()
    builder = PathTableBuilder(scenario.topo, hs)
    table = builder.build()
    table.compile_matchers(hs)
    return scenario, hs, builder, table


class TestFlatBDD:
    def test_terminals(self):
        hs = HeaderSpace()
        assert hs.bdd.compile_flat(FALSE).evaluate_value(0) is False
        assert hs.bdd.compile_flat(TRUE).evaluate_value(0) is True

    @given(headers)
    @settings(max_examples=200, deadline=None)
    def test_flat_evaluation_matches_recursive_contains(self, header):
        """compile_flat + header_value agree with the recursive reference
        on an asymmetric predicate exercising every field."""
        hs = HeaderSpace()
        f = hs.bdd.and_(
            hs.prefix("dst_ip", 0x0A000000, 8),
            hs.bdd.or_(hs.exact("proto", 6), hs.range_("dst_port", 22, 80)),
        )
        flat = hs.bdd.compile_flat(f)
        as_dict = header.as_dict()
        assert flat.evaluate_value(hs.header_value(as_dict)) == hs.contains(f, as_dict)

    def test_entry_matchers_match_entry_headers(self, figure5):
        _, hs, builder, table = figure5
        for _, _, entry in table.all_entries():
            flat = entry.compiled_matcher(hs)
            assert flat.source == entry.exit_header_set()
            header = hs.sample_header(entry.headers)
            assert header is not None
            assert flat.evaluate_value(hs.header_value(header))


class TestFastSlowParity:
    def test_parity_on_table_reports(self, figure5):
        _, hs, builder, table = figure5
        reports = reports_from_table(builder, table)
        assert reports
        assert check_fastpath_parity(builder, table, reports) == []

    def test_parity_on_tampered_reports(self, figure5):
        """Wrong tags, wrong pairs and alien headers must fail identically."""
        _, hs, builder, table = figure5
        reports = reports_from_table(builder, table)
        tampered = [
            TagReport(r.inport, r.outport, r.header, r.tag ^ 0x5A5A) for r in reports
        ]
        tampered += [
            TagReport(r.outport, r.inport, r.header, r.tag) for r in reports
        ]
        assert check_fastpath_parity(builder, table, tampered) == []

    @given(headers, st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=150, deadline=None)
    def test_parity_on_random_reports(self, figure5, header, tag):
        """Property: on arbitrary (header, tag) reports over every known
        pair, the compiled fast path returns the exact verdict and matched
        entry of the recursive-BDD reference."""
        _, hs, builder, table = figure5
        fast = Verifier(table, hs, fast_path=True)
        slow = Verifier(table, hs, fast_path=False)
        for inport, outport in table.pairs():
            report = TagReport(inport, outport, header, tag)
            f = fast.verify(report)
            s = slow.verify(report)
            assert f.verdict is s.verdict
            assert f.matched_entry is s.matched_entry


class TestVerifyBatch:
    def test_batch_matches_sequential_verdicts(self, figure5):
        _, hs, builder, table = figure5
        reports = reports_from_table(builder, table)
        bad = TagReport(
            reports[0].inport, reports[0].outport, reports[0].header, reports[0].tag ^ 1
        )
        mixed = reports + [bad]
        batch = Verifier(table, hs).verify_batch(mixed)
        sequential = [Verifier(table, hs).verify(r).verdict for r in mixed]
        assert batch.verdicts == sequential
        assert batch.reports == len(mixed)
        assert batch.passed_count == len(reports)
        assert not batch.all_passed
        assert batch.elapsed_s > 0
        assert batch.mean_us > 0

    def test_batch_failures_carry_context(self, figure5):
        _, hs, builder, table = figure5
        reports = reports_from_table(builder, table)
        bad = TagReport(
            reports[0].inport, reports[0].outport, reports[0].header, reports[0].tag ^ 1
        )
        batch = Verifier(table, hs).verify_batch(reports + [bad])
        assert len(batch.failures) == 1
        result = batch.failures[0]
        assert result.report is bad
        assert result.verdict is Verdict.FAIL_TAG_MISMATCH
        assert result.expected_tag == reports[0].tag

    def test_batch_counts_sum_to_reports(self, figure5):
        _, hs, builder, table = figure5
        reports = reports_from_table(builder, table)
        batch = Verifier(table, hs).verify_batch(reports)
        assert sum(batch.counts.values()) == batch.reports
        assert batch.counts[Verdict.PASS] == len(reports)

    def test_batch_feeds_verifier_counters(self, figure5):
        _, hs, builder, table = figure5
        reports = reports_from_table(builder, table)
        verifier = Verifier(table, hs)
        verifier.verify_batch(reports)
        assert verifier.verified_count == len(reports)
        assert verifier.failure_count == 0
        assert verifier.mean_verification_time_s() > 0

    def test_empty_batch(self, figure5):
        _, hs, builder, table = figure5
        batch = Verifier(table, hs).verify_batch([])
        assert batch.reports == 0
        assert batch.all_passed
        assert batch.mean_us == 0.0


class TestFlowCache:
    def test_repeat_verifications_hit_cache(self, figure5):
        _, hs, builder, table = figure5
        reports = reports_from_table(builder, table)
        verifier = Verifier(table, hs, fast_path=True)
        verifier.verify_batch(reports)
        assert verifier.flow_cache_hits == 0
        verifier.verify_batch(reports)
        assert verifier.flow_cache_hits == len(reports)
        assert verifier.flow_cache_len == len(reports)

    def test_cache_is_bounded_fifo(self, figure5):
        _, hs, builder, table = figure5
        reports = reports_from_table(builder, table)
        assert len(reports) > 2
        verifier = Verifier(table, hs, fast_path=True, flow_cache_size=2)
        verifier.verify_batch(reports)
        assert verifier.flow_cache_len <= 2

    def test_cache_disabled(self, figure5):
        _, hs, builder, table = figure5
        reports = reports_from_table(builder, table)
        verifier = Verifier(table, hs, fast_path=True, flow_cache_size=0)
        verifier.verify_batch(reports)
        verifier.verify_batch(reports)
        assert verifier.flow_cache_len == 0
        assert verifier.flow_cache_hits == 0

    def test_explicit_invalidation(self, figure5):
        _, hs, builder, table = figure5
        reports = reports_from_table(builder, table)
        verifier = Verifier(table, hs, fast_path=True)
        verifier.verify_batch(reports)
        verifier.invalidate_fast_path()
        assert verifier.flow_cache_len == 0


class TestIncrementalCoherence:
    """The fast path must observe ``core.incremental`` rule changes."""

    def _rig(self):
        scenario = build_linear(3, install_routes=False)
        hs = HeaderSpace()
        inc = IncrementalPathTable(scenario.topo, hs)
        ruleset = lpm_ruleset_for(scenario.topo, scenario.subnets)
        for switch, rules in sorted(ruleset.items()):
            for prefix, port in rules:
                inc.add_rule(switch, prefix, port)
        inc.table.compile_matchers(hs)
        return scenario, hs, inc, ruleset

    def _sample_reports(self, hs, table):
        reports = []
        for inport, outport, entry in table.all_entries():
            header = hs.sample_header(entry.headers)
            if header is not None:
                reports.append(TagReport(inport, outport, Header(**header), entry.tag))
        return reports

    def test_rule_changes_bump_table_version(self):
        scenario, hs, inc, ruleset = self._rig()
        v0 = inc.table.version
        inc.delete_rule("S3", ruleset["S3"][0][0])
        v1 = inc.table.version
        assert v1 > v0
        inc.add_rule("S3", *ruleset["S3"][0])
        assert inc.table.version > v1

    def test_stale_cache_never_served_after_delete(self):
        scenario, hs, inc, ruleset = self._rig()
        reports = self._sample_reports(hs, inc.table)
        assert reports
        verifier = Verifier(inc.table, hs, fast_path=True)
        batch = verifier.verify_batch(reports)
        assert batch.all_passed
        verifier.verify_batch(reports)  # populate + hit the flow cache
        assert verifier.flow_cache_hits > 0

        # Remove the last-hop route: the old reports describe paths that no
        # longer exist, so serving cached PASSes would be a stale verdict.
        prefix, _ = ruleset["S3"][0]
        inc.delete_rule("S3", prefix)
        slow = Verifier(inc.table, hs, fast_path=False)
        for report in reports:
            f = verifier.verify(report)
            s = slow.verify(report)
            assert f.verdict is s.verdict
            assert f.matched_entry is s.matched_entry
        assert any(not verifier.verify(r).passed for r in reports)

    def test_readd_restores_pass_through_fast_path(self):
        scenario, hs, inc, ruleset = self._rig()
        reports = self._sample_reports(hs, inc.table)
        verifier = Verifier(inc.table, hs, fast_path=True)
        prefix, port = ruleset["S3"][0]
        inc.delete_rule("S3", prefix)
        verifier.verify_batch(reports)  # caches verdicts against deleted state
        inc.add_rule("S3", prefix, port)
        batch = verifier.verify_batch(reports)
        assert batch.all_passed

    def test_compiled_matchers_rebuilt_after_update(self):
        """Per-entry flat matchers self-heal when the entry's header set is
        mutated in place by the incremental updater."""
        scenario, hs, inc, ruleset = self._rig()
        before = {
            id(entry): entry.compiled_matcher(hs).source
            for _, _, entry in inc.table.all_entries()
        }
        prefix, port = ruleset["S1"][0]
        inc.delete_rule("S1", prefix)
        inc.add_rule("S1", prefix, port)
        for _, _, entry in inc.table.all_entries():
            flat = entry.compiled_matcher(hs)
            assert flat.source == entry.exit_header_set()
        # at least the parity invariant: verdicts equal slow path
        reports = self._sample_reports(hs, inc.table)
        fast = Verifier(inc.table, hs, fast_path=True)
        slow = Verifier(inc.table, hs, fast_path=False)
        for report in reports:
            assert fast.verify(report).verdict is slow.verify(report).verdict
