"""Unit tests for the VeriDP server."""

import pytest

from repro.core.server import VeriDPServer
from repro.core.verifier import Verdict
from repro.dataplane import DataPlaneNetwork, DropRuleInstall, ModifyRuleOutput
from repro.netmodel.rules import FlowRule, Forward, Match
from repro.topologies import build_linear


@pytest.fixture
def wired():
    scenario = build_linear(3)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )
    return scenario, server, net


class TestHealthyOperation:
    def test_all_pings_pass(self, wired):
        scenario, server, net = wired
        for src, dst in scenario.host_pairs():
            net.inject_from_host(src, scenario.header_between(src, dst))
        stats = server.stats()
        assert stats["failed"] == 0
        assert stats["verified"] == len(scenario.host_pairs())
        assert server.incidents == []

    def test_stats_shape(self, wired):
        _, server, _ = wired
        stats = server.stats()
        assert {
            "verified",
            "passed",
            "failed",
            "incidents",
            "path_table_pairs",
            "path_table_paths",
            "avg_path_length",
        } <= set(stats)


class TestFaultDetection:
    def test_misforward_creates_incident_with_blame(self, wired):
        scenario, server, net = wired
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        net.inject_from_host("H1", header)
        assert len(server.incidents) >= 1
        incident = server.incidents[0]
        assert not incident.verification.passed
        assert "S2" in incident.blamed_switches
        assert "S2" in str(incident)

    def test_localization_can_be_disabled(self):
        scenario = build_linear(3)
        server = VeriDPServer(scenario.topo, scenario.channel, localize_failures=False)
        net = DataPlaneNetwork(
            scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
        )
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        net.inject_from_host("H1", header)
        assert server.incidents
        assert server.incidents[0].localization is None
        assert server.incidents[0].blamed_switches == []

    def test_drain_incidents(self, wired):
        scenario, server, net = wired
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        net.inject_from_host("H1", header)
        drained = server.drain_incidents()
        assert drained
        assert server.incidents == []


class TestRuleChurn:
    def test_rule_add_triggers_lazy_rebuild(self, wired):
        scenario, server, net = wired
        pairs_before = server.stats()["path_table_pairs"]
        # A new subnet routed to H1's port on S1 via all switches.
        scenario.controller.install_destination_routes({"H1": "192.168.0.0/24"})
        assert server.refresh_if_dirty()
        # Traffic to the new subnet now verifies end-to-end.
        header = scenario.header_between("H3", "H1").with_(dst_ip=0xC0A80001)
        delivery = net.inject_from_host("H3", header)
        assert delivery.status == "delivered"
        incident = server.incidents
        assert incident == []
        assert server.stats()["path_table_paths"] >= pairs_before

    def test_refresh_noop_when_clean(self, wired):
        _, server, _ = wired
        server.refresh_if_dirty()  # flush whatever construction left
        assert server.refresh_if_dirty() is False

    def test_force_rebuild(self, wired):
        _, server, _ = wired
        before = server.stats()["path_table_paths"]
        server.force_rebuild()
        assert server.stats()["path_table_paths"] == before

    def test_silent_install_failure_detected(self):
        """The paper's core scenario: a FlowMod the switch never applied."""
        scenario = build_linear(3, install_routes=False)
        server = VeriDPServer(scenario.topo, scenario.channel)
        net = DataPlaneNetwork(
            scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
        )
        # Blacklist the *next* install on S2 for the H3 route.
        # Install all routes; capture the S2->H3 rule id by scanning afterwards.
        scenario.controller.install_destination_routes(scenario.subnets)
        header = scenario.header_between("H1", "H3")
        rule = scenario.topo.switch("S2").flow_table.lookup(header, 3)
        DropRuleInstall("S2", rule.rule_id).apply(net)
        # Re-send the rule as a MODIFY: the switch silently ignores it, but
        # first delete it from the physical table to model "never installed".
        net.switch("S2").external_delete(rule.rule_id)
        delivery = net.inject_from_host("H1", header)
        assert delivery.status == "dropped"
        assert len(server.incidents) == 1
        assert not server.incidents[0].verification.passed


class TestReportBytesPath:
    def test_bytes_and_object_paths_agree(self, wired):
        scenario, server, net = wired
        header = scenario.header_between("H1", "H2")
        delivery = net.inject_from_host("H1", header)
        report = delivery.reports[0]
        direct = server.receive_report(report)
        assert direct.verification.verdict is Verdict.PASS


class TestLocalizationCache:
    def test_repeated_identical_failures_hit_cache(self, wired):
        scenario, server, net = wired
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        for _ in range(5):
            net.inject_from_host("H1", header)
        assert len(server.incidents) == 5
        assert server.localization_cache_hits == 4
        # Every incident still carries the (shared) localization evidence.
        assert all("S2" in i.blamed_switches for i in server.incidents)

    def test_distinct_failures_miss_cache(self, wired):
        scenario, server, net = wired
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        net.inject_from_host("H1", header)
        net.inject_from_host("H1", header.with_(src_port=4242))
        assert server.localization_cache_hits == 0

    def test_cache_invalidated_by_rule_change(self, wired):
        scenario, server, net = wired
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        net.inject_from_host("H1", header)
        # Any FlowMod marks the server dirty; the next report rebuilds and
        # must re-localize rather than reuse stale candidates.
        from repro.netmodel.rules import FlowRule, Forward, Match

        scenario.controller.install(
            "S1", FlowRule(50, Match.build(dst="99.0.0.0/8"), Forward(2))
        )
        net.inject_from_host("H1", header)
        assert server.localization_cache_hits == 0
