"""Tests for the concurrent daemon and UDP listener."""

import socket
import threading
import time

import pytest

from repro.core.daemon import (
    ShardedVeriDPDaemon,
    UdpReportListener,
    VeriDPDaemon,
    _shard_of,
    build_shard_specs,
)
from repro.core.reports import pack_report
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork, ModifyRuleOutput
from repro.topologies import build_linear


@pytest.fixture
def rig():
    scenario = build_linear(3)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    return scenario, server, net


def collect_payloads(scenario, net, count=50):
    """Wire-format reports from healthy all-pairs traffic."""
    payloads = []
    pairs = scenario.host_pairs()
    for i in range(count):
        src, dst = pairs[i % len(pairs)]
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        for report in result.reports:
            payloads.append(pack_report(report, net.codec))
    return payloads


class TestDaemon:
    def test_processes_all_submitted(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 60)
        with VeriDPDaemon(server, workers=3) as daemon:
            for payload in payloads:
                assert daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["processed"] == len(payloads)
        assert stats["verified"] == len(payloads)
        assert stats["failed"] == 0
        assert server.incidents == []

    def test_detects_failures_concurrently(self, rig):
        scenario, server, net = rig
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        bad_payloads = []
        for _ in range(10):
            result = net.inject_from_host("H1", header)
            bad_payloads += [pack_report(r, net.codec) for r in result.reports]
        with VeriDPDaemon(server, workers=4) as daemon:
            for payload in bad_payloads:
                daemon.submit(payload)
            daemon.join()
        assert len(server.incidents) == len(bad_payloads)
        assert all("S2" in i.blamed_switches for i in server.incidents)

    def test_malformed_payload_counted_not_fatal(self, rig):
        scenario, server, net = rig
        good = collect_payloads(scenario, net, 5)
        with VeriDPDaemon(server, workers=2) as daemon:
            daemon.submit(b"\x00garbage")
            for payload in good:
                daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["malformed"] == 1
        assert stats["processed"] == len(good)

    def test_queue_full_drops_counted(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 5)
        daemon = VeriDPDaemon(server, workers=1, queue_size=2)
        # Not started: the queue fills and overflow is reported.
        accepted = sum(daemon.submit(p) for p in payloads)
        assert accepted == 2
        assert daemon.stats()["dropped"] == len(payloads) - 2
        daemon.start()
        daemon.join()
        daemon.stop()

    def test_concurrent_producers(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 40)
        with VeriDPDaemon(server, workers=4, queue_size=10_000) as daemon:
            def produce(chunk):
                for payload in chunk:
                    daemon.submit(payload)

            threads = [
                threading.Thread(target=produce, args=(payloads[i::4],))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            daemon.join()
            assert daemon.stats()["processed"] == len(payloads)

    def test_pause_and_refresh(self, rig):
        scenario, server, net = rig
        with VeriDPDaemon(server, workers=2) as daemon:
            # A rule change makes the server dirty; refresh under quiesce.
            from repro.netmodel.rules import FlowRule, Forward, Match

            scenario.controller.install(
                "S1", FlowRule(50, Match.build(dst="99.0.0.0/8"), Forward(2))
            )
            assert daemon.pause_and_refresh() is True
            # Still processes correctly afterwards.
            for payload in collect_payloads(scenario, net, 5):
                daemon.submit(payload)
            daemon.join()
            assert daemon.stats()["failed"] == 0

    def test_requires_workers(self, rig):
        _, server, _ = rig
        with pytest.raises(ValueError):
            VeriDPDaemon(server, workers=0)

    def test_start_stop_idempotent(self, rig):
        _, server, _ = rig
        daemon = VeriDPDaemon(server)
        daemon.start()
        daemon.start()
        daemon.stop()
        daemon.stop()


class TestShardedDaemon:
    def test_processes_all_submitted(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 60)
        with ShardedVeriDPDaemon(server, workers=2, batch_size=16) as daemon:
            for payload in payloads:
                assert daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["processed"] == len(payloads)
        assert stats["verified"] == len(payloads)
        assert stats["failed"] == 0
        assert stats["mode"] == "process"
        assert server.incidents == []

    def test_detects_failures_and_localizes_on_parent(self, rig):
        scenario, server, net = rig
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        bad_payloads = []
        for _ in range(6):
            result = net.inject_from_host("H1", header)
            bad_payloads += [pack_report(r, net.codec) for r in result.reports]
        with ShardedVeriDPDaemon(server, workers=2) as daemon:
            for payload in bad_payloads:
                daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["failed"] == len(bad_payloads)
        assert len(server.incidents) == len(bad_payloads)
        assert all("S2" in i.blamed_switches for i in server.incidents)

    def test_malformed_payload_counted_not_fatal(self, rig):
        scenario, server, net = rig
        good = collect_payloads(scenario, net, 5)
        with ShardedVeriDPDaemon(server, workers=2) as daemon:
            daemon.submit(b"\x00garbage")
            for payload in good:
                daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["malformed"] == 1
        assert stats["processed"] == len(good)

    def test_stats_match_thread_daemon(self, rig):
        """Same payloads, same verdict counters in both execution modes."""
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 30)
        with ShardedVeriDPDaemon(server, workers=3) as sharded:
            for payload in payloads:
                sharded.submit(payload)
            sharded.join()
        scenario2 = build_linear(3)
        server2 = VeriDPServer(scenario2.topo, scenario2.channel)
        with VeriDPDaemon(server2, workers=3) as threaded:
            for payload in payloads:
                threaded.submit(payload)
            threaded.join()
        s, t = sharded.stats(), threaded.stats()
        for key in ("processed", "verified", "failed", "malformed"):
            assert s[key] == t[key], key

    def test_pause_and_refresh(self, rig):
        scenario, server, net = rig
        with ShardedVeriDPDaemon(server, workers=2) as daemon:
            from repro.netmodel.rules import FlowRule, Forward, Match

            scenario.controller.install(
                "S1", FlowRule(50, Match.build(dst="99.0.0.0/8"), Forward(2))
            )
            assert daemon.pause_and_refresh() is True
            for payload in collect_payloads(scenario, net, 5):
                daemon.submit(payload)
            daemon.join()
            assert daemon.stats()["failed"] == 0

    def test_requires_workers(self, rig):
        _, server, _ = rig
        with pytest.raises(ValueError):
            ShardedVeriDPDaemon(server, workers=0)

    def test_submit_requires_running(self, rig):
        _, server, _ = rig
        daemon = ShardedVeriDPDaemon(server, workers=1)
        with pytest.raises(RuntimeError):
            daemon.submit(b"x" * 26)

    def test_shard_specs_cover_every_pair_once(self, rig):
        scenario, server, net = rig
        server.refresh_if_dirty()
        for workers in (1, 2, 4):
            specs = build_shard_specs(server.table, server.hs, server.codec, workers)
            keys = [key for spec in specs for key in spec]
            assert len(keys) == len(set(keys)) == len(server.table.pairs())
            for key in keys:
                wire_key = (key[0] << 16) | key[1]
                owner = _shard_of(wire_key, workers)
                assert key in specs[owner]


class TestUdpListener:
    def test_reports_arrive_over_the_wire(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 20)
        with VeriDPDaemon(server, workers=2) as daemon:
            with UdpReportListener(daemon) as listener:
                sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                for payload in payloads:
                    sender.sendto(payload, listener.address)
                sender.close()
                deadline = time.time() + 5
                while listener.received < len(payloads) and time.time() < deadline:
                    time.sleep(0.01)
                daemon.join()
                assert listener.received == len(payloads)
        assert daemon.stats()["processed"] == len(payloads)
        assert server.incidents == []

    def test_failure_detected_over_the_wire(self, rig):
        scenario, server, net = rig
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        result = net.inject_from_host("H1", header)
        payload = pack_report(result.reports[0], net.codec)
        with VeriDPDaemon(server, workers=1) as daemon:
            with UdpReportListener(daemon) as listener:
                sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                sender.sendto(payload, listener.address)
                sender.close()
                deadline = time.time() + 5
                while not server.incidents and time.time() < deadline:
                    time.sleep(0.01)
        assert server.incidents
        assert "S2" in server.incidents[0].blamed_switches

    def test_listener_survives_garbage_datagrams(self, rig):
        scenario, server, net = rig
        good = collect_payloads(scenario, net, 3)
        with VeriDPDaemon(server, workers=1) as daemon:
            with UdpReportListener(daemon) as listener:
                sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                sender.sendto(b"not a report", listener.address)
                for payload in good:
                    sender.sendto(payload, listener.address)
                sender.close()
                deadline = time.time() + 5
                while listener.received < 4 and time.time() < deadline:
                    time.sleep(0.01)
                daemon.join()
        stats = daemon.stats()
        assert stats["processed"] == len(good)
        assert stats["malformed"] == 1


# ---------------------------------------------------------------------------
# resilience layer
# ---------------------------------------------------------------------------

from repro.core.reports import ReportDecodeError, unpack_report
from repro.core.resilience import OverflowPolicy, RestartBackoff
from repro.dataplane import KillSwitch, StaleReplica, WorkerKill
from repro.netmodel.rules import FlowRule, Forward, Match

FAST_BACKOFF = dict(
    poll_interval=0.02,
    backoff=RestartBackoff(base=0.01, factor=2.0, cap=0.05),
)


class TestBackpressurePolicies:
    def test_dropped_full_queue_stat(self, rig):
        """Satellite: a full queue is a counted event, not just a False."""
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 5)
        daemon = VeriDPDaemon(server, workers=1, queue_size=2)
        accepted = sum(daemon.submit(p) for p in payloads)
        assert accepted == 2
        stats = daemon.stats()
        assert stats["dropped_full_queue"] == len(payloads) - 2
        assert stats["dropped"] == stats["dropped_full_queue"]
        assert stats["overflow_policy"] == "drop-new"
        daemon.start()
        daemon.join()
        daemon.stop()

    def test_drop_oldest_keeps_newest(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 6)
        daemon = VeriDPDaemon(
            server, workers=1, queue_size=2, overflow="drop-oldest"
        )
        for payload in payloads:
            assert daemon.submit(payload)  # always admitted
        stats = daemon.stats()
        assert stats["dropped_oldest"] == len(payloads) - 2
        assert stats["dropped_full_queue"] == 0
        daemon.start()
        daemon.join()
        daemon.stop()
        assert daemon.stats()["processed"] == 2

    def test_block_policy_waits_for_workers(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 30)
        with VeriDPDaemon(
            server, workers=2, queue_size=4, overflow=OverflowPolicy.BLOCK
        ) as daemon:
            for payload in payloads:
                assert daemon.submit(payload)  # blocks instead of dropping
            daemon.join()
            stats = daemon.stats()
        assert stats["processed"] == len(payloads)
        assert stats["dropped"] == 0

    def test_block_timeout_counts_as_drop(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 3)
        daemon = VeriDPDaemon(
            server, workers=1, queue_size=1, overflow="block",
            submit_timeout=0.01,
        )
        # Not started: the queue stays full, so later submits time out.
        results = [daemon.submit(p) for p in payloads]
        assert results[0] is True and not any(results[1:])
        stats = daemon.stats()
        assert stats["block_timeouts"] == 2
        assert stats["dropped_full_queue"] == 2
        daemon.start()
        daemon.join()
        daemon.stop()

    def test_unknown_policy_rejected(self, rig):
        _, server, _ = rig
        with pytest.raises(ValueError, match="unknown overflow policy"):
            VeriDPDaemon(server, overflow="yolo")

    def test_sharded_rejects_drop_oldest(self, rig):
        _, server, _ = rig
        with pytest.raises(ValueError, match="drop-oldest"):
            ShardedVeriDPDaemon(server, overflow="drop-oldest")

    def test_sharded_drop_new_counts_batches(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 40)
        # Tiny batches + one pending slot + a wedged-free worker: overflow
        # is forced by submitting faster than the worker drains.
        with ShardedVeriDPDaemon(
            server, workers=1, batch_size=1, max_pending_batches=1,
            overflow="drop-new", supervise=False,
        ) as daemon:
            for payload in payloads:
                daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["overflow_policy"] == "drop-new"
        assert stats["processed"] + stats["dropped_full_queue"] == len(payloads)


class TestDeadLettering:
    def test_malformed_payload_dead_lettered(self, rig):
        scenario, server, net = rig
        good = collect_payloads(scenario, net, 5)
        with VeriDPDaemon(server, workers=2) as daemon:
            daemon.submit(b"\x00garbage")
            for payload in good:
                daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["malformed"] == 1
        assert stats["dead_lettered"] == 1
        assert stats["dead_letter_pending"] == 1
        letters = list(daemon.dead_letters._pending)
        assert letters[0].stage == "decode"
        assert letters[0].error_type == "ReportDecodeError"

    def test_retry_recovers_after_codec_learns_switch(self, rig):
        """A report from a not-yet-registered switch recovers on retry."""
        scenario, server, net = rig
        payload = bytearray(collect_payloads(scenario, net, 1)[0])
        # Point the inport at switch index 5 (codec only knows 3 switches).
        payload[2] = (5 << 6) >> 8
        payload[3] = (5 << 6) & 0xFF
        with VeriDPDaemon(server, workers=1) as daemon:
            daemon.submit(bytes(payload))
            daemon.join()
            assert daemon.stats()["malformed"] == 1
            # The codec learns the missing switches (indices 3..5)...
            for extra in ("X1", "X2", "X3"):
                server.codec.register(extra)
            # ...so the retry can decode (and verify: unknown pair verdict).
            recovered, quarantined = daemon.retry_dead_letters()
        assert (recovered, quarantined) == (1, 0)
        assert daemon.stats()["dead_letter_recovered"] == 1

    def test_retry_quarantines_hopeless_payloads(self, rig):
        scenario, server, net = rig
        with VeriDPDaemon(server, workers=1, dead_letter_attempts=2) as daemon:
            daemon.submit(b"utter garbage")
            daemon.join()
            recovered, quarantined = daemon.retry_dead_letters()
        assert (recovered, quarantined) == (0, 1)
        stats = daemon.stats()
        assert stats["dead_letter_quarantined"] == 1
        assert stats["dead_letter_pending"] == 0
        letters = daemon.dead_letters.drain_quarantined()
        assert letters[0].attempts == 2
        assert letters[0].quarantined

    def test_sharded_dead_letters_malformed(self, rig):
        scenario, server, net = rig
        good = collect_payloads(scenario, net, 5)
        with ShardedVeriDPDaemon(server, workers=2, supervise=False) as daemon:
            daemon.submit(b"\x00garbage")
            for payload in good:
                daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["malformed"] == 1
        assert stats["dead_lettered"] == 1


class TestUdpListenerLifecycle:
    def test_stop_is_idempotent_and_never_hangs(self, rig):
        """Satellite: stop() while _loop blocks in recvfrom must not hang."""
        _, server, _ = rig
        daemon = VeriDPDaemon(server, workers=1)
        daemon.start()
        listener = UdpReportListener(daemon)
        listener.start()
        time.sleep(0.05)  # let the loop enter recvfrom
        start = time.time()
        listener.stop()
        assert time.time() - start < 2.0
        listener.stop()  # second stop is a no-op
        daemon.stop()

    def test_stop_before_start_is_safe(self, rig):
        _, server, _ = rig
        daemon = VeriDPDaemon(server, workers=1)
        listener = UdpReportListener(daemon)
        listener.stop()
        listener.stop()

    def test_start_is_idempotent(self, rig):
        _, server, _ = rig
        daemon = VeriDPDaemon(server, workers=1)
        listener = UdpReportListener(daemon)
        listener.start()
        thread = listener._thread
        listener.start()
        assert listener._thread is thread
        listener.stop()

    def test_restart_rebinds_same_address(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 3)
        daemon = VeriDPDaemon(server, workers=1)
        daemon.start()
        listener = UdpReportListener(daemon)
        listener.start()
        address = listener.address
        listener.stop()
        listener.start()  # restart-safe: new socket, same port
        assert listener.address == address
        sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        for payload in payloads:
            sender.sendto(payload, listener.address)
        sender.close()
        deadline = time.time() + 5
        while listener.received < len(payloads) and time.time() < deadline:
            time.sleep(0.01)
        assert listener.received == len(payloads)
        listener.stop()
        daemon.join()
        daemon.stop()

    def test_backpressure_drops_are_counted(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 10)
        daemon = VeriDPDaemon(server, workers=1, queue_size=2)
        # Daemon not started: the queue fills after 2 payloads.
        with UdpReportListener(daemon) as listener:
            sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            for payload in payloads:
                sender.sendto(payload, listener.address)
            sender.close()
            deadline = time.time() + 5
            while listener.received < len(payloads) and time.time() < deadline:
                time.sleep(0.01)
            assert listener.received == len(payloads)
            assert listener.dropped == len(payloads) - 2
            assert listener.stats()["dropped"] == listener.dropped


class TestSupervisedShardedDaemon:
    def test_worker_kill_is_survived(self, rig):
        """A SIGKILLed shard worker is restarted; the run completes."""
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 60)
        with ShardedVeriDPDaemon(
            server, workers=2, batch_size=8, restart_budget=3, **FAST_BACKOFF
        ) as daemon:
            for payload in payloads[: len(payloads) // 2]:
                daemon.submit(payload)
            WorkerKill(shard=0).apply(daemon)
            deadline = time.time() + 10
            while daemon.stats()["restarts"] < 1 and time.time() < deadline:
                time.sleep(0.02)
            for payload in payloads[len(payloads) // 2 :]:
                daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["restarts"] >= 1
        assert not stats["degraded"]
        # Accounting identity: every submitted payload is processed, dead,
        # dropped, or honestly lost to the kill.
        assert (
            stats["processed"]
            + stats["malformed"]
            + stats["verify_errors"]
            + stats["dropped_full_queue"]
            + stats["lost_in_restart"]
            == len(payloads)
        )
        assert stats["verified"] == stats["processed"]

    def test_killswitch_plus_worker_death_converges(self, rig):
        """Satellite: data-plane KillSwitch + monitoring-plane worker death.

        The dead network switch silently swallows packets (fewer reports);
        the dead daemon worker is restarted by the supervisor; and a rule
        change afterwards still converges through pause_and_refresh.
        """
        scenario, server, net = rig
        healthy = collect_payloads(scenario, net, 20)
        KillSwitch("S2").apply(net)
        # Traffic through the dead switch produces no exit reports.
        after_kill = []
        pairs = scenario.host_pairs()
        for i in range(20):
            src, dst = pairs[i % len(pairs)]
            result = net.inject_from_host(src, scenario.header_between(src, dst))
            after_kill += [pack_report(r, net.codec) for r in result.reports]
        assert len(after_kill) < 20  # the blind spot the paper acknowledges
        with ShardedVeriDPDaemon(
            server, workers=2, batch_size=4, restart_budget=3, **FAST_BACKOFF
        ) as daemon:
            for payload in healthy[:10]:
                daemon.submit(payload)
            daemon.kill_worker(1)  # worker death mid-batch
            deadline = time.time() + 10
            while daemon.stats()["restarts"] < 1 and time.time() < deadline:
                time.sleep(0.02)
            assert daemon.stats()["restarts"] >= 1
            for payload in healthy[10:] + after_kill:
                daemon.submit(payload)
            daemon.join()
            # Rule change while running: pause_and_refresh still converges.
            scenario.controller.install(
                "S1", FlowRule(50, Match.build(dst="99.0.0.0/8"), Forward(2))
            )
            assert daemon.pause_and_refresh() is True
            for payload in collect_payloads(scenario, net, 5):
                daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["failed"] == 0
        assert not stats["degraded"]

    def test_stale_replica_resynced_on_restart(self, rig):
        """Satellite/tentpole: a restarted worker re-replicates against the
        current PathTable version."""
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 10)
        with ShardedVeriDPDaemon(
            server, workers=2, batch_size=4, restart_budget=3, **FAST_BACKOFF
        ) as daemon:
            replicated_at = daemon._replica_version
            StaleReplica().apply(daemon)  # version moves under the replicas
            assert server.table.version != replicated_at
            daemon.kill_worker(0)
            deadline = time.time() + 10
            while daemon._replica_version == replicated_at and time.time() < deadline:
                time.sleep(0.02)
            # The supervisor resynchronised the fleet to the current version.
            assert daemon._replica_version == server.table.version
            for payload in payloads:
                daemon.submit(payload)
            daemon.join()
            assert daemon.stats()["failed"] == 0

    def test_restart_budget_degrades_to_threaded_fallback(self, rig):
        """Beyond the restart budget the daemon degrades instead of wedging."""
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 30)
        with ShardedVeriDPDaemon(
            server, workers=2, batch_size=4, restart_budget=0,
            fallback_workers=1, **FAST_BACKOFF
        ) as daemon:
            for payload in payloads[:10]:
                daemon.submit(payload)
            daemon.kill_worker(0)
            deadline = time.time() + 10
            while not daemon.degraded and time.time() < deadline:
                time.sleep(0.02)
            assert daemon.degraded
            # Ingestion survives: submits now flow through the fallback.
            for payload in payloads[10:]:
                assert daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["mode"] == "thread-fallback"
        assert stats["degraded"] == 1
        assert stats["budget_exhausted"] == 1
        assert (
            stats["processed"]
            + stats["malformed"]
            + stats["verify_errors"]
            + stats["dropped_full_queue"]
            + stats["lost_in_restart"]
            == len(payloads)
        )

    def test_wedged_worker_detected_by_heartbeat(self, rig):
        """An alive-but-unresponsive worker is restarted via heartbeat age."""
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 20)
        with ShardedVeriDPDaemon(
            server, workers=1, batch_size=4, restart_budget=3,
            heartbeat_timeout=0.3, **FAST_BACKOFF
        ) as daemon:
            daemon._in_queues[0].put(("crash", "wedge"))
            deadline = time.time() + 10
            while daemon.stats()["restarts"] < 1 and time.time() < deadline:
                time.sleep(0.02)
            stats = daemon.stats()
            assert stats["restarts"] >= 1
            assert stats["wedged_restarts"] >= 1
            for payload in payloads:
                daemon.submit(payload)
            daemon.join()
            assert daemon.stats()["verified"] >= len(payloads) - daemon.stats()["lost_in_restart"]


class TestListenerRebindCap:
    """ISSUE 9 satellite: the rebind loop has a lifetime cap + counter."""

    def _force_socket_error(self, listener):
        # Close the socket out from under the loop while _running stays
        # set: recvfrom raises OSError and the rebind path engages.
        listener._socket.close()

    def test_transient_error_rebinds_and_counts(self, rig):
        _, server, _ = rig
        daemon = VeriDPDaemon(server, workers=1)
        listener = UdpReportListener(daemon)
        listener.start()
        try:
            self._force_socket_error(listener)
            deadline = time.time() + 5
            while listener.rebinds < 1 and time.time() < deadline:
                time.sleep(0.01)
            assert listener.rebinds == 1
            assert listener.stats()["rebinds"] == 1
            assert listener._running  # survived the transient error
        finally:
            listener.stop()
            daemon.stop()

    def test_rebind_cap_stops_the_listener_loudly(self, rig):
        _, server, _ = rig
        daemon = VeriDPDaemon(server, workers=1)
        listener = UdpReportListener(daemon, max_rebinds=0)
        listener.start()
        try:
            self._force_socket_error(listener)
            listener._thread.join(timeout=5)
            assert not listener._thread.is_alive()
            assert not listener._running  # gave up, did not spin forever
            assert listener.rebinds == 0
            assert listener.stats()["socket_errors"] >= 1
        finally:
            listener.stop()
            daemon.stop()

    def test_rebind_metric_is_exported(self, rig):
        _, server, _ = rig
        daemon = VeriDPDaemon(server, workers=1)
        listener = UdpReportListener(daemon)
        listener.start()
        try:
            self._force_socket_error(listener)
            deadline = time.time() + 5
            while listener.rebinds < 1 and time.time() < deadline:
                time.sleep(0.01)
            snapshot = daemon.obs.registry.snapshot()
            assert snapshot.value("veridp_listener_rebind_total") == 1
        finally:
            listener.stop()
            daemon.stop()
