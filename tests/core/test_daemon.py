"""Tests for the concurrent daemon and UDP listener."""

import socket
import threading
import time

import pytest

from repro.core.daemon import (
    ShardedVeriDPDaemon,
    UdpReportListener,
    VeriDPDaemon,
    _shard_of,
    build_shard_specs,
)
from repro.core.reports import pack_report
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork, ModifyRuleOutput
from repro.topologies import build_linear


@pytest.fixture
def rig():
    scenario = build_linear(3)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    return scenario, server, net


def collect_payloads(scenario, net, count=50):
    """Wire-format reports from healthy all-pairs traffic."""
    payloads = []
    pairs = scenario.host_pairs()
    for i in range(count):
        src, dst = pairs[i % len(pairs)]
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        for report in result.reports:
            payloads.append(pack_report(report, net.codec))
    return payloads


class TestDaemon:
    def test_processes_all_submitted(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 60)
        with VeriDPDaemon(server, workers=3) as daemon:
            for payload in payloads:
                assert daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["processed"] == len(payloads)
        assert stats["verified"] == len(payloads)
        assert stats["failed"] == 0
        assert server.incidents == []

    def test_detects_failures_concurrently(self, rig):
        scenario, server, net = rig
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        bad_payloads = []
        for _ in range(10):
            result = net.inject_from_host("H1", header)
            bad_payloads += [pack_report(r, net.codec) for r in result.reports]
        with VeriDPDaemon(server, workers=4) as daemon:
            for payload in bad_payloads:
                daemon.submit(payload)
            daemon.join()
        assert len(server.incidents) == len(bad_payloads)
        assert all("S2" in i.blamed_switches for i in server.incidents)

    def test_malformed_payload_counted_not_fatal(self, rig):
        scenario, server, net = rig
        good = collect_payloads(scenario, net, 5)
        with VeriDPDaemon(server, workers=2) as daemon:
            daemon.submit(b"\x00garbage")
            for payload in good:
                daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["malformed"] == 1
        assert stats["processed"] == len(good)

    def test_queue_full_drops_counted(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 5)
        daemon = VeriDPDaemon(server, workers=1, queue_size=2)
        # Not started: the queue fills and overflow is reported.
        accepted = sum(daemon.submit(p) for p in payloads)
        assert accepted == 2
        assert daemon.stats()["dropped"] == len(payloads) - 2
        daemon.start()
        daemon.join()
        daemon.stop()

    def test_concurrent_producers(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 40)
        with VeriDPDaemon(server, workers=4, queue_size=10_000) as daemon:
            def produce(chunk):
                for payload in chunk:
                    daemon.submit(payload)

            threads = [
                threading.Thread(target=produce, args=(payloads[i::4],))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            daemon.join()
            assert daemon.stats()["processed"] == len(payloads)

    def test_pause_and_refresh(self, rig):
        scenario, server, net = rig
        with VeriDPDaemon(server, workers=2) as daemon:
            # A rule change makes the server dirty; refresh under quiesce.
            from repro.netmodel.rules import FlowRule, Forward, Match

            scenario.controller.install(
                "S1", FlowRule(50, Match.build(dst="99.0.0.0/8"), Forward(2))
            )
            assert daemon.pause_and_refresh() is True
            # Still processes correctly afterwards.
            for payload in collect_payloads(scenario, net, 5):
                daemon.submit(payload)
            daemon.join()
            assert daemon.stats()["failed"] == 0

    def test_requires_workers(self, rig):
        _, server, _ = rig
        with pytest.raises(ValueError):
            VeriDPDaemon(server, workers=0)

    def test_start_stop_idempotent(self, rig):
        _, server, _ = rig
        daemon = VeriDPDaemon(server)
        daemon.start()
        daemon.start()
        daemon.stop()
        daemon.stop()


class TestShardedDaemon:
    def test_processes_all_submitted(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 60)
        with ShardedVeriDPDaemon(server, workers=2, batch_size=16) as daemon:
            for payload in payloads:
                assert daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["processed"] == len(payloads)
        assert stats["verified"] == len(payloads)
        assert stats["failed"] == 0
        assert stats["mode"] == "process"
        assert server.incidents == []

    def test_detects_failures_and_localizes_on_parent(self, rig):
        scenario, server, net = rig
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        bad_payloads = []
        for _ in range(6):
            result = net.inject_from_host("H1", header)
            bad_payloads += [pack_report(r, net.codec) for r in result.reports]
        with ShardedVeriDPDaemon(server, workers=2) as daemon:
            for payload in bad_payloads:
                daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["failed"] == len(bad_payloads)
        assert len(server.incidents) == len(bad_payloads)
        assert all("S2" in i.blamed_switches for i in server.incidents)

    def test_malformed_payload_counted_not_fatal(self, rig):
        scenario, server, net = rig
        good = collect_payloads(scenario, net, 5)
        with ShardedVeriDPDaemon(server, workers=2) as daemon:
            daemon.submit(b"\x00garbage")
            for payload in good:
                daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
        assert stats["malformed"] == 1
        assert stats["processed"] == len(good)

    def test_stats_match_thread_daemon(self, rig):
        """Same payloads, same verdict counters in both execution modes."""
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 30)
        with ShardedVeriDPDaemon(server, workers=3) as sharded:
            for payload in payloads:
                sharded.submit(payload)
            sharded.join()
        scenario2 = build_linear(3)
        server2 = VeriDPServer(scenario2.topo, scenario2.channel)
        with VeriDPDaemon(server2, workers=3) as threaded:
            for payload in payloads:
                threaded.submit(payload)
            threaded.join()
        s, t = sharded.stats(), threaded.stats()
        for key in ("processed", "verified", "failed", "malformed"):
            assert s[key] == t[key], key

    def test_pause_and_refresh(self, rig):
        scenario, server, net = rig
        with ShardedVeriDPDaemon(server, workers=2) as daemon:
            from repro.netmodel.rules import FlowRule, Forward, Match

            scenario.controller.install(
                "S1", FlowRule(50, Match.build(dst="99.0.0.0/8"), Forward(2))
            )
            assert daemon.pause_and_refresh() is True
            for payload in collect_payloads(scenario, net, 5):
                daemon.submit(payload)
            daemon.join()
            assert daemon.stats()["failed"] == 0

    def test_requires_workers(self, rig):
        _, server, _ = rig
        with pytest.raises(ValueError):
            ShardedVeriDPDaemon(server, workers=0)

    def test_submit_requires_running(self, rig):
        _, server, _ = rig
        daemon = ShardedVeriDPDaemon(server, workers=1)
        with pytest.raises(RuntimeError):
            daemon.submit(b"x" * 26)

    def test_shard_specs_cover_every_pair_once(self, rig):
        scenario, server, net = rig
        server.refresh_if_dirty()
        for workers in (1, 2, 4):
            specs = build_shard_specs(server.table, server.hs, server.codec, workers)
            keys = [key for spec in specs for key in spec]
            assert len(keys) == len(set(keys)) == len(server.table.pairs())
            for key in keys:
                wire_key = (key[0] << 16) | key[1]
                owner = _shard_of(wire_key, workers)
                assert key in specs[owner]


class TestUdpListener:
    def test_reports_arrive_over_the_wire(self, rig):
        scenario, server, net = rig
        payloads = collect_payloads(scenario, net, 20)
        with VeriDPDaemon(server, workers=2) as daemon:
            with UdpReportListener(daemon) as listener:
                sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                for payload in payloads:
                    sender.sendto(payload, listener.address)
                sender.close()
                deadline = time.time() + 5
                while listener.received < len(payloads) and time.time() < deadline:
                    time.sleep(0.01)
                daemon.join()
                assert listener.received == len(payloads)
        assert daemon.stats()["processed"] == len(payloads)
        assert server.incidents == []

    def test_failure_detected_over_the_wire(self, rig):
        scenario, server, net = rig
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S2").table.lookup(header, 3)
        ModifyRuleOutput("S2", rule.rule_id, 1).apply(net)
        result = net.inject_from_host("H1", header)
        payload = pack_report(result.reports[0], net.codec)
        with VeriDPDaemon(server, workers=1) as daemon:
            with UdpReportListener(daemon) as listener:
                sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                sender.sendto(payload, listener.address)
                sender.close()
                deadline = time.time() + 5
                while not server.incidents and time.time() < deadline:
                    time.sleep(0.01)
        assert server.incidents
        assert "S2" in server.incidents[0].blamed_switches

    def test_listener_survives_garbage_datagrams(self, rig):
        scenario, server, net = rig
        good = collect_payloads(scenario, net, 3)
        with VeriDPDaemon(server, workers=1) as daemon:
            with UdpReportListener(daemon) as listener:
                sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                sender.sendto(b"not a report", listener.address)
                for payload in good:
                    sender.sendto(payload, listener.address)
                sender.close()
                deadline = time.time() + 5
                while listener.received < 4 and time.time() < deadline:
                    time.sleep(0.01)
                daemon.join()
        stats = daemon.stats()
        assert stats["processed"] == len(good)
        assert stats["malformed"] == 1
