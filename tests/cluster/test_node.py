"""Verification nodes: the socket-facing shard workers.

Each test drives a node purely over its wire protocol — RELOAD a replica,
stream BATCH frames, FLUSH the deltas — exactly as the coordinator and
frontend do, so the protocol surface is what's pinned.
"""

import pytest

from repro.cluster.node import VerificationNode, start_node
from repro.cluster.protocol import (
    MSG_BATCH,
    MSG_DIGEST,
    MSG_DIGEST_REPLY,
    MSG_FLUSH,
    MSG_FLUSH_REPLY,
    MSG_HELLO,
    MSG_HELLO_REPLY,
    MSG_PATCH,
    MSG_PING,
    MSG_PONG,
    MSG_RELOAD,
    MessageStream,
)
from repro.core.daemon import frame_batch, replica_digest
from repro.core.verifier import Verdict

from .conftest import healthy_payloads, packing_of, tagged_replica

PASS = Verdict.PASS.value


@pytest.fixture
def node(rig):
    _, server, _ = rig
    worker = VerificationNode("n1", packing_of(server)).start()
    yield worker
    worker.stop()


def connect(node):
    return MessageStream.connect(node.address)


def flush(stream, token=1):
    stream.send(MSG_FLUSH, (token,))
    mtype, body = stream.recv(timeout=10)
    assert mtype == MSG_FLUSH_REPLY
    assert body[1] == token
    return body


class TestProtocolSurface:
    def test_hello_ping_digest(self, rig, node):
        _, server, _ = rig
        stream = connect(node)
        try:
            stream.send(MSG_HELLO, ("test",))
            mtype, body = stream.recv(timeout=10)
            assert mtype == MSG_HELLO_REPLY and body == ("n1", 0)

            stream.send(MSG_PING, (42,))
            mtype, body = stream.recv(timeout=10)
            assert mtype == MSG_PONG and body == ("n1", 42)

            replica = tagged_replica(server)
            stream.send(MSG_RELOAD, replica)
            stream.send(MSG_DIGEST, (7,))
            mtype, body = stream.recv(timeout=10)
            assert mtype == MSG_DIGEST_REPLY
            expected = replica_digest({k: v[0] for k, v in replica.items()})
            assert body == ("n1", 7, expected)
        finally:
            stream.close()

    def test_batch_verifies_and_flush_resets(self, rig, node):
        scenario, server, net = rig
        payloads = healthy_payloads(scenario, net, 200)
        stream = connect(node)
        try:
            stream.send(MSG_RELOAD, tagged_replica(server))
            frame, odd = frame_batch(payloads)
            stream.send(MSG_BATCH, (3, frame, odd))
            reply = flush(stream)
            (_, _, processed, malformed, counters,
             failures, crashed, unknown, _, last_seq, snapshot) = reply
            assert processed == 200 and malformed == 0
            assert counters[PASS] == 200
            assert failures == [] and crashed == [] and unknown == []
            assert last_seq == 3
            assert snapshot.get("veridp_node_processed_total") is not None
            # Flush zeroed the deltas: a second flush reports nothing new.
            reply = flush(stream, token=2)
            assert reply[2] == 0 and reply[4][PASS] == 0
        finally:
            stream.close()

    def test_malformed_payloads_are_counted_not_raised(self, rig, node):
        scenario, server, net = rig
        stream = connect(node)
        try:
            stream.send(MSG_RELOAD, tagged_replica(server))
            good = healthy_payloads(scenario, net, 4)
            bad = [b"\x00" * 9, good[0][:-1] + b"\xff"]
            frame, odd = frame_batch(good + bad)
            stream.send(MSG_BATCH, (1, frame, odd))
            reply = flush(stream)
            processed, malformed = reply[2], reply[3]
            accounted = processed + malformed + len(reply[6]) + len(reply[7])
            assert accounted == 6
            assert malformed >= 1  # the truncated one at minimum
            assert reply[8]  # malformed_sample carries evidence
        finally:
            stream.close()


class TestMigrationSurface:
    def test_unknown_pairs_return_instead_of_verdict(self, rig, node):
        """Reports for pairs outside the replica are shipped back, never
        counted — the mid-migration contract the coordinator relies on."""
        scenario, server, net = rig
        payloads = healthy_payloads(scenario, net, 8)
        stream = connect(node)
        try:
            # No replica loaded at all: everything is unknown.
            frame, odd = frame_batch(payloads)
            stream.send(MSG_BATCH, (1, frame, odd))
            reply = flush(stream)
            assert reply[2] == 0  # processed
            assert sorted(reply[7]) == sorted(payloads)  # unknown, intact
        finally:
            stream.close()

    def test_patch_drops_and_restores_pairs(self, rig, node):
        scenario, server, net = rig
        payloads = healthy_payloads(scenario, net, 1)
        target = payloads[0]
        wire = (
            int.from_bytes(target[2:4], "big"),
            int.from_bytes(target[4:6], "big"),
        )
        replica = tagged_replica(server)
        stream = connect(node)
        try:
            stream.send(MSG_RELOAD, replica)
            stream.send(MSG_PATCH, {wire: None})  # migrate the pair away
            frame, odd = frame_batch([target])
            stream.send(MSG_BATCH, (1, frame, odd))
            reply = flush(stream)
            assert reply[2] == 0 and reply[7] == [target]

            stream.send(MSG_PATCH, {wire: replica[wire]})  # migrate it back
            stream.send(MSG_BATCH, (2, frame, odd))
            reply = flush(stream, token=2)
            assert reply[2] == 1 and reply[4][PASS] == 1
        finally:
            stream.close()

    def test_tenant_attribution_rides_the_replica_tags(self, rig, node):
        scenario, server, net = rig
        payloads = healthy_payloads(scenario, net, 96)
        stream = connect(node)
        try:
            stream.send(MSG_RELOAD, tagged_replica(server, tenant="red"))
            frame, odd = frame_batch(payloads)
            stream.send(MSG_BATCH, (1, frame, odd))
            reply = flush(stream)
            assert reply[2] == 96
            family = reply[10].get("veridp_cluster_tenant_reports_total")
            assert family is not None
            tenant_total = 0.0
            for labels, value in family["values"].items():
                assert "red" in labels
                tenant_total += value
            assert tenant_total == 96
        finally:
            stream.close()


class TestProcessMode:
    def test_process_node_speaks_the_same_protocol(self, rig):
        scenario, server, net = rig
        handle = start_node("p1", packing_of(server), mode="process")
        try:
            assert handle.alive()
            stream = connect(handle)
            try:
                stream.send(MSG_RELOAD, tagged_replica(server))
                payloads = healthy_payloads(scenario, net, 64)
                frame, odd = frame_batch(payloads)
                stream.send(MSG_BATCH, (1, frame, odd))
                reply = flush(stream)
                assert reply[2] == 64 and reply[4][PASS] == 64
            finally:
                stream.close()
        finally:
            handle.stop()
        assert not handle.alive()

    def test_kill_is_abrupt(self, rig):
        _, server, _ = rig
        handle = start_node("p2", packing_of(server), mode="process")
        assert handle.alive()
        handle.kill()
        assert not handle.alive()
