"""Shared fixtures for the cluster tier: a routed linear fabric plus
helpers that build wire payloads and node-shaped replica messages."""

import pytest

from repro.core.daemon import build_pair_spec, wire_packing
from repro.core.reports import pack_report
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.topologies import build_linear


@pytest.fixture
def rig():
    scenario = build_linear(4)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    return scenario, server, net


def healthy_payloads(scenario, net, count):
    """``count`` wire reports from healthy all-pairs traffic (cycled)."""
    pairs = scenario.host_pairs()
    base = []
    for src, dst in pairs:
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        base += [pack_report(r, net.codec) for r in result.reports]
    payloads = []
    while len(payloads) < count:
        payloads += base
    return payloads[:count]


def tagged_replica(server, tenant=""):
    """The whole table as a ``MSG_RELOAD`` body: {wire: (spec, tenant)}."""
    replica = {}
    codec = server.codec
    for inport, outport in server.table.pairs():
        spec = build_pair_spec(server.table, server.hs, inport, outport)
        if spec is None:
            continue
        wire = (codec.encode(inport), codec.encode(outport))
        replica[wire] = (spec, tenant)
    return replica


def packing_of(server):
    return wire_packing(server.hs.layout)
