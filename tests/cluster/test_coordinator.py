"""Coordinator: membership, scoped rebalancing, failover, and resync.

These tests run full in-process clusters (thread nodes) and assert the
rebalance invariant the subsystem is built around: membership churn moves
*only* the pairs whose routing keys changed owner, everything else keeps
verifying uninterrupted, and every replica fingerprint converges to the
coordinator's authoritative table slice.
"""

import pytest

from repro.cluster import VeriDPCluster
from repro.core.server import VeriDPServer
from repro.slice.registry import SliceRegistry, TenantSpec
from repro.topologies import build_linear

from .conftest import healthy_payloads


def make_cluster(server, nodes=2, **kwargs):
    return VeriDPCluster(server, nodes=nodes, node_mode="thread", **kwargs)


class TestMembership:
    def test_start_converges_and_verifies(self, rig):
        scenario, server, net = rig
        payloads = healthy_payloads(scenario, net, 120)
        with make_cluster(server, nodes=3) as cluster:
            assert len(cluster.nodes()) == 3
            assert cluster.converged()
            for payload in payloads:
                assert cluster.submit(payload)
            cluster.join()
            stats = cluster.stats()
            assert stats["processed"] == 120
            assert stats["counters"]["pass"] == 120
            assert stats["incidents"] == 0

    def test_join_moves_only_rebalanced_keys(self, rig):
        _, server, _ = rig
        with make_cluster(server, nodes=2) as cluster:
            frontend = cluster.frontend
            before = dict(frontend.placement)
            moved_before = cluster.coordinator.moved_pairs
            joined = cluster.add_node()
            after = dict(frontend.placement)
            assert after.keys() == before.keys()
            moved_keys = [k for k in after if after[k] != before[k]]
            # Every moved key landed on the joiner, nothing shuffled
            # between the incumbents.
            assert moved_keys and all(after[k] == joined for k in moved_keys)
            moved_pair_count = sum(
                len(cluster.coordinator._specs[k]) for k in moved_keys
            )
            assert (
                cluster.coordinator.moved_pairs - moved_before
                == moved_pair_count
            )
            assert cluster.converged()

    def test_graceful_leave_keeps_the_ledger_exact(self, rig):
        scenario, server, net = rig
        payloads = healthy_payloads(scenario, net, 150)
        with make_cluster(server, nodes=3) as cluster:
            for payload in payloads[:75]:
                cluster.submit(payload)
            victim = cluster.nodes()[0]
            cluster.remove_node(victim)
            assert victim not in cluster.nodes()
            for payload in payloads[75:]:
                cluster.submit(payload)
            cluster.join()
            stats = cluster.stats()
            assert stats["processed"] == 150
            assert stats["counters"]["pass"] == 150
            assert cluster.converged()

    def test_failover_redelivers_without_loss_or_double_count(self, rig):
        scenario, server, net = rig
        payloads = healthy_payloads(scenario, net, 200)
        with make_cluster(server, nodes=3) as cluster:
            for payload in payloads[:100]:
                cluster.submit(payload)
            cluster.kill_node(cluster.nodes()[0])
            dead = cluster.check_nodes()
            assert len(dead) == 1
            for payload in payloads[100:]:
                cluster.submit(payload)
            cluster.join()
            stats = cluster.stats()
            assert stats["failovers"] == 1
            assert stats["processed"] == 200  # exactly once, incl. redelivery
            assert stats["counters"]["pass"] == 200
            assert cluster.converged()


class TestResync:
    @pytest.fixture
    def inc_rig(self, tmp_path):
        from repro.dataplane import DataPlaneNetwork

        scenario = build_linear(4)
        server = VeriDPServer(
            scenario.topo, state_dir=str(tmp_path / "state"), fsync="never"
        )
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        yield scenario, server, net
        server.close()

    def test_rule_churn_patches_only_dirty_pairs(self, inc_rig):
        _, server, _ = inc_rig
        with make_cluster(server, nodes=2) as cluster:
            coordinator = cluster.coordinator
            assert cluster.resync() == 0  # already current

            server.apply_rule_update("S1", "10.50.0.0/16", 2)
            server.apply_rule_update("S2", "10.50.0.0/16", 2)
            patched = cluster.resync()
            assert patched is not None and patched > 0
            assert coordinator.full_resyncs == 0
            assert coordinator.resync_pairs == patched
            assert patched < len(server.table.pairs())
            assert coordinator.resync_delta_bytes > 0
            assert cluster.converged()

    def test_verdicts_follow_churn(self, inc_rig):
        scenario, server, net = inc_rig
        from repro.core.reports import pack_report

        src, dst = scenario.host_pairs()[0]
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        payloads = [pack_report(r, net.codec) for r in result.reports]
        assert payloads
        with make_cluster(server, nodes=2) as cluster:
            for payload in payloads:
                cluster.submit(payload)
            cluster.join()
            assert cluster.stats()["counters"]["pass"] == len(payloads)

            # Remove every forwarding rule on the path's first switch and
            # resync: the recorded paths no longer exist, so replaying the
            # stale reports must fail — proving the nodes verify against
            # the patched replica, not the boot-time one.
            for switch, prefix, _port in list(
                server.updater.provider.iter_rules()
            ):
                if switch == "S1":
                    server.apply_rule_delete(switch, prefix)
            cluster.resync()
            for payload in payloads:
                cluster.submit(payload)
            cluster.join()
            stats = cluster.stats()
            assert stats["processed"] == 2 * len(payloads)
            assert stats["counters"]["pass"] == len(payloads)


class TestTenantPlacement:
    @pytest.fixture
    def sliced_server(self):
        scenario = build_linear(4)
        server = VeriDPServer(scenario.topo, scenario.channel)
        hosts = sorted(scenario.subnets)
        registry = SliceRegistry(server.hs, scenario.topo)
        registry.register(TenantSpec(
            name="red",
            prefixes=tuple(scenario.subnets[h] for h in hosts[:2]),
            hosts=tuple(hosts[:2]),
            queue_share=0.5,
        ))
        registry.register(TenantSpec(
            name="blue",
            prefixes=tuple(scenario.subnets[h] for h in hosts[2:]),
            hosts=tuple(hosts[2:]),
            queue_share=0.5,
        ))
        server.set_slices(registry)
        return scenario, server

    def test_a_tenants_pairs_share_one_node(self, sliced_server):
        _, server = sliced_server
        with make_cluster(server, nodes=3) as cluster:
            placement = cluster.frontend.placement
            tenant_keys = [k for k in placement if k.startswith("tenant:")]
            assert "tenant:red" in tenant_keys
            assert "tenant:blue" in tenant_keys
            # One routing key per tenant → all its pairs on one node.
            for key in tenant_keys:
                bucket = cluster.coordinator._specs[key]
                assert len(bucket) >= 1
                assert placement[key] in cluster.nodes()
            assert cluster.converged()

    def test_tenant_totals_aggregate_across_nodes(self, sliced_server, rig):
        scenario, server = sliced_server
        del rig  # the sliced rig replaces the plain one here
        from repro.dataplane import DataPlaneNetwork

        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        with make_cluster(server, nodes=3) as cluster:
            payloads = healthy_payloads(scenario, net, 90)
            for payload in payloads:
                cluster.submit(payload)
            cluster.join()
            totals = cluster.coordinator.tenant_totals()
            assert totals  # at least one tenant attributed
            stats = cluster.stats()
            assert stats["processed"] == 90
            # Tenant-attributed reports never exceed the processed count
            # and each label aggregates node shards into one number.
            assert sum(totals.values()) <= 90
            for tenant in totals:
                assert tenant in ("red", "blue")
