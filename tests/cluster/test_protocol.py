"""Length-prefixed message streams: framing, limits, and EOF behavior."""

import socket
import struct
import threading

import pytest

from repro.cluster.protocol import (
    MAX_BODY,
    MSG_BATCH,
    MSG_HELLO,
    MSG_PING,
    MessageStream,
    ProtocolError,
    message_name,
)


def tcp_pair():
    """A connected (client_stream, server_stream) pair over loopback."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    accepted = []

    def accept():
        conn, _ = listener.accept()
        accepted.append(conn)

    thread = threading.Thread(target=accept)
    thread.start()
    client = MessageStream.connect(listener.getsockname())
    thread.join()
    listener.close()
    return client, MessageStream(accepted[0])


class TestRoundtrip:
    def test_typed_bodies_roundtrip(self):
        client, server = tcp_pair()
        try:
            client.send(MSG_HELLO, ("frontend",))
            client.send(MSG_BATCH, (7, b"\x00" * 27, [b"odd"]))
            client.send(MSG_PING, (1,))
            assert server.recv(timeout=5) == (MSG_HELLO, ("frontend",))
            assert server.recv(timeout=5) == (
                MSG_BATCH,
                (7, b"\x00" * 27, [b"odd"]),
            )
            assert server.recv(timeout=5) == (MSG_PING, (1,))
            assert client.sent_messages == 3
            assert server.received_messages == 3
        finally:
            client.close()
            server.close()

    def test_large_body_roundtrips(self):
        client, server = tcp_pair()
        try:
            frame = b"\xab" * (2 * 1024 * 1024)
            client.send(MSG_BATCH, (1, frame, []))
            mtype, body = server.recv(timeout=10)
            assert mtype == MSG_BATCH and body[1] == frame
        finally:
            client.close()
            server.close()

    def test_replies_flow_both_ways(self):
        client, server = tcp_pair()
        try:
            client.send(MSG_PING, (9,))
            assert server.recv(timeout=5)[1] == (9,)
            server.send(MSG_PING, (10,))
            assert client.recv(timeout=5)[1] == (10,)
        finally:
            client.close()
            server.close()


class TestFraming:
    def test_oversized_length_is_a_protocol_error(self):
        client, server = tcp_pair()
        try:
            raw = struct.pack(">IB", MAX_BODY + 1, MSG_HELLO)
            client._sock.sendall(raw)
            with pytest.raises(ProtocolError):
                server.recv(timeout=5)
        finally:
            client.close()
            server.close()

    def test_eof_mid_message_is_a_connection_error(self):
        client, server = tcp_pair()
        try:
            client._sock.sendall(struct.pack(">IB", 100, MSG_HELLO) + b"short")
            client.close()
            with pytest.raises(ConnectionError):
                server.recv(timeout=5)
        finally:
            server.close()

    def test_recv_timeout_propagates(self):
        client, server = tcp_pair()
        try:
            with pytest.raises(socket.timeout):
                server.recv(timeout=0.05)
        finally:
            client.close()
            server.close()

    def test_message_names(self):
        assert message_name(MSG_BATCH) == "batch"
        assert message_name(250) == "type-250"
