"""Consistent-hash ring: determinism, balance, and minimal movement."""

import pytest

from repro.cluster.ring import HashRing

KEYS = [f"pair:{i}" for i in range(2000)]


def ring_of(members, vnodes=64):
    ring = HashRing(vnodes=vnodes)
    for member in members:
        ring.add(member)
    return ring


class TestDeterminism:
    def test_same_members_same_placement(self):
        a = ring_of(["n1", "n2", "n3"])
        b = ring_of(["n3", "n1", "n2"])  # insertion order must not matter
        assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]

    def test_empty_ring_owns_nothing(self):
        assert HashRing().owner("pair:1") is None

    def test_duplicate_add_rejected(self):
        ring = ring_of(["n1"])
        with pytest.raises(ValueError):
            ring.add("n1")

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            HashRing().remove("n1")


class TestMovement:
    def test_leave_moves_only_the_victims_keys(self):
        ring = ring_of(["n1", "n2", "n3"])
        before = {k: ring.owner(k) for k in KEYS}
        ring.remove("n2")
        for key in KEYS:
            if before[key] != "n2":
                assert ring.owner(key) == before[key]
            else:
                assert ring.owner(key) in ("n1", "n3")

    def test_join_moves_a_bounded_fraction(self):
        ring = ring_of(["n1", "n2", "n3"])
        before = {k: ring.owner(k) for k in KEYS}
        ring.add("n4")
        moved = sum(1 for k in KEYS if ring.owner(k) != before[k])
        # Ideal is 1/4 of the keys; allow 2x slack for vnode variance.
        assert 0 < moved <= len(KEYS) // 2
        # Every moved key landed on the joiner — no unrelated churn.
        assert all(
            ring.owner(k) == "n4" for k in KEYS if ring.owner(k) != before[k]
        )


class TestBalance:
    def test_shares_are_roughly_even(self):
        ring = ring_of(["n1", "n2", "n3", "n4"])
        shares = ring.shares(KEYS)
        assert sum(shares.values()) == len(KEYS)
        ideal = len(KEYS) / 4
        for member, count in shares.items():
            assert count > ideal * 0.4, (member, shares)
            assert count < ideal * 2.0, (member, shares)

    def test_membership_introspection(self):
        ring = ring_of(["n1", "n2"])
        assert len(ring) == 2
        assert "n1" in ring and "zz" not in ring
        assert ring.members() == ["n1", "n2"]
