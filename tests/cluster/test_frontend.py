"""Ingestion frontend: routing, batching, acks, and the socket engines."""

import socket
import time

import pytest

from repro.cluster.frontend import (
    AsyncioIngest,
    ClusterFrontend,
    SelectorIngest,
    build_ingest,
    routing_key_of,
)
from repro.cluster.node import VerificationNode

from .conftest import healthy_payloads, packing_of

JOIN_DEADLINE = 20.0


def wait_for(predicate, deadline=JOIN_DEADLINE):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


@pytest.fixture
def fleet(rig):
    """A frontend wired to two live (replica-less) nodes."""
    _, server, _ = rig
    packing = packing_of(server)
    nodes = {
        name: VerificationNode(name, packing).start()
        for name in ("n1", "n2")
    }
    frontend = ClusterFrontend(batch_size=8)
    for name, node in nodes.items():
        frontend.attach_node(name, node.address)
    yield frontend, nodes
    for name in list(frontend.nodes()):
        frontend.detach_node(name)
    for node in nodes.values():
        node.stop()


class TestRouting:
    def test_routing_key_is_tenant_aware(self):
        assert routing_key_of(0x00010002, None) == "pair:65538"
        assert routing_key_of(0x00010002, "") == "pair:65538"
        assert routing_key_of(0x00010002, "red") == "tenant:red"
        # Two pairs of one tenant share a routing key (→ one node).
        assert routing_key_of(7, "red") == routing_key_of(9, "red")

    def test_placement_overrides_the_ring(self, fleet, rig):
        scenario, server, net = rig
        frontend, _ = fleet
        payload = healthy_payloads(scenario, net, 1)[0]
        key = frontend.routing_key(payload)
        ring_owner = frontend.ring.owner(key)
        other = next(n for n in frontend.nodes() if n != ring_owner)
        frontend.placement[key] = other
        assert frontend.owner_of(key) == other
        # A placement entry naming a detached node falls back to the ring.
        frontend.placement[key] = "ghost"
        assert frontend.owner_of(key) == ring_owner

    def test_submit_without_nodes_is_counted_drop(self, rig):
        scenario, _, net = rig
        frontend = ClusterFrontend()
        payload = healthy_payloads(scenario, net, 1)[0]
        assert frontend.submit(payload) is False
        assert frontend.stats()["dropped_no_node"] == 1

    def test_precheck_rejects_garbage_before_routing(self):
        frontend = ClusterFrontend()
        assert frontend.submit(b"\x00" * 5) is False
        stats = frontend.stats()
        assert stats["precheck_rejected"] == 1
        assert stats["dropped_no_node"] == 0


class TestDispatch:
    def test_batches_dispatch_at_batch_size(self, fleet, rig):
        scenario, server, net = rig
        frontend, _ = fleet
        payloads = healthy_payloads(scenario, net, 64)
        for payload in payloads:
            assert frontend.submit(payload)
        frontend.flush_buffers()
        stats = frontend.stats()
        assert stats["submitted"] == 64
        assert stats["dispatched_reports"] == 64
        assert stats["dispatched_batches"] >= 64 // 8

    def test_ack_retires_unacked_batches(self, fleet, rig):
        scenario, server, net = rig
        frontend, _ = fleet
        for payload in healthy_payloads(scenario, net, 64):
            frontend.submit(payload)
        frontend.flush_buffers()
        total_unacked = sum(
            frontend.pending(n)[0] for n in frontend.nodes()
        )
        assert total_unacked == frontend.stats()["dispatched_batches"]
        for name in frontend.nodes():
            link = frontend._links[name]
            frontend.ack(name, link.seq)
            assert frontend.pending(name) == (0, 0)

    def test_detach_surrenders_unacked_and_buffered(self, fleet, rig):
        scenario, server, net = rig
        frontend, _ = fleet
        payloads = healthy_payloads(scenario, net, 20)
        routed = {n: [] for n in frontend.nodes()}
        for payload in payloads:
            frontend.submit(payload)
            owner = frontend.owner_of(frontend.routing_key(payload))
            routed[owner].append(payload)
        victim = max(routed, key=lambda n: len(routed[n]))
        pending = frontend.detach_node(victim)
        # Everything routed to the victim comes back — dispatched-but-
        # unacked batches unframed plus the partial buffer, in order.
        assert sorted(pending) == sorted(routed[victim])
        assert victim not in frontend.nodes()
        redelivered = frontend.redeliver(pending)
        assert redelivered == len(pending)
        # Redelivery does not double-count submissions.
        assert frontend.stats()["submitted"] == 20


class TestSubmitFrame:
    def test_frame_routes_rows_like_scalar_submit(self, fleet, rig):
        from repro.core.reports import Frame

        scenario, server, net = rig
        frontend, _ = fleet
        payloads = healthy_payloads(scenario, net, 48)
        # Scalar routing ground truth, computed without dispatching.
        expected = {n: 0 for n in frontend.nodes()}
        for payload in payloads:
            expected[frontend.owner_of(frontend.routing_key(payload))] += 1
        admitted = frontend.submit_frame(Frame(b"".join(payloads)))
        assert admitted == len(payloads)
        frontend.flush_buffers()
        stats = frontend.stats()
        assert stats["submitted"] == len(payloads)
        assert stats["dispatched_reports"] == len(payloads)
        assert stats["precheck_rejected"] == 0
        # Ack everything and confirm per-node delivery matched the ring.
        for name in frontend.nodes():
            link = frontend._links[name]
            if expected[name]:
                assert link.seq > 0
            frontend.ack(name, link.seq)
            assert frontend.pending(name) == (0, 0)

    def test_frame_screens_bad_versions(self, fleet, rig):
        from repro.core.reports import Frame

        scenario, server, net = rig
        frontend, _ = fleet
        payloads = healthy_payloads(scenario, net, 8)
        bad = bytearray(payloads[0])
        bad[0] = 99
        admitted = frontend.submit_frame(Frame(b"".join(payloads + [bytes(bad)])))
        assert admitted == len(payloads)
        stats = frontend.stats()
        assert stats["precheck_rejected"] == 1
        assert stats["submitted"] == len(payloads) + 1

    def test_frame_without_nodes_counts_drops(self, rig):
        from repro.core.reports import Frame

        scenario, _, net = rig
        frontend = ClusterFrontend()
        payloads = healthy_payloads(scenario, net, 6)
        admitted = frontend.submit_frame(Frame(b"".join(payloads)))
        assert admitted == 0
        assert frontend.stats()["dropped_no_node"] == len(payloads)


@pytest.mark.parametrize("engine_cls", [AsyncioIngest, SelectorIngest])
@pytest.mark.parametrize("ingest_batch", [1, 32])
class TestIngestEngines:
    def test_udp_and_tcp_reports_reach_the_frontend(
        self, engine_cls, ingest_batch, fleet, rig
    ):
        scenario, server, net = rig
        frontend, _ = fleet
        payloads = healthy_payloads(scenario, net, 40)
        ingest = engine_cls(frontend, ingest_batch=ingest_batch)
        udp_addr = ingest.listen_udp("127.0.0.1", 0)
        tcp_addr = ingest.listen_tcp("127.0.0.1", 0)
        ingest.start()
        try:
            client = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            for payload in payloads[:20]:
                client.sendto(payload, udp_addr)
            client.close()
            stream = socket.create_connection(tcp_addr, timeout=5)
            stream.sendall(b"".join(payloads[20:]))
            stream.close()
            assert wait_for(lambda: frontend.submitted >= 40), (
                frontend.stats()
            )
            assert frontend.stats()["precheck_rejected"] == 0
        finally:
            ingest.stop()


class TestBuildIngest:
    def test_auto_prefers_asyncio(self, rig):
        frontend = ClusterFrontend()
        assert build_ingest(frontend, engine="auto").engine == "asyncio"
        assert build_ingest(frontend, engine="selectors").engine == "selectors"
        with pytest.raises(ValueError):
            build_ingest(frontend, engine="bogus")
