"""Unit tests for the network-wide data-plane walker."""

import pytest

from repro.core.reports import unpack_report
from repro.dataplane import (
    DataPlaneNetwork,
    DeliveryStatus,
    KillSwitch,
    ModifyRuleOutput,
)
from repro.netmodel.rules import DROP_PORT, FlowRule, Forward, Match
from repro.netmodel.topology import PortRef
from repro.topologies import build_figure5, build_linear, build_ring


@pytest.fixture
def linear():
    scenario = build_linear(3)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    return scenario, net


class TestDelivery:
    def test_delivered_end_to_end(self, linear):
        scenario, net = linear
        result = net.inject_from_host("H1", scenario.header_between("H1", "H3"))
        assert result.status == DeliveryStatus.DELIVERED
        assert result.delivered_to == "H3"
        assert [h.switch for h in result.hops] == ["S1", "S2", "S3"]
        assert result.exit_port == scenario.topo.host_port("H3")

    def test_reports_emitted_object_and_bytes(self):
        scenario = build_linear(3)
        payloads = []
        net = DataPlaneNetwork(scenario.topo, scenario.channel, report_sink=payloads.append)
        net.inject_from_host("H1", scenario.header_between("H1", "H3"))
        assert len(net.emitted_reports) == 1
        assert len(payloads) == 1
        decoded = unpack_report(payloads[0], net.codec)
        assert decoded == net.emitted_reports[0]

    def test_drain_reports(self, linear):
        scenario, net = linear
        net.inject_from_host("H1", scenario.header_between("H1", "H2"))
        drained = net.drain_reports()
        assert len(drained) == 1
        assert net.emitted_reports == []

    def test_inject_requires_edge_port(self, linear):
        scenario, net = linear
        with pytest.raises(ValueError):
            net.inject(PortRef("S1", 2), scenario.header_between("H1", "H3"))

    def test_unknown_switch_keyerror(self, linear):
        _, net = linear
        with pytest.raises(KeyError):
            net.switch("S99")


class TestDropAndLoss:
    def test_unroutable_dropped_at_entry(self, linear):
        scenario, net = linear
        header = scenario.header_between("H1", "H3").with_(dst_ip=0xDEADBEEF)
        result = net.inject_from_host("H1", header)
        assert result.status == DeliveryStatus.DROPPED
        assert result.exit_port == PortRef("S1", DROP_PORT)
        assert len(result.reports) == 1  # drop report (Algorithm 1 line 6)

    def test_dead_switch_swallows_silently(self, linear):
        scenario, net = linear
        KillSwitch("S2").apply(net)
        result = net.inject_from_host("H1", scenario.header_between("H1", "H3"))
        assert result.status == DeliveryStatus.LOST
        assert result.reports == []  # the paper's blind spot
        assert net.emitted_reports == []

    def test_dead_entry_switch(self, linear):
        scenario, net = linear
        KillSwitch("S1").apply(net)
        result = net.inject_from_host("H1", scenario.header_between("H1", "H3"))
        assert result.status == DeliveryStatus.LOST
        assert result.hops == []


class TestLoops:
    def test_forwarding_loop_cut_and_reported(self):
        scenario = build_ring(4, install_routes=False)
        for sid in scenario.topo.switches:
            scenario.controller.install(sid, FlowRule(10, Match(), Forward(2)))
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        result = net.inject_from_host("H1", scenario.header_between("H1", "H3"))
        assert result.status == DeliveryStatus.LOOPED
        assert len(result.reports) == 1
        assert result.reports[0].ttl_expired


class TestFlowModHandling:
    def test_live_flowmods_applied(self, linear):
        scenario, net = linear
        before = net.total_physical_rules()
        scenario.controller.install(
            "S1", FlowRule(50, Match.build(dst="99.0.0.0/8"), Forward(2))
        )
        assert net.total_physical_rules() == before + 1

    def test_flowmod_delete_applied(self, linear):
        scenario, net = linear
        rule = scenario.controller.install(
            "S1", FlowRule(50, Match.build(dst="99.0.0.0/8"), Forward(2))
        )
        before = net.total_physical_rules()
        scenario.controller.remove("S1", rule.rule_id)
        assert net.total_physical_rules() == before - 1

    def test_flowmod_modify_applied(self, linear):
        scenario, net = linear
        rule = scenario.controller.install(
            "S1", FlowRule(50, Match.build(dst="99.0.0.0/8"), Forward(2))
        )
        new_rule = FlowRule(50, rule.match, Forward(1), rule_id=rule.rule_id)
        scenario.controller.modify("S1", new_rule)
        assert net.switch("S1").table.get(rule.rule_id).action == Forward(1)

    def test_history_replay_on_late_attach(self):
        scenario = build_linear(3)  # routes installed before net exists
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        assert net.total_physical_rules() > 0
        result = net.inject_from_host("H1", scenario.header_between("H1", "H3"))
        assert result.status == DeliveryStatus.DELIVERED


class TestMiddleboxTraversal:
    def test_packet_transits_middlebox_with_one_tag(self):
        scenario = build_figure5()
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        result = net.inject_from_host(
            "H1", scenario.header_between("H1", "H3", dst_port=22)
        )
        assert result.status == DeliveryStatus.DELIVERED
        assert [str(h) for h in result.hops] == [
            "<1|S1|3>",
            "<1|S2|3>",
            "<3|S2|2>",
            "<1|S3|2>",
        ]
        assert len(result.reports) == 1
        assert result.reports[0].tag == net.scheme.tag_of_path(result.hops)
