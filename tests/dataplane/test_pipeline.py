"""Unit tests for the VeriDP pipeline (Algorithm 1)."""

import pytest

from repro.core.bloom import BloomTagScheme
from repro.core.reports import PortCodec
from repro.core.sampling import NeverSampler
from repro.dataplane.pipeline import VeriDPPipeline
from repro.netmodel.hops import Hop
from repro.netmodel.packet import Header, Packet
from repro.netmodel.rules import DROP_PORT
from repro.netmodel.topology import PortRef, Topology
from repro.topologies import build_linear


@pytest.fixture
def env():
    scenario = build_linear(3)
    codec = PortCodec(sorted(scenario.topo.switches))
    pipeline = VeriDPPipeline(scenario.topo, codec)
    return scenario.topo, codec, pipeline


def packet():
    return Packet(Header(src_ip=1, dst_ip=2, dst_port=80))


class TestEntryBehaviour:
    def test_entry_initialises_tag_ttl_inport(self, env):
        topo, codec, pipeline = env
        p = packet()
        result = pipeline.process("S1", 1, 2, p)
        assert result.sampled_here
        assert p.marker
        assert p.ttl == pipeline.max_path_length - 1  # already decremented once
        assert p.inport_id == codec.encode(PortRef("S1", 1))
        assert p.tag == pipeline.scheme.hop_filter(Hop(1, "S1", 2))

    def test_internal_ingress_does_not_reinitialise(self, env):
        topo, codec, pipeline = env
        p = packet()
        pipeline.process("S1", 1, 2, p)
        tag_before = p.tag
        result = pipeline.process("S2", 3, 2, p)  # S2 port 3 is internal
        assert not result.sampled_here
        assert p.tag == tag_before | pipeline.scheme.hop_filter(Hop(3, "S2", 2))

    def test_unsampled_packet_untouched(self, env):
        topo, codec, pipeline = env
        pipeline_no_sample = VeriDPPipeline(
            topo, codec, sampler_factory=lambda s: NeverSampler()
        )
        p = packet()
        result = pipeline_no_sample.process("S1", 1, 2, p)
        assert not result.sampled_here
        assert not result.tagged
        assert result.report is None
        assert p.tag == 0 and p.ttl is None


class TestReporting:
    def test_report_at_edge_egress(self, env):
        topo, codec, pipeline = env
        p = packet()
        pipeline.process("S1", 1, 2, p)
        pipeline.process("S2", 3, 2, p)
        result = pipeline.process("S3", 3, 1, p)  # S3 port 1 hosts H3
        assert result.report is not None
        assert result.report.inport == PortRef("S1", 1)
        assert result.report.outport == PortRef("S3", 1)
        assert result.report.tag == pipeline.scheme.tag_of_path(
            [Hop(1, "S1", 2), Hop(3, "S2", 2), Hop(3, "S3", 1)]
        )
        assert not result.report.ttl_expired
        assert not p.marker  # in-band state popped on exit

    def test_report_on_drop(self, env):
        topo, codec, pipeline = env
        p = packet()
        result = pipeline.process("S1", 1, DROP_PORT, p)
        assert result.report is not None
        assert result.report.outport == PortRef("S1", DROP_PORT)
        assert not result.report.ttl_expired

    def test_report_on_ttl_expiry(self, env):
        topo, codec, pipeline = env
        pipeline_short = VeriDPPipeline(topo, codec, max_path_length=2)
        p = packet()
        pipeline_short.process("S1", 1, 2, p)
        result = pipeline_short.process("S2", 3, 2, p)  # ttl hits 0 mid-network
        assert result.report is not None
        assert result.report.ttl_expired
        assert not p.marker  # tracking stops after the loop report

    def test_no_report_mid_path(self, env):
        topo, codec, pipeline = env
        p = packet()
        assert pipeline.process("S1", 1, 2, p).report is None

    def test_header_carried_verbatim(self, env):
        topo, codec, pipeline = env
        p = packet()
        result = pipeline.process("S1", 1, DROP_PORT, p)
        assert result.report.header == p.header


class TestSamplerWiring:
    def test_sampler_per_switch(self, env):
        topo, codec, _ = env
        created = []

        def factory(switch_id):
            created.append(switch_id)
            from repro.core.sampling import AlwaysSampler

            return AlwaysSampler()

        pipeline = VeriDPPipeline(topo, codec, sampler_factory=factory)
        pipeline.process("S1", 1, 2, packet())
        pipeline.process("S3", 1, 2, packet())
        pipeline.process("S1", 1, 2, packet())
        assert created == ["S1", "S3"]

    def test_interval_sampler_suppresses_within_interval(self, env):
        topo, codec, _ = env
        from repro.core.sampling import FlowSampler

        pipeline = VeriDPPipeline(
            topo, codec, sampler_factory=lambda s: FlowSampler(default_interval=5.0)
        )
        first = packet()
        pipeline.process("S1", 1, 2, first, now=0.0)
        second = packet()  # same flow key
        result = pipeline.process("S1", 1, 2, second, now=1.0)
        assert first.marker is True
        assert not result.sampled_here
        assert second.tag == 0


class TestForceSample:
    def test_probe_bypasses_sampler(self, env):
        """A pre-marked probe is tagged even when the sampler says no."""
        topo, codec, _ = env
        from repro.core.sampling import NeverSampler
        from repro.dataplane.pipeline import VeriDPPipeline

        pipeline = VeriDPPipeline(
            topo, codec, sampler_factory=lambda s: NeverSampler()
        )
        p = packet()
        result = pipeline.process("S1", 1, 2, p, force_sample=True)
        assert result.sampled_here
        assert p.marker

    def test_force_sample_does_not_touch_sampler_state(self, env):
        topo, codec, _ = env
        from repro.core.sampling import FlowSampler
        from repro.dataplane.pipeline import VeriDPPipeline

        pipeline = VeriDPPipeline(
            topo, codec, sampler_factory=lambda s: FlowSampler(default_interval=5.0)
        )
        probe = packet()
        pipeline.process("S1", 1, 2, probe, now=0.0, force_sample=True)
        sampler = pipeline.sampler_for("S1")
        assert sampler.seen_count == 0  # probe invisible to the sampler
        # Ordinary traffic is then sampled normally (first packet of flow).
        regular = packet()
        result = pipeline.process("S1", 1, 2, regular, now=1.0)
        assert result.sampled_here

    def test_network_plumbs_force_sample(self):
        from repro.core.sampling import NeverSampler
        from repro.dataplane import DataPlaneNetwork
        from repro.topologies import build_linear

        scenario = build_linear(3)
        net = DataPlaneNetwork(
            scenario.topo,
            scenario.channel,
            sampler_factory=lambda s: NeverSampler(),
        )
        silent = net.inject_from_host("H1", scenario.header_between("H1", "H3"))
        assert silent.reports == []
        probed = net.inject_from_host(
            "H1", scenario.header_between("H1", "H3"), force_sample=True
        )
        assert len(probed.reports) == 1
