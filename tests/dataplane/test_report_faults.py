"""Tests for the report-plane fault taxonomy and the stream injector."""

import random

import pytest

from repro.dataplane.report_faults import (
    BitFlipReports,
    Delivery,
    DuplicateReports,
    LoseReports,
    ReorderReports,
    ReportStreamFault,
    ReportStreamFaultInjector,
    StaleReplica,
    TruncateReports,
    WorkerKill,
)


def payloads(n=1000, size=26):
    rng = random.Random(7)
    return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(n)]


class TestStreamFaults:
    def test_lose_reports_rate(self):
        result = ReportStreamFaultInjector([LoseReports(0.5)], seed=1).run(
            payloads(2000)
        )
        assert 800 < result.delivered < 1200
        assert result.lost == 2000 - result.delivered
        assert result.corrupted == 0

    def test_lose_zero_and_one(self):
        assert ReportStreamFaultInjector([LoseReports(0.0)], seed=1).run(
            payloads(50)
        ).delivered == 50
        assert ReportStreamFaultInjector([LoseReports(1.0)], seed=1).run(
            payloads(50)
        ).delivered == 0

    def test_duplicate_reports_marked(self):
        result = ReportStreamFaultInjector([DuplicateReports(0.5)], seed=2).run(
            payloads(1000)
        )
        assert result.delivered > 1000
        assert result.duplicated == result.delivered - 1000
        dupes = [d for d in result.deliveries if d.duplicate]
        assert dupes and all(not d.corrupted for d in dupes)

    def test_reorder_preserves_multiset(self):
        stream = payloads(300)
        result = ReportStreamFaultInjector(
            [ReorderReports(rate=1.0, window=8)], seed=3
        ).run(stream)
        assert sorted(result.payloads) == sorted(stream)
        assert result.payloads != stream  # actually shuffled
        assert result.lost == 0 and result.corrupted == 0

    def test_truncate_marks_corrupted_and_shortens(self):
        stream = payloads(500)
        result = ReportStreamFaultInjector([TruncateReports(0.2)], seed=4).run(stream)
        corrupted = [d for d in result.deliveries if d.corrupted]
        assert corrupted
        assert result.corrupted == len(corrupted)
        for d in corrupted:
            assert 0 < len(d.payload) < len(stream[d.origin])

    def test_bitflip_flips_exactly_one_bit(self):
        stream = payloads(500)
        result = ReportStreamFaultInjector([BitFlipReports(0.2)], seed=5).run(stream)
        corrupted = [d for d in result.deliveries if d.corrupted]
        assert corrupted
        for d in corrupted:
            original = stream[d.origin]
            assert len(d.payload) == len(original)
            diff_bits = sum(
                bin(a ^ b).count("1") for a, b in zip(d.payload, original)
            )
            assert diff_bits == 1

    def test_injector_is_deterministic(self):
        stream = payloads(400)
        faults = lambda: [
            LoseReports(0.05),
            DuplicateReports(0.01),
            ReorderReports(0.1),
            TruncateReports(0.01),
            BitFlipReports(0.01),
        ]
        a = ReportStreamFaultInjector(faults(), seed=42).run(stream)
        b = ReportStreamFaultInjector(faults(), seed=42).run(stream)
        assert a.payloads == b.payloads
        assert (a.lost, a.duplicated, a.corrupted) == (
            b.lost,
            b.duplicated,
            b.corrupted,
        )

    def test_injector_rejects_plane_faults(self):
        with pytest.raises(TypeError, match="not a ReportStreamFault"):
            ReportStreamFaultInjector([WorkerKill(0)])

    def test_summary_and_describe(self):
        result = ReportStreamFaultInjector([LoseReports(0.5)], seed=1).run(
            payloads(100)
        )
        assert "lost" in result.summary()
        for fault in (
            LoseReports(),
            DuplicateReports(),
            ReorderReports(),
            TruncateReports(),
            BitFlipReports(),
            StaleReplica(),
            WorkerKill(1),
        ):
            assert fault.describe()

    def test_uncorrupted_subset_matches_ledger(self):
        stream = payloads(500)
        result = ReportStreamFaultInjector(
            [TruncateReports(0.05), BitFlipReports(0.05)], seed=6
        ).run(stream)
        uncorrupted = result.uncorrupted
        assert len(uncorrupted) == result.delivered - result.corrupted
        for d in uncorrupted:
            assert d.payload == stream[d.origin]

    def test_base_perturb_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ReportStreamFault().perturb([Delivery(b"x", 0)], random.Random(0))
