"""Tests for the per-port traffic counters."""

import pytest

from repro.dataplane import DataPlaneNetwork
from repro.dataplane.switch import DataPlaneSwitch, PortCounters
from repro.netmodel.packet import Header
from repro.netmodel.rules import DROP_PORT
from repro.netmodel.topology import PortRef
from repro.topologies import build_linear


class TestSwitchCounters:
    def test_account_forwarded(self):
        switch = DataPlaneSwitch("S", ports={1, 2})
        switch.account(1, 2, 500)
        switch.account(1, 2, 500)
        assert switch.port_counters[1].rx_packets == 2
        assert switch.port_counters[1].rx_bytes == 1000
        assert switch.port_counters[2].tx_packets == 2
        assert switch.port_counters[2].tx_bytes == 1000
        assert switch.dropped_packets == 0

    def test_account_dropped(self):
        switch = DataPlaneSwitch("S", ports={1, 2})
        switch.account(1, DROP_PORT, 64)
        assert switch.port_counters[1].rx_packets == 1
        assert switch.dropped_packets == 1
        # No TX accounting for drops.
        assert switch.port_counters[2].tx_packets == 0

    def test_default_counters_zero(self):
        switch = DataPlaneSwitch("S", ports={1})
        counters = switch.port_counters[1]
        assert counters == PortCounters()


class TestNetworkCounters:
    def test_walk_updates_every_hop(self):
        scenario = build_linear(3)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        net.inject_from_host("H1", scenario.header_between("H1", "H3"), size=700)
        # S2's ingress from S1 (port 3) saw the packet.
        assert net.switch("S2").port_counters[3].rx_bytes == 700
        # S3 transmitted it out of its host port 1.
        assert net.switch("S3").port_counters[1].tx_bytes == 700

    def test_drop_counted_at_dropping_switch(self):
        scenario = build_linear(3)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        bogus = scenario.header_between("H1", "H3").with_(dst_ip=0x01020304)
        net.inject_from_host("H1", bogus)
        assert net.switch("S1").dropped_packets == 1

    def test_link_utilization(self):
        scenario = build_linear(3)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        for _ in range(3):
            net.inject_from_host("H1", scenario.header_between("H1", "H3"), size=100)
        usage = net.link_utilization()
        s1_s2 = usage[(PortRef("S1", 2), PortRef("S2", 3))]
        assert s1_s2 == 300
        # Reverse traffic adds to the same link key.
        net.inject_from_host("H3", scenario.header_between("H3", "H1"), size=50)
        usage = net.link_utilization()
        assert usage[(PortRef("S1", 2), PortRef("S2", 3))] == 350
