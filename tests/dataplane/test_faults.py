"""Unit tests for the fault-injection models (Section 2.2 taxonomy)."""

import random

import pytest

from repro.dataplane import (
    DataPlaneNetwork,
    DeleteRule,
    DropRuleInstall,
    IgnorePriorities,
    InjectRule,
    KillSwitch,
    ModifyRuleOutput,
    random_misforward_fault,
)
from repro.netmodel.rules import DROP_PORT, FlowRule, Forward, Match
from repro.topologies import build_linear


@pytest.fixture
def env():
    scenario = build_linear(3)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    return scenario, net


class TestFaultApplication:
    def test_drop_rule_install(self, env):
        scenario, net = env
        rule = FlowRule(50, Match.build(dst="99.0.0.0/8"), Forward(2))
        DropRuleInstall("S1", rule.rule_id).apply(net)
        scenario.controller.install("S1", rule)
        # logical table has it; physical does not
        assert rule.rule_id in scenario.topo.switch("S1").flow_table
        assert rule.rule_id not in net.switch("S1").table

    def test_modify_rule_output(self, env):
        scenario, net = env
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S1").table.lookup(header, 1)
        ModifyRuleOutput("S1", rule.rule_id, 1).apply(net)
        assert net.switch("S1").forward(header, 1) == 1
        # controller's copy is untouched (the gap VeriDP detects)
        assert scenario.topo.switch("S1").flow_table.get(rule.rule_id).action != Forward(1)

    def test_delete_rule(self, env):
        scenario, net = env
        header = scenario.header_between("H1", "H3")
        rule = net.switch("S1").table.lookup(header, 1)
        DeleteRule("S1", rule.rule_id).apply(net)
        assert rule.rule_id not in net.switch("S1").table
        assert rule.rule_id in scenario.topo.switch("S1").flow_table

    def test_inject_rule(self, env):
        scenario, net = env
        foreign = FlowRule(999, Match.build(dst="10.0.2.0/24"), Forward(1))
        InjectRule("S1", foreign).apply(net)
        assert foreign.rule_id in net.switch("S1").table
        assert foreign.rule_id not in scenario.topo.switch("S1").flow_table

    def test_ignore_priorities(self, env):
        _, net = env
        IgnorePriorities("S2").apply(net)
        assert net.switch("S2").ignore_priority

    def test_kill_switch(self, env):
        _, net = env
        KillSwitch("S3").apply(net)
        assert net.switch("S3").dead

    def test_describe_all(self, env):
        faults = [
            DropRuleInstall("S1", 1),
            ModifyRuleOutput("S1", 1, 2),
            ModifyRuleOutput("S1", 1, DROP_PORT),
            DeleteRule("S1", 1),
            InjectRule("S1", FlowRule(1, Match(), Forward(1))),
            IgnorePriorities("S1"),
            KillSwitch("S1"),
        ]
        for fault in faults:
            assert "S1" in fault.describe()
        assert "⊥" in faults[2].describe()


class TestRandomMisforward:
    def test_picks_installed_forwarding_rule(self, env):
        _, net = env
        fault = random_misforward_fault(net, random.Random(0))
        assert fault is not None
        switch = net.switch(fault.switch_id)
        mutated = switch.table.get(fault.rule_id)
        assert mutated is not None
        assert mutated.output_port() == fault.new_port

    def test_new_port_differs_from_original(self, env):
        scenario, net = env
        # Snapshot original ports first.
        originals = {
            (sid, r.rule_id): r.output_port()
            for sid in net.switches
            for r in net.switch(sid).table
        }
        fault = random_misforward_fault(net, random.Random(1))
        assert fault.new_port != originals[(fault.switch_id, fault.rule_id)]

    def test_restricted_switch_pool(self, env):
        _, net = env
        fault = random_misforward_fault(net, random.Random(0), switch_ids=["S2"])
        assert fault.switch_id == "S2"

    def test_returns_none_when_no_rules(self):
        scenario = build_linear(3, install_routes=False)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        assert random_misforward_fault(net, random.Random(0)) is None


class TestEndToEndFaultVisibility:
    def test_ignored_priorities_change_forwarding(self, env):
        """Overlapping rules + priority bug => wrong egress, caught by tags."""
        scenario, net = env
        # A broad low-priority rule that would hijack H3-bound traffic at S2.
        scenario.controller.install(
            "S2", FlowRule(1, Match.build(dst="10.0.0.0/8"), Forward(3))
        )
        header = scenario.header_between("H1", "H3")
        good = net.inject_from_host("H1", header)
        assert good.status == "delivered"
        IgnorePriorities("S2").apply(net)
        bad = net.inject_from_host("H1", header)
        assert [h.switch for h in bad.hops] != [h.switch for h in good.hops]
