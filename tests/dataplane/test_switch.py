"""Unit tests for the simulated data-plane switch."""

import pytest

from repro.dataplane.switch import DataPlaneSwitch
from repro.netmodel.packet import Header
from repro.netmodel.rules import DROP_PORT, Drop, FlowRule, Forward, Match


@pytest.fixture
def switch():
    return DataPlaneSwitch("S", ports={1, 2, 3, 4})


def header(dst="10.0.2.1", dst_port=80):
    return Header.from_strings("10.0.1.1", dst, 6, 1000, dst_port)


class TestInstallPath:
    def test_install_and_forward(self, switch):
        switch.install(FlowRule(10, Match.build(dst="10.0.2.0/24"), Forward(2)))
        assert switch.forward(header(), 1) == 2

    def test_table_miss_drops(self, switch):
        assert switch.forward(header(), 1) == DROP_PORT

    def test_uninstall(self, switch):
        rule = FlowRule(10, Match(), Forward(2))
        switch.install(rule)
        assert switch.uninstall(rule.rule_id)
        assert switch.forward(header(), 1) == DROP_PORT

    def test_uninstall_missing_is_noop(self, switch):
        assert switch.uninstall(424242) is False

    def test_blacklisted_install_ignored(self, switch):
        rule = FlowRule(10, Match(), Forward(2))
        switch.blacklist_install(rule.rule_id)
        assert switch.install(rule) is False
        assert len(switch.table) == 0
        assert switch.ignored_installs == [rule.rule_id]

    def test_blacklisted_uninstall_ignored(self, switch):
        rule = FlowRule(10, Match(), Forward(2))
        switch.install(rule)
        switch.blacklist_install(rule.rule_id)
        assert switch.uninstall(rule.rule_id) is False
        assert rule.rule_id in switch.table


class TestExternalMutations:
    def test_external_modify_output(self, switch):
        rule = FlowRule(10, Match(), Forward(2))
        switch.install(rule)
        switch.external_modify_output(rule.rule_id, 4)
        assert switch.forward(header(), 1) == 4

    def test_external_modify_to_drop(self, switch):
        rule = FlowRule(10, Match(), Forward(2))
        switch.install(rule)
        mutated = switch.external_modify_output(rule.rule_id, DROP_PORT)
        assert isinstance(mutated.action, Drop)
        assert switch.forward(header(), 1) == DROP_PORT

    def test_external_modify_missing_raises(self, switch):
        with pytest.raises(KeyError):
            switch.external_modify_output(999, 1)

    def test_external_delete(self, switch):
        rule = FlowRule(10, Match(), Forward(2))
        switch.install(rule)
        switch.external_delete(rule.rule_id)
        assert switch.forward(header(), 1) == DROP_PORT

    def test_external_insert(self, switch):
        switch.external_insert(FlowRule(10, Match(), Forward(3)))
        assert switch.forward(header(), 1) == 3


class TestForwardingSemantics:
    def test_priority_respected(self, switch):
        switch.install(FlowRule(20, Match.build(dst_port=80), Forward(2)))
        switch.install(FlowRule(10, Match(), Forward(3)))
        assert switch.forward(header(dst_port=80), 1) == 2
        assert switch.forward(header(dst_port=22), 1) == 3

    def test_ignore_priority_flag_inverts(self, switch):
        switch.install(FlowRule(20, Match.build(dst_port=80), Forward(2)))
        switch.install(FlowRule(10, Match(), Forward(3)))
        switch.ignore_priority = True
        # lowest-priority match wins (the ProCurve bug)
        assert switch.forward(header(dst_port=80), 1) == 3

    def test_forward_to_unknown_port_drops(self, switch):
        switch.install(FlowRule(10, Match(), Forward(9)))
        assert switch.forward(header(), 1) == DROP_PORT

    def test_in_port_sensitive_rules(self, switch):
        switch.install(FlowRule(10, Match.build(in_port=1), Forward(2)))
        switch.install(FlowRule(10, Match.build(in_port=2), Forward(3)))
        assert switch.forward(header(), 1) == 2
        assert switch.forward(header(), 2) == 3
        assert switch.forward(header(), 3) == DROP_PORT

    def test_str_shows_flags(self, switch):
        switch.dead = True
        switch.ignore_priority = True
        text = str(switch)
        assert "dead" in text and "no-priority" in text
