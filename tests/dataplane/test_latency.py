"""Unit tests for the hardware pipeline latency model (Table 4 substitute)."""

import pytest

from repro.dataplane.latency import (
    HardwarePipelineModel,
    PAPER_NATIVE_POINTS,
    PAPER_PACKET_SIZES,
)


@pytest.fixture
def model():
    return HardwarePipelineModel()


class TestCalibration:
    def test_native_matches_paper_at_calibration_points(self, model):
        for size, expected in PAPER_NATIVE_POINTS:
            assert model.native_delay(size) == pytest.approx(expected)

    def test_sampling_delay_matches_paper(self, model):
        # Paper Table 4: ~0.14-0.15 us across all sizes.
        assert model.sampling_delay(512) == pytest.approx(0.152, abs=0.01)

    def test_tagging_delay_matches_paper(self, model):
        # Paper Table 4: ~0.26-0.27 us across all sizes.
        assert model.tagging_delay(512) == pytest.approx(0.272, abs=0.01)


class TestShapeClaims:
    """The Table 4 structural claims the reproduction must preserve."""

    def test_veridp_delays_are_size_independent(self, model):
        sampling = {model.sampling_delay(s) for s in PAPER_PACKET_SIZES}
        tagging = {model.tagging_delay(s) for s in PAPER_PACKET_SIZES}
        assert len(sampling) == 1
        assert len(tagging) == 1

    def test_native_delay_monotone_in_size(self, model):
        delays = [model.native_delay(s) for s in PAPER_PACKET_SIZES]
        assert all(a < b for a, b in zip(delays, delays[1:]))

    def test_overheads_shrink_with_packet_size(self, model):
        sampling = [model.sampling_overhead(s) for s in PAPER_PACKET_SIZES]
        tagging = [model.tagging_overhead(s) for s in PAPER_PACKET_SIZES]
        assert all(a > b for a, b in zip(sampling, sampling[1:]))
        assert all(a > b for a, b in zip(tagging, tagging[1:]))

    def test_overhead_at_512B_matches_paper_magnitude(self, model):
        # Paper: 0.74% sampling, 1.37% tagging at 512 B.
        assert model.sampling_overhead(512) == pytest.approx(0.0074, abs=0.002)
        assert model.tagging_overhead(512) == pytest.approx(0.0137, abs=0.003)

    def test_tagging_roughly_twice_sampling(self, model):
        ratio = model.tagging_delay(512) / model.sampling_delay(512)
        assert 1.5 <= ratio <= 2.2


class TestComposition:
    def test_entry_switch_carries_both_modules(self, model):
        assert model.entry_switch_delay(512) == pytest.approx(
            model.native_delay(512)
            + model.sampling_delay(512)
            + model.tagging_delay(512)
        )

    def test_internal_switch_skips_sampling(self, model):
        assert model.internal_switch_delay(512) == pytest.approx(
            model.native_delay(512) + model.tagging_delay(512)
        )

    def test_table4_rows_structure(self, model):
        rows = model.table4_rows()
        assert set(rows) == {
            "native_us",
            "sampling_us",
            "sampling_overhead_pct",
            "tagging_us",
            "tagging_overhead_pct",
        }
        assert all(len(col) == len(PAPER_PACKET_SIZES) for col in rows.values())


class TestInterpolationAndValidation:
    def test_interpolates_between_points(self, model):
        mid = model.native_delay(192)  # between 128 and 256
        assert model.native_delay(128) < mid < model.native_delay(256)

    def test_extrapolates_outside_range(self, model):
        assert model.native_delay(64) < model.native_delay(128)
        assert model.native_delay(2000) > model.native_delay(1500)

    def test_rejects_nonpositive_size(self, model):
        for method in (
            model.native_delay,
            model.sampling_delay,
            model.tagging_delay,
        ):
            with pytest.raises(ValueError):
                method(0)

    def test_rejects_bad_calibration(self):
        with pytest.raises(ValueError):
            HardwarePipelineModel(native_points=[(128, 4.0)])
        with pytest.raises(ValueError):
            HardwarePipelineModel(sampling_cycles=0)
        with pytest.raises(ValueError):
            HardwarePipelineModel(native_points=[(0, 1.0), (10, 2.0)])

    def test_custom_cycle_costs(self):
        model = HardwarePipelineModel(sampling_cycles=10, tagging_cycles=20)
        assert model.sampling_delay(100) == pytest.approx(0.08)
        assert model.tagging_delay(100) == pytest.approx(0.16)
