"""Sharded-daemon replica delta resync under mid-run rule churn (ISSUE 5).

The acceptance scenario: rules churn while the sharded daemon is live,
worker replicas are brought up to date via per-pair *patch* deltas (no
whole-table recompile on the resync path), and every worker's replica
fingerprint converges to the one a from-scratch replication would have.
"""

import time

import pytest

from repro.core.daemon import (
    ShardedVeriDPDaemon,
    build_shard_specs,
    replica_digest,
)
from repro.core.reports import pack_report
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.topologies import build_linear

WORKERS = 2


def expected_digests(server, workers):
    specs = build_shard_specs(server.table, server.hs, server.codec, workers)
    return [replica_digest(spec) for spec in specs]


@pytest.fixture
def durable_rig(tmp_path):
    scenario = build_linear(4)
    server = VeriDPServer(
        scenario.topo, state_dir=str(tmp_path / "state"), fsync="never"
    )
    yield scenario, server
    server.close()


class TestDeltaResync:
    def test_worker_replicas_converge_after_churn(self, durable_rig):
        scenario, server = durable_rig
        with ShardedVeriDPDaemon(server, workers=WORKERS) as daemon:
            assert daemon.replica_digests() == expected_digests(server, WORKERS)

            # Churn: nested add, cross-switch adds, a delete — touching a
            # strict subset of the table's (inport, outport) pairs.
            server.apply_rule_update("S1", "10.50.0.0/16", 2)
            server.apply_rule_update("S2", "10.50.0.0/16", 2)
            server.apply_rule_update("S3", "10.50.0.0/16", 2)
            server.apply_rule_update("S1", "10.50.1.0/24", 2)
            server.apply_rule_delete("S1", "10.50.1.0/24")

            patched = daemon.resync_replicas()
            assert patched is not None and patched > 0  # deltas, not a reload
            assert daemon.full_resyncs == 0
            assert daemon.resyncs == 1
            assert daemon.resync_pairs == patched
            assert daemon.resync_delta_bytes > 0
            assert daemon.replica_digests() == expected_digests(server, WORKERS)

            # Patching fewer pairs than the table holds is the whole point.
            assert patched < len(server.table.pairs())

    def test_resync_is_noop_when_current(self, durable_rig):
        _, server = durable_rig
        with ShardedVeriDPDaemon(server, workers=WORKERS) as daemon:
            assert daemon.resync_replicas() == 0
            assert daemon.resyncs == 0

    def test_submit_autoresyncs_stale_replicas(self, durable_rig):
        scenario, server = durable_rig
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        with ShardedVeriDPDaemon(server, workers=WORKERS, batch_size=4) as daemon:
            server.apply_rule_update("S1", "10.60.0.0/16", 2)
            src, dst = scenario.host_pairs()[0]
            result = net.inject_from_host(src, scenario.header_between(src, dst))
            for report in result.reports:
                daemon.submit(pack_report(report, net.codec))
            # submit() noticed the stale fleet before routing the payload.
            assert daemon.resyncs >= 1
            daemon.join()
            assert daemon.replica_digests() == expected_digests(server, WORKERS)
            assert daemon.stats()["failed"] == 0

    def test_verdicts_follow_churn_through_resync(self, durable_rig):
        """A report that matched the old table must fail after the rule it
        rode on is deleted — proving workers verify against the patched
        replica, not the boot-time one."""
        scenario, server = durable_rig
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        src, dst = scenario.host_pairs()[0]
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        payloads = [pack_report(r, net.codec) for r in result.reports]
        assert payloads
        with ShardedVeriDPDaemon(server, workers=WORKERS, batch_size=1) as daemon:
            for payload in payloads:
                daemon.submit(payload)
            daemon.join()
            stats = daemon.stats()
            assert stats["verified"] == len(payloads)
            assert stats["failed"] == 0

            # Remove every forwarding rule on the path's first switch: the
            # reported paths no longer exist in the configuration.
            for switch, prefix, _port in list(server.updater.provider.iter_rules()):
                if switch == "S1":
                    server.apply_rule_delete(switch, prefix)
            daemon.resync_replicas()
            for payload in payloads:
                daemon.submit(payload)
            daemon.join()
            assert daemon.stats()["failed"] >= len(payloads)

    def test_submit_expires_coalescing_window(self, tmp_path):
        """Daemon-path reports must tick the server's coalescing window:
        a staged update whose window expired is flushed (and the replicas
        resynced) on the next submit, not deferred until close."""
        scenario = build_linear(4)
        server = VeriDPServer(
            scenario.topo,
            state_dir=str(tmp_path / "state"),
            fsync="never",
            coalesce_ms=10,
        )
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        try:
            with ShardedVeriDPDaemon(
                server, workers=WORKERS, batch_size=1
            ) as daemon:
                server.apply_rule_update("S1", "10.90.0.0/16", 2)
                assert server.updater.pending_updates == 1
                time.sleep(0.02)  # let the 10ms window expire
                src, dst = scenario.host_pairs()[0]
                result = net.inject_from_host(
                    src, scenario.header_between(src, dst)
                )
                daemon.submit(pack_report(result.reports[0], net.codec))
                assert server.updater.pending_updates == 0
                assert server.update_flushes == 1
                assert daemon.resyncs >= 1
                daemon.join()
                assert daemon.replica_digests() == expected_digests(
                    server, WORKERS
                )
        finally:
            server.close()

    def test_journal_overflow_falls_back_to_full_reload(self, durable_rig):
        _, server = durable_rig
        with ShardedVeriDPDaemon(server, workers=WORKERS) as daemon:
            server.apply_rule_update("S1", "10.70.0.0/16", 2)
            server.table.touch()  # untracked: invalidates every journal token
            assert daemon.resync_replicas() is None
            assert daemon.full_resyncs == 1
            assert daemon.replica_digests() == expected_digests(server, WORKERS)
