"""Cross-feature integration: the extensions must compose, not just coexist.

Multi-table pipelines, header rewrites, atomic predicates, ACL-aware
incremental updates, policy queries and the repair engine each carry their
own tests; these check the seams between them.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.headerspace import HeaderSpace, parse_ipv4
from repro.core.atomic_builder import AtomicPathTableBuilder
from repro.core.pathtable import PathTableBuilder
from repro.core.queries import PolicyChecker
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.netmodel.packet import Header
from repro.netmodel.predicates import SwitchPredicates
from repro.netmodel.rules import (
    DROP_PORT,
    Drop,
    FlowRule,
    Forward,
    GotoTable,
    Match,
    Rewrite,
)
from repro.netmodel.topology import Topology
from repro.topologies import build_linear, build_stanford


def table_signature(table):
    return {
        (inport, outport, entry.hops): entry.headers
        for inport, outport, entry in table.all_entries()
    }


class TestAtomicWithRicherConfigs:
    def test_atomic_equals_direct_on_stanford(self):
        """ACLs + SSH detour policies + drop rules, both builders agree."""
        scenario = build_stanford(subnets_per_zone=1)
        hs = HeaderSpace()
        direct = PathTableBuilder(scenario.topo, hs).build()
        atomic = AtomicPathTableBuilder(scenario.topo, hs).build()
        assert table_signature(atomic) == table_signature(direct)

    def test_atomic_equals_direct_on_multitable(self):
        """GotoTable chains are resolved before atomisation sees them."""
        scenario = build_linear(3, install_routes=False)
        ctrl = scenario.controller
        ctrl.install_destination_routes(scenario.subnets)
        ctrl.install("S2", FlowRule(500, Match.build(dst_port=23), Drop(), table_id=0))
        ctrl.install("S2", FlowRule(400, Match.build(dst="10.0.0.0/8"),
                                    GotoTable(1), table_id=0))
        ctrl.install("S2", FlowRule(10, Match.build(dst="10.0.2.0/24"),
                                    Forward(2), table_id=1))
        hs = HeaderSpace()
        direct = PathTableBuilder(scenario.topo, hs).build()
        atomic = AtomicPathTableBuilder(scenario.topo, hs).build()
        assert table_signature(atomic) == table_signature(direct)


class TestMultiTableWithRewrites:
    @pytest.fixture
    def nat_multitable(self):
        """Table 0 classifies; table 1 NATs a VIP and routes."""
        scenario = build_linear(3, install_routes=False)
        ctrl = scenario.controller
        ctrl.install_destination_routes(scenario.subnets)
        vip = "198.51.100.7"
        ctrl.install("S2", FlowRule(500, Match.build(dst_port=23), Drop(), table_id=0))
        ctrl.install("S2", FlowRule(400, Match.build(dst=f"{vip}/32"),
                                    GotoTable(1), table_id=0))
        ctrl.install(
            "S2",
            FlowRule(10, Match.build(dst=f"{vip}/32"),
                     Rewrite((("dst_ip", parse_ipv4("10.0.2.1")),), 2),
                     table_id=1),
        )
        ctrl.install("S1", FlowRule(300, Match.build(dst=f"{vip}/32"), Forward(2)))
        return scenario, vip

    def test_goto_then_rewrite_end_to_end(self, nat_multitable):
        scenario, vip = nat_multitable
        server = VeriDPServer(scenario.topo, scenario.channel)
        net = DataPlaneNetwork(
            scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
        )
        header = Header.from_strings("10.0.0.1", vip, 6, 40000, 443)
        result = net.inject_from_host("H1", header)
        assert result.status == "delivered"
        assert result.delivered_to == "H3"
        assert result.reports[0].header.dst_ip == parse_ipv4("10.0.2.1")
        assert server.incidents == []

    def test_classifier_drop_wins_over_nat(self, nat_multitable):
        scenario, vip = nat_multitable
        server = VeriDPServer(scenario.topo, scenario.channel)
        net = DataPlaneNetwork(
            scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
        )
        telnet = Header.from_strings("10.0.0.1", vip, 6, 40000, 23)
        result = net.inject_from_host("H1", telnet)
        assert result.status == "dropped"
        assert result.hops[-1].switch == "S2"
        assert server.incidents == []  # the drop is configured

    def test_path_entry_carries_rewrite_through_goto(self, nat_multitable):
        scenario, vip = nat_multitable
        hs = HeaderSpace()
        table = PathTableBuilder(scenario.topo, hs).build()
        entries = [
            e
            for _, _, e in table.all_entries()
            if e.rewrites == (("dst_ip", parse_ipv4("10.0.2.1")),)
        ]
        assert entries
        vip_header = Header.from_strings("10.0.0.1", vip, 6, 1, 443)
        assert any(
            hs.contains(e.headers, vip_header.as_dict()) for e in entries
        )


class TestQueriesOnExtendedConfigs:
    def test_waypoint_query_on_multitable_network(self):
        scenario = build_linear(3, install_routes=False)
        ctrl = scenario.controller
        ctrl.install_destination_routes(scenario.subnets)
        ctrl.install("S2", FlowRule(500, Match.build(dst_port=23), Drop(), table_id=0))
        ctrl.install("S2", FlowRule(1, Match(), GotoTable(1), table_id=0))
        ctrl.install("S2", FlowRule(10, Match.build(dst="10.0.2.0/24"),
                                    Forward(2), table_id=1))
        ctrl.install("S2", FlowRule(10, Match.build(dst="10.0.0.0/24"),
                                    Forward(3), table_id=1))
        ctrl.install("S2", FlowRule(10, Match.build(dst="10.0.1.0/24"),
                                    Forward(1), table_id=1))
        hs = HeaderSpace()
        table = PathTableBuilder(scenario.topo, hs).build()
        checker = PolicyChecker(table, hs, scenario.topo)
        # Telnet isolation holds because of the table-0 classifier.
        assert checker.isolation("H1", "H3", Match.build(dst_port=23))
        # Everything else still flows.
        assert checker.reachability("H1", "H3", Match.build(dst_port=80))

    def test_repair_on_multitable_fault(self):
        """The repair engine reissues rules in non-zero tables too."""
        from repro.core.repair import RepairEngine, RepairOutcome
        from repro.dataplane import DeleteRule

        scenario = build_linear(3, install_routes=False)
        ctrl = scenario.controller
        ctrl.install_destination_routes(scenario.subnets)
        ctrl.install("S2", FlowRule(400, Match(), GotoTable(1), table_id=0))
        t1 = ctrl.install("S2", FlowRule(10, Match.build(dst="10.0.2.0/24"),
                                         Forward(2), table_id=1))
        # Shadow the old table-0 route so table 1 is authoritative.
        for rule in list(scenario.topo.switch("S2").flow_table.sorted_rules(0)):
            if rule.table_id == 0 and not isinstance(rule.action, GotoTable):
                ctrl.remove("S2", rule.rule_id)

        server = VeriDPServer(scenario.topo, scenario.channel)
        net = DataPlaneNetwork(
            scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
        )
        engine = RepairEngine(scenario.controller, server, probe=net.inject)
        header = scenario.header_between("H1", "H3")
        assert net.inject_from_host("H1", header).status == "delivered"
        server.drain_incidents()

        DeleteRule("S2", t1.rule_id).apply(net)
        net.inject_from_host("H1", header)
        incident = server.drain_incidents()[0]
        result = engine.repair(incident)
        assert result.outcome is RepairOutcome.FIXED_BY_REISSUE
        assert net.inject_from_host("H1", header).status == "delivered"


class TestMultiTablePartitionProperty:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_two_table_pipelines_partition(self, data):
        """Transfer maps partition header space for random goto pipelines."""
        hs = HeaderSpace()
        topo = Topology()
        info = topo.add_switch("S", num_ports=4)
        prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16", "0.0.0.0/0"]
        # Table 0: a few classifiers, some jumping to table 1.
        for i in range(data.draw(st.integers(1, 3))):
            prefix = data.draw(st.sampled_from(prefixes))
            priority = data.draw(st.integers(1, 100))
            if data.draw(st.booleans()):
                action = GotoTable(1)
            else:
                action = data.draw(
                    st.sampled_from([Forward(1), Forward(2), Drop()])
                )
            info.flow_table.add(
                FlowRule(priority, Match.build(dst=prefix), action, table_id=0)
            )
        # Table 1: forwarding rules.
        for i in range(data.draw(st.integers(0, 3))):
            prefix = data.draw(st.sampled_from(prefixes))
            info.flow_table.add(
                FlowRule(
                    data.draw(st.integers(1, 100)),
                    Match.build(dst=prefix),
                    data.draw(st.sampled_from([Forward(3), Forward(4), Drop()])),
                    table_id=1,
                )
            )
        tmap = SwitchPredicates(info, hs).transfer_map(1)
        union = hs.bdd.or_many(tmap.values())
        assert union == hs.all_match
        values = list(tmap.values())
        for i, a in enumerate(values):
            for b in values[i + 1 :]:
                assert hs.bdd.and_(a, b) == hs.empty
