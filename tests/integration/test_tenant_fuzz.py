"""The tenant-churn fuzz campaign, ledger-reconciled end to end."""

import os

import pytest

from repro.probe import run_tenant_fuzz
from repro.probe.fuzz_tenants import TenantFuzzCampaign
from repro.topologies import build_linear

SEED = int(os.environ.get("REPRO_FUZZ_SEED", "7"))


def test_campaign_ledger_reconciles_linear():
    report = run_tenant_fuzz(rounds=14, seed=SEED)
    report.reconcile()  # raises on any missed leak or false incident
    assert report.leak_rounds, "seeded schedule must inject leaks"
    assert report.consistent_rounds, "and consistent slice churn"
    assert report.detection_rate == 1.0
    assert report.blame_rate == 1.0
    assert report.final_converged
    assert report.final_rule_incidents == 0
    assert report.final_isolation_incidents == 0


def test_leak_rounds_are_rule_consistent_but_detected():
    """The headline claim: rule-level verification is blind to leaks."""
    report = run_tenant_fuzz(rounds=14, seed=SEED)
    report.reconcile()
    for r in report.leak_rounds:
        assert r.detected and r.pair_ok and r.blamed_ok and r.healed_clean
    # Rule-level consistency held throughout: the final full probe sweep
    # raised no verification incident even though leaks were injected.
    assert report.final_rule_incidents == 0


def test_incremental_accounting_holds():
    """Rechecks examine only dirty pairs, scoped to change-feed victims."""
    report = run_tenant_fuzz(rounds=14, seed=SEED)
    mutating = [
        r for r in report.rounds
        if r.kind in ("tenant-churn", "tenant-leak") and r.ops
    ]
    assert mutating, "seeded schedule must include rule-churn rounds"
    for r in mutating:
        assert r.victims_ok, f"round {r.index}: victim scope wrong"
        assert r.scoped, f"round {r.index}: not incremental"
        assert r.table_pairs_checked < r.full_table_pairs


def test_three_tenant_campaign():
    report = run_tenant_fuzz(rounds=10, seed=SEED, tenant_count=3)
    report.reconcile()
    assert len(report.tenants) == 3


def test_campaign_requires_routeless_scenario():
    with pytest.raises(ValueError):
        TenantFuzzCampaign(build_linear(4))


def test_campaign_validates_tenant_count():
    with pytest.raises(ValueError):
        TenantFuzzCampaign(
            build_linear(4, install_routes=False), tenant_count=1
        )
