"""The control-plane state-fuzz campaign, ledger-reconciled end to end."""

import os

import pytest

from repro.probe import run_state_fuzz
from repro.probe.fuzz_state import StateFuzzCampaign
from repro.topologies import build_fattree, build_linear

SEED = int(os.environ.get("REPRO_FUZZ_SEED", "7"))


def test_campaign_ledger_reconciles_linear():
    report = run_state_fuzz(rounds=14, seed=SEED)
    report.reconcile()  # raises on any missed desync or false positive
    assert report.desync_rounds, "seeded schedule must exercise desyncs"
    assert report.consistent_rounds, "and consistent mutations"
    assert report.detection_rate == 1.0
    assert report.blame_rate >= 0.5
    assert report.final_coverage == 1.0
    assert report.final_converged and report.final_incidents == 0


def test_campaign_detects_on_fattree():
    report = run_state_fuzz(
        lambda: build_fattree(4, install_routes=False), rounds=6, seed=SEED
    )
    report.reconcile()
    assert report.detection_rate == 1.0
    assert report.final_coverage == 1.0


def test_campaign_requires_routeless_scenario():
    with pytest.raises(ValueError):
        StateFuzzCampaign(build_linear(4))


def test_baseline_sweep_is_clean():
    """Before any mutation the dual-plane install must probe fully clean."""
    campaign = StateFuzzCampaign(build_linear(4, install_routes=False), seed=0)
    run = campaign._probe_close()
    assert run.converged and run.incidents == 0
    assert not campaign.server.drain_incidents()


def test_churn_round_flags_only_stale_window():
    """Mid-coalescing-window probe incidents are ledgered as stale, and the
    flushed state must verify clean."""
    campaign = StateFuzzCampaign(build_linear(4, install_routes=False), seed=3)
    for index in range(30):
        record = campaign.run_round(index)
        if record.kind == "consistent-churn":
            break
    else:
        pytest.skip("seed produced no churn round in 30 draws")
    assert not record.desync
    assert record.incidents == 0  # post-flush sweep is clean
    campaign.report.final_converged = True  # only round-level checks here
    assert not campaign.report.false_positives
