"""Integration tests: the paper's Section 6.2 function tests.

Four fault classes injected on the Stanford-like backbone (the paper's own
fixture), each detected and localized by VeriDP:

* **black hole**  — the boza rule matching ``dst 172.20.10.32/27`` is turned
  into a drop,
* **path deviation** — the same rule is re-pointed towards the other
  backbone router,
* **access violation** — the sozb ACL denying ``10.0.0.0/8`` is deleted
  out-of-band, letting forbidden traffic reach cozb,
* **forwarding loop** — two backbone routers are rewired to bounce traffic
  between each other.
"""

import pytest

from repro.core.server import VeriDPServer
from repro.core.verifier import Verdict
from repro.dataplane import (
    DataPlaneNetwork,
    DeleteRule,
    DeliveryStatus,
    ModifyRuleOutput,
)
from repro.netmodel.rules import DROP_PORT, Drop
from repro.topologies import build_stanford


@pytest.fixture
def stanford():
    scenario = build_stanford(subnets_per_zone=1)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )
    return scenario, server, net


def boza_victim_rule(scenario, net):
    """The boza rule forwarding the paper's 172.20.10.32/27 flow."""
    header = scenario.header_between("h_coza_0", "h_boza_0")
    assert header.dst_ip == 0xAC140A21  # 172.20.10.33
    # The flow towards boza's host transits boza last; fault its local rule.
    rule = net.switch("boza").table.lookup(header, 1)
    assert rule is not None
    return header, rule


class TestBlackHole:
    def test_detected_and_localized(self, stanford):
        scenario, server, net = stanford
        header, rule = boza_victim_rule(scenario, net)
        ModifyRuleOutput("boza", rule.rule_id, DROP_PORT).apply(net)

        result = net.inject_from_host("h_coza_0", header)
        assert result.status == DeliveryStatus.DROPPED

        incidents = server.drain_incidents()
        assert len(incidents) == 1
        assert not incidents[0].verification.passed
        assert "boza" in incidents[0].blamed_switches

    def test_healthy_flow_first(self, stanford):
        scenario, server, net = stanford
        header, _ = boza_victim_rule(scenario, net)
        result = net.inject_from_host("h_coza_0", header)
        assert result.status == DeliveryStatus.DELIVERED
        assert server.incidents == []


class TestPathDeviation:
    def test_detected_and_localized(self, stanford):
        scenario, server, net = stanford
        header, rule = boza_victim_rule(scenario, net)
        # Re-point towards the *other* backbone (port 2 = bbrb uplink).
        wrong_port = 2 if rule.output_port() != 2 else 1
        ModifyRuleOutput("boza", rule.rule_id, wrong_port).apply(net)

        result = net.inject_from_host("h_coza_0", header)
        incidents = server.drain_incidents()
        assert incidents, f"deviation went undetected ({result.status})"
        assert "boza" in incidents[0].blamed_switches

    def test_real_path_recovered(self, stanford):
        scenario, server, net = stanford
        header, rule = boza_victim_rule(scenario, net)
        wrong_port = 2 if rule.output_port() != 2 else 1
        ModifyRuleOutput("boza", rule.rule_id, wrong_port).apply(net)
        result = net.inject_from_host("h_coza_0", header)
        incident = server.drain_incidents()[0]
        localization = incident.localization
        assert localization is not None
        assert localization.contains_path(result.hops) or (
            incident.verification.report.ttl_expired
            and localization.contains_prefix_of(result.hops)
        )


class TestAccessViolation:
    def test_deleted_acl_detected(self, stanford):
        scenario, server, net = stanford
        header = scenario.header_between("h_sozb_0", "h_cozb_0")
        assert (header.dst_ip >> 24) == 10  # inside the denied 10.0.0.0/8

        # Healthy behaviour: sozb drops it, and the drop verifies.
        result = net.inject_from_host("h_sozb_0", header)
        assert result.status == DeliveryStatus.DROPPED
        assert server.incidents == []

        # Fault: the ACL drop rule vanishes from the data plane only.
        acl_rule = next(
            r
            for r in net.switch("sozb").table
            if isinstance(r.action, Drop)
        )
        DeleteRule("sozb", acl_rule.rule_id).apply(net)

        result = net.inject_from_host("h_sozb_0", header)
        assert result.status == DeliveryStatus.DELIVERED  # violation!
        incidents = server.drain_incidents()
        assert len(incidents) == 1
        assert incidents[0].verification.verdict in (
            Verdict.FAIL_NO_PATH,
            Verdict.FAIL_UNKNOWN_PAIR,
            Verdict.FAIL_TAG_MISMATCH,
        )
        assert "sozb" in incidents[0].blamed_switches


class TestForwardingLoop:
    def test_loop_detected_via_ttl_report(self, stanford):
        scenario, server, net = stanford
        header, rule = boza_victim_rule(scenario, net)
        # Wire a loop: bbra sends boza-bound traffic to bbrb and vice versa.
        bbra_rule = net.switch("bbra").table.lookup(header, 5)
        bbrb_rule = net.switch("bbrb").table.lookup(header, 5)
        ModifyRuleOutput("bbra", bbra_rule.rule_id, 1).apply(net)  # -> bbrb
        ModifyRuleOutput("bbrb", bbrb_rule.rule_id, 1).apply(net)  # -> bbra

        result = net.inject_from_host("h_coza_0", header)
        assert result.status == DeliveryStatus.LOOPED
        assert result.reports and result.reports[0].ttl_expired
        incidents = server.drain_incidents()
        assert incidents
        assert not incidents[0].verification.passed


class TestPriorityBug:
    def test_ignored_priorities_detected(self, stanford):
        """The HP ProCurve scenario (Section 2.2): overlapping rules resolved
        by the wrong priority produce a detectable deviation."""
        from repro.dataplane import IgnorePriorities
        from repro.netmodel.rules import FlowRule, Forward, Match

        scenario, server, net = stanford
        # Overlapping low-priority rule at bbra hijacking coza-bound traffic.
        scenario.controller.install(
            "bbra", FlowRule(1, Match.build(dst="171.66.0.0/16"), Forward(9))
        )
        header = scenario.header_between("h_boza_0", "h_coza_0")
        assert scenario.subnets["h_coza_0"].startswith("171.66.")
        healthy = net.inject_from_host("h_boza_0", header)
        assert healthy.status == DeliveryStatus.DELIVERED
        assert server.drain_incidents() == []

        IgnorePriorities("bbra").apply(net)
        net.inject_from_host("h_boza_0", header)
        assert server.drain_incidents()
