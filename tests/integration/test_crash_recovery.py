"""Crash-recovery: SIGKILL mid-ingestion, restart, replay the ledger.

The acceptance criterion as an executable test.  A subprocess driver
(:mod:`tests.persist._crash_driver`) ingests a deterministic report
stream with a live data-plane fault into a durable server
(``fsync="always"``), appending every incident to an fsynced JSONL
ledger.  This test SIGKILLs the driver mid-stream and asserts

* the restarted server's path table equals an independent rebuild from
  the WAL's control records (snapshot + suffix == full replay),
* deterministic replay of the WAL reproduces the pre-kill incident
  ledger exactly (direct mode) — bounded by the last ledger position,
* the same holds across repeated kill/restart cycles, and
* the sharded-daemon path (WorkerKill *plus* SIGKILL of the whole
  process) loses no ledgered incident.

The driver stream is fully deterministic (no RNG), so there is no seed
to pin; ``CHAOS_SEED`` is irrelevant here by construction.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.bdd.headerspace import HeaderSpace
from repro.core.incremental import IncrementalPathTable, LpmProvider
from repro.core.server import VeriDPServer
from repro.persist import PersistentState
from repro.persist.recovery import apply_control_event
from repro.persist.replay import replay
from repro.persist.snapshot import bdd_fingerprint
from repro.persist.wal import RT_CONTROL, ControlEvent
from repro.topologies import build_linear

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
DRIVER = REPO_ROOT / "tests" / "persist" / "_crash_driver.py"
WAIT_DEADLINE = 60.0


def fingerprint_signature(table, hs):
    return {
        (inport, outport, entry.hops): bdd_fingerprint(hs.bdd, entry.headers)
        for (inport, outport), entries in table._entries.items()
        for entry in entries
    }


def start_driver(state_dir, ledger, mode, log_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    log = open(log_path, "ab")
    return subprocess.Popen(
        [sys.executable, str(DRIVER), state_dir, ledger, "--mode", mode],
        cwd=str(REPO_ROOT),
        env=env,
        stdout=log,
        stderr=subprocess.STDOUT,
        start_new_session=True,  # own process group: killpg reaps shard workers
    )


def kill_hard(proc):
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:  # pragma: no cover - driver already gone
        pass
    proc.wait(timeout=10)


def read_ledger(path):
    """Parse ledger lines, dropping a torn (kill-interrupted) tail line."""
    boots, incidents = [], []
    if not os.path.exists(path):
        return boots, incidents
    with open(path) as fh:
        for line in fh:
            try:
                obj = json.loads(line)
            except ValueError:
                continue  # torn tail
            if "boot" in obj:
                boots.append(obj)
            else:
                incidents.append(obj)
    return boots, incidents


def wait_for_incidents(proc, ledger, count, log_path):
    deadline = time.monotonic() + WAIT_DEADLINE
    while time.monotonic() < deadline:
        _, incidents = read_ledger(ledger)
        if len(incidents) >= count:
            return incidents
        if proc.poll() is not None:
            sys.stdout.write(open(log_path).read())
            raise AssertionError(
                f"driver exited early with rc={proc.returncode}"
            )
        time.sleep(0.05)
    kill_hard(proc)
    sys.stdout.write(open(log_path).read())
    raise AssertionError(
        f"driver produced <{count} incidents within {WAIT_DEADLINE}s"
    )


def rebuild_from_wal_controls(state_dir, scenario):
    """Independent ground truth: fresh table from the WAL's control log."""
    hs = HeaderSpace()
    provider = LpmProvider(scenario.topo, hs)
    updater = IncrementalPathTable(scenario.topo, hs, provider=provider)
    with PersistentState(state_dir, read_only=True) as state:
        for record in state.wal.records():
            if record.rtype == RT_CONTROL:
                apply_control_event(updater, ControlEvent.decode(record.payload))
    return hs, updater


def normalize(key):
    return json.loads(json.dumps(key))


def replayed_incidents(state_dir, scenario, stop_seq=None):
    with PersistentState(state_dir, read_only=True) as state:
        result = replay(
            state, scenario.topo, stop_seq=stop_seq, localize=False
        )
    return [(i.seq, normalize(i.key)) for i in result.incidents]


def assert_recovered_table_matches_rebuild(state_dir, scenario):
    server = VeriDPServer(
        scenario.topo, state_dir=state_dir, fsync="never"
    )
    try:
        assert server.boot_source in ("snapshot", "wal")
        recovered = fingerprint_signature(server.table, server.hs)
    finally:
        server.close()
    hs, updater = rebuild_from_wal_controls(state_dir, scenario)
    assert recovered == fingerprint_signature(updater.table, hs)


class TestDirectCrashRecovery:
    def test_sigkill_then_restart_and_exact_replay(self, tmp_path):
        scenario = build_linear(4)
        state_dir = str(tmp_path / "state")
        ledger = str(tmp_path / "ledger.jsonl")
        log_path = str(tmp_path / "driver.log")

        proc = start_driver(state_dir, ledger, "direct", log_path)
        try:
            wait_for_incidents(proc, ledger, 6, log_path)
        finally:
            kill_hard(proc)

        _, incidents = read_ledger(ledger)
        assert len(incidents) >= 6

        # Recovered table == independent rebuild from the control log.
        assert_recovered_table_matches_rebuild(state_dir, scenario)

        # Replay up to the last ledgered position reproduces the ledger
        # *exactly*: same incidents, same order, same WAL offsets.  (In
        # direct mode each ledger line's wal_seq is its report's seq.)
        stop_seq = incidents[-1]["wal_seq"]
        got = replayed_incidents(scenario=scenario, state_dir=state_dir,
                                 stop_seq=stop_seq)
        want = [(e["wal_seq"], normalize(e["key"])) for e in incidents]
        assert got == want

    def test_kill_restart_loop_stays_consistent(self, tmp_path):
        """Three kill/restart cycles over one state dir: the table always
        equals the rebuild, and no ledgered incident is ever lost."""
        scenario = build_linear(4)
        state_dir = str(tmp_path / "state")
        ledger = str(tmp_path / "ledger.jsonl")
        log_path = str(tmp_path / "driver.log")

        total = 0
        for cycle in range(3):
            proc = start_driver(state_dir, ledger, "direct", log_path)
            try:
                wait_for_incidents(proc, ledger, total + 3, log_path)
            finally:
                kill_hard(proc)
            boots, incidents = read_ledger(ledger)
            total = len(incidents)
            assert len(boots) == cycle + 1
            assert_recovered_table_matches_rebuild(state_dir, scenario)

        # Later boots recovered from disk, not from scratch.
        assert boots[0]["boot"] == "bootstrap"
        assert all(b["boot"] in ("snapshot", "wal") for b in boots[1:])

        # Every ledgered incident appears in the replay at its exact
        # WAL offset.  (The replay may additionally contain incidents
        # verified in the instant between the WAL append and the
        # ledger write of a kill — those are extra, never missing.)
        got = dict(replayed_incidents(scenario=scenario, state_dir=state_dir))
        for entry in incidents:
            assert got.get(entry["wal_seq"]) == normalize(entry["key"])


class TestDaemonCrashRecovery:
    def test_workerkill_plus_sigkill_loses_no_ledgered_incident(self, tmp_path):
        """Sharded daemon: one shard worker is SIGKILLed mid-run by the
        driver itself, then this test SIGKILLs the whole process group."""
        scenario = build_linear(4)
        state_dir = str(tmp_path / "state")
        ledger = str(tmp_path / "ledger.jsonl")
        log_path = str(tmp_path / "driver.log")

        proc = start_driver(state_dir, ledger, "daemon", log_path)
        try:
            wait_for_incidents(proc, ledger, 4, log_path)
        finally:
            kill_hard(proc)

        _, incidents = read_ledger(ledger)
        assert_recovered_table_matches_rebuild(state_dir, scenario)

        # Shard merge order is nondeterministic, so compare multisets:
        # every ledgered incident key must be reproduced by the replay
        # at least as many times as it was ledgered.
        got = [key for _, key in replayed_incidents(
            scenario=scenario, state_dir=state_dir)]
        for entry in incidents:
            want = normalize(entry["key"])
            assert got.count(want) >= [
                normalize(e["key"]) for e in incidents
            ].count(want)
