"""Every example script must run clean — examples are part of the API.

Each is executed as a real subprocess (fresh interpreter, no shared state)
and must exit 0; a few key output lines are asserted so a silently broken
example cannot pass.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

#: script -> substrings its stdout must contain
EXPECTATIONS = {
    "quickstart.py": ["healthy network", "DETECTED", "BLAMED"],
    "function_tests.py": ["black hole", "VeriDP:", "loop"],
    "waypoint_firewall.py": ["FIREWALL BYPASSED", "blamed ['S2']"],
    "traffic_engineering.py": ["healthy split", "blame tally"],
    "datacenter_monitoring.py": ["FAULT INJECTED", "DETECTED", "within budget"],
    "nat_gateway.py": ["verification: PASS", "hijacked!"],
    "self_healing.py": ["fixed-by-reissue", "fixed-by-resync", "blind spot"],
    "policy_audit.py": ["HOLDS", "violation!", "blamed ['sozb']"],
    "production_deployment.py": ["UDP", "repair: repair fixed", "coverage:"],
    "postmortem_replay.py": [
        "offline replay",
        "first failure at WAL seq",
        "localization blames: S3",
    ],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{name} exited {result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_example_runs_clean(name):
    stdout = run_example(name)
    for needle in EXPECTATIONS[name]:
        assert needle in stdout, f"{name}: missing {needle!r} in output"


def test_every_example_is_covered():
    """New example scripts must be added to the expectations table."""
    scripts = {
        f for f in os.listdir(EXAMPLES_DIR)
        if f.endswith(".py") and not f.startswith("_")
    }
    assert scripts == set(EXPECTATIONS)
