"""The cluster acceptance scenario: chaos stream + kill + rebalance.

A 3-node cluster (process nodes — real SIGKILL targets) verifies a
chaos-campaign report stream while suffering one induced node kill with
rejoin and one coordinator-driven rebalance mid-stream.  The run must
finish with the ledger reconciling *exactly* — every accepted payload
verified once, none lost to the kill window, none double-counted by the
redelivery — and the rebalances must have moved only the migrated pairs.

Seeded like the daemon chaos campaign (``CHAOS_SEED``); a scaled-down
stream runs by default, ``CHAOS_FULL=1`` opts into the big one.
"""

import os

from repro.cluster import VeriDPCluster
from repro.core.reports import pack_report
from repro.core.server import VeriDPServer
from repro.dataplane import (
    BitFlipReports,
    DataPlaneNetwork,
    DuplicateReports,
    LoseReports,
    ReorderReports,
    ReportStreamFaultInjector,
    TruncateReports,
)
from repro.topologies import build_linear

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1202"))
FULL = os.environ.get("CHAOS_FULL", "") == "1"
TOTAL_REPORTS = 20_000 if FULL else 4_000
JOIN_DEADLINE = 120.0


def make_rig():
    scenario = build_linear(4)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    return scenario, server, net


def healthy_payloads(scenario, net, count):
    pairs = scenario.host_pairs()
    base = []
    for src, dst in pairs:
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        base += [pack_report(r, net.codec) for r in result.reports]
    payloads = []
    while len(payloads) < count:
        payloads += base
    return payloads[:count]


def campaign_faults():
    return [
        LoseReports(0.05),
        DuplicateReports(0.01),
        ReorderReports(0.1, window=32),
        TruncateReports(0.01),
        BitFlipReports(0.01),
    ]


class TestClusterChaos:
    def test_cluster_survives_kill_rejoin_and_rebalance(self):
        scenario, server, net = make_rig()
        payloads = healthy_payloads(scenario, net, TOTAL_REPORTS)
        injection = ReportStreamFaultInjector(
            campaign_faults(), seed=CHAOS_SEED
        ).run(payloads)
        stream = injection.payloads
        kill_at = len(stream) // 3
        rebalance_at = 2 * len(stream) // 3

        with VeriDPCluster(
            server, nodes=3, node_mode="process", batch_size=64
        ) as cluster:
            coordinator = cluster.coordinator
            boot_moves = coordinator.moved_pairs  # bootstrap placement
            boot_rebalances = coordinator.rebalances
            for i, payload in enumerate(stream):
                cluster.submit(payload)
                if i == kill_at:
                    cluster.kill_node(cluster.nodes()[0])
                    dead = cluster.check_nodes()
                    assert len(dead) == 1
                    rejoined = cluster.add_node()  # kill + rejoin
                    assert rejoined in cluster.nodes()
                if i == rebalance_at:
                    # Coordinator-driven rebalance: a voluntary join that
                    # re-slices the ring while the stream is in flight.
                    placement_before = dict(cluster.frontend.placement)
                    moves_before = coordinator.moved_pairs
                    joined = cluster.add_node()
                    placement_after = dict(cluster.frontend.placement)
                    moved_keys = [
                        k for k in placement_after
                        if placement_before.get(k) != placement_after[k]
                    ]
                    # Scoped movement: every migrated key went to the
                    # joiner, and the move counter covers exactly the
                    # pairs under the migrated keys — nothing else.
                    assert all(
                        placement_after[k] == joined for k in moved_keys
                    )
                    moved_pair_count = sum(
                        len(coordinator._specs[k]) for k in moved_keys
                    )
                    assert (
                        coordinator.moved_pairs - moves_before
                        == moved_pair_count
                    )
            cluster.join(timeout=JOIN_DEADLINE)
            stats = cluster.stats()
            converged = cluster.converged()

        # The churn happened as scripted.
        assert stats["failovers"] == 1
        assert stats["rebalances"] - boot_rebalances == 2  # rejoin + voluntary
        assert stats["moved_pairs"] > boot_moves

        # Exact accounting: every accepted payload got exactly one verdict
        # — the kill window redelivered, never dropped or double-counted.
        front = stats["frontend"]
        accepted = (
            front["submitted"]
            - front["precheck_rejected"]
            - front["dropped_no_node"]
        )
        assert front["dropped_no_node"] == 0
        assert stats["processed"] + stats["malformed"] == accepted
        assert sum(stats["counters"].values()) == stats["processed"]
        assert stats["crashed"] == 0

        # Verdict fidelity: healthy deliveries pass; corruption bounds
        # the failures (the injector reports how many bytes it touched).
        corrupted_bound = injection.corrupted
        failures = stats["processed"] - stats["counters"]["pass"]
        assert failures <= corrupted_bound
        assert stats["incidents"] <= corrupted_bound

        # Replicas converged after all the churn.
        assert converged

    def test_fault_free_control_run_is_all_pass(self):
        """The control arm: no faults, no churn — pure pass-through."""
        scenario, server, net = make_rig()
        payloads = healthy_payloads(scenario, net, 500)
        with VeriDPCluster(server, nodes=3, node_mode="process") as cluster:
            for payload in payloads:
                cluster.submit(payload)
            cluster.join(timeout=JOIN_DEADLINE)
            stats = cluster.stats()
            assert stats["processed"] == 500
            assert stats["counters"]["pass"] == 500
            assert stats["frontend"]["redelivered_reports"] == 0
            assert cluster.converged()
