"""The chaos campaign: the monitoring plane under monitoring-plane faults.

This is the PR's acceptance criterion as an executable test.  A 50k-report
run is pushed through the sharded daemon while the report stream suffers
5% loss, 2% corruption (1% truncation + 1% bit flips), 1% duplication and
some reordering, and one shard worker is SIGKILLed mid-run.  The campaign
must finish with

* zero deadlocks (every ``join`` completes within its deadline),
* zero uncaught exceptions (corruption dead-letters; it never escapes),
* exact accounting — every submitted payload is processed, dead-lettered,
  dropped by backpressure, or honestly reported lost to the worker kill,
* verdict fidelity — uncorrupted deliveries verify exactly as in a
  fault-free control run (corrupted deliveries bound the false positives).

The seed is fixed for reproducibility and can be overridden with the
``CHAOS_SEED`` environment variable (the CI ``chaos-smoke`` job pins it).
A scaled-down copy of the campaign runs by default; the full 50k-report
version is opt-in via ``CHAOS_FULL=1`` so the tier-1 suite stays fast.
"""

import os
import socket
import time
import urllib.request

import pytest

from repro.core.daemon import ShardedVeriDPDaemon, UdpReportListener, VeriDPDaemon
from repro.obs.exposition import parse_prometheus_text
from repro.core.reports import pack_report
from repro.core.resilience import RestartBackoff
from repro.core.server import VeriDPServer
from repro.dataplane import (
    BitFlipReports,
    DataPlaneNetwork,
    DuplicateReports,
    LoseReports,
    ReorderReports,
    ReportStreamFaultInjector,
    TruncateReports,
    WorkerKill,
)
from repro.topologies import build_linear

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1202"))
FULL = os.environ.get("CHAOS_FULL", "") == "1"
TOTAL_REPORTS = 50_000 if FULL else 8_000
JOIN_DEADLINE = 120.0  # the zero-deadlock bound: join() must beat this


def make_rig():
    scenario = build_linear(4)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    return scenario, server, net


def healthy_payloads(scenario, net, count):
    """``count`` wire reports from healthy all-pairs traffic (cycled)."""
    pairs = scenario.host_pairs()
    base = []
    for src, dst in pairs:
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        base += [pack_report(r, net.codec) for r in result.reports]
    payloads = []
    while len(payloads) < count:
        payloads += base
    return payloads[:count]


def campaign_faults():
    return [
        LoseReports(0.05),
        DuplicateReports(0.01),
        ReorderReports(0.1, window=32),
        TruncateReports(0.01),
        BitFlipReports(0.01),
    ]


class TestChaosCampaign:
    def test_sharded_daemon_survives_the_campaign(self):
        scenario, server, net = make_rig()
        payloads = healthy_payloads(scenario, net, TOTAL_REPORTS)

        injection = ReportStreamFaultInjector(
            campaign_faults(), seed=CHAOS_SEED
        ).run(payloads)
        stream = injection.payloads
        kill_at = len(stream) // 3

        with ShardedVeriDPDaemon(
            server,
            workers=2,
            batch_size=64,
            overflow="block",
            restart_budget=3,
            poll_interval=0.02,
            backoff=RestartBackoff(base=0.01, cap=0.05),
        ) as daemon:
            for i, payload in enumerate(stream):
                daemon.submit(payload)
                if i == kill_at:
                    WorkerKill(shard=0).apply(daemon)
            # Zero deadlocks: join() raises RuntimeError past its deadline.
            daemon.join(timeout=JOIN_DEADLINE)
            stats = daemon.stats()

        # The kill was observed and survived without degradation.
        assert stats["restarts"] >= 1
        assert not stats["degraded"]
        assert stats["mode"] == "process"

        # Exact accounting: every delivered payload has one fate.
        assert (
            stats["processed"]
            + stats["malformed"]
            + stats["verify_errors"]
            + stats["dropped_full_queue"]
            + stats["lost_in_restart"]
            == len(stream)
        )
        # Corruption dead-letters (or verifies as FAIL); it never vanishes.
        # Every dead letter traces to a counted event: a worker decode
        # failure (sampled, capped at 64 per flush), a worker crash, or a
        # failing report the parent-side codec rejects at re-ingest.
        assert stats["dead_lettered"] > 0
        assert (
            stats["dead_lettered"]
            <= stats["malformed"] + stats["verify_errors"] + stats["failed"]
        )
        # False positives are bounded by the corruption the injector logged:
        # only byte-corrupted deliveries may fail verification or decode.
        assert stats["failed"] + stats["malformed"] <= injection.corrupted
        assert stats["verified"] == stats["processed"]

    def test_verdicts_match_fault_free_run_on_uncorrupted_reports(self):
        """Loss/duplication/reordering must not change a single verdict."""
        scenario, server, net = make_rig()
        payloads = healthy_payloads(scenario, net, TOTAL_REPORTS // 4)

        injection = ReportStreamFaultInjector(
            campaign_faults(), seed=CHAOS_SEED
        ).run(payloads)

        # Control: a fault-free daemon over the pristine stream.
        control_scenario, control_server, _ = make_rig()
        with VeriDPDaemon(control_server, workers=2, overflow="block") as control:
            for payload in payloads:
                control.submit(payload)
            control.join(timeout=JOIN_DEADLINE)
        assert control_server.verifier.failure_count == 0

        # Campaign: only the uncorrupted survivors, chaotic order and all.
        with ShardedVeriDPDaemon(
            server, workers=2, batch_size=32, overflow="block",
            poll_interval=0.02, backoff=RestartBackoff(base=0.01, cap=0.05),
        ) as daemon:
            for delivery in injection.uncorrupted:
                daemon.submit(delivery.payload)
            daemon.join(timeout=JOIN_DEADLINE)
            stats = daemon.stats()

        # Identical verdicts: every uncorrupted report PASSes, exactly as in
        # the control run; nothing was dead-lettered or dropped.
        assert stats["processed"] == len(injection.uncorrupted)
        assert stats["failed"] == 0
        assert stats["malformed"] == 0
        assert stats["dead_lettered"] == 0
        assert server.incidents == []

    def test_vector_dispatch_survives_the_campaign(self):
        """ISSUE 6 satellite: the campaign with the numpy vector kernel
        explicitly enabled must reconcile the submission ledger exactly —
        the kernel's bulk accounting (frame transport, per-code row
        resolution) cannot lose or double-count a single payload."""
        pytest.importorskip("numpy")
        scenario, server, net = make_rig()
        payloads = healthy_payloads(scenario, net, TOTAL_REPORTS // 2)

        injection = ReportStreamFaultInjector(
            campaign_faults(), seed=CHAOS_SEED
        ).run(payloads)
        stream = injection.payloads
        kill_at = len(stream) // 3

        with ShardedVeriDPDaemon(
            server,
            workers=2,
            batch_size=64,
            vector=True,
            overflow="block",
            restart_budget=3,
            poll_interval=0.02,
            backoff=RestartBackoff(base=0.01, cap=0.05),
        ) as daemon:
            for i, payload in enumerate(stream):
                daemon.submit(payload)
                if i == kill_at:
                    WorkerKill(shard=0).apply(daemon)
            daemon.join(timeout=JOIN_DEADLINE)
            stats = daemon.stats()

        assert stats["vector"] is True
        assert stats["restarts"] >= 1
        assert not stats["degraded"]
        # Exact ledger reconciliation under vector dispatch.
        assert (
            stats["processed"]
            + stats["malformed"]
            + stats["verify_errors"]
            + stats["dropped_full_queue"]
            + stats["lost_in_restart"]
            == len(stream)
        )
        assert stats["verified"] == stats["processed"]
        assert stats["failed"] + stats["malformed"] <= injection.corrupted

    def test_threaded_daemon_runs_same_campaign(self):
        """The fallback path handles the identical stream (smaller dose)."""
        scenario, server, net = make_rig()
        payloads = healthy_payloads(scenario, net, TOTAL_REPORTS // 8)
        injection = ReportStreamFaultInjector(
            campaign_faults(), seed=CHAOS_SEED + 1
        ).run(payloads)

        with VeriDPDaemon(server, workers=3, overflow="block") as daemon:
            for payload in injection.payloads:
                daemon.submit(payload)
            daemon.join(timeout=JOIN_DEADLINE)
            stats = daemon.stats()

        assert stats["processed"] + stats["malformed"] + stats[
            "verify_errors"
        ] == len(injection.payloads)
        assert stats["failed"] + stats["malformed"] <= injection.corrupted

    def test_batched_listener_reconciles_ledger_exactly(self):
        """ISSUE 10: the campaign delivered over real UDP through the
        *batched* listener (frame drain -> vectorized screen -> frame
        queue handoff -> wire-kernel verify) must reconcile the ledger
        exactly: every received datagram is either admitted to the daemon
        or transport-rejected with a counted reason, and every admitted
        report has exactly one fate."""
        scenario, server, net = make_rig()
        payloads = healthy_payloads(scenario, net, TOTAL_REPORTS // 4)
        injection = ReportStreamFaultInjector(
            campaign_faults(), seed=CHAOS_SEED
        ).run(payloads)
        # A few oversize datagrams on top: the campaign's faults only ever
        # shorten or flip, and the truncation detector deserves live fire.
        oversize_extras = 3
        stream = list(injection.payloads) + [
            payloads[0] + b"oversized-tail"
        ] * oversize_extras
        total = len(stream)

        with VeriDPDaemon(server, workers=2, overflow="block") as daemon:
            with UdpReportListener(daemon, ingest_batch=64) as listener:
                sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                try:
                    for sent, payload in enumerate(stream, start=1):
                        sender.sendto(payload, listener.address)
                        if sent % 256 == 0:
                            # Pace the sender so the kernel receive buffer
                            # never overflows: loopback must deliver every
                            # datagram or the reconciliation is meaningless.
                            deadline = time.time() + 30
                            while (
                                listener.received < sent - 1024
                                and time.time() < deadline
                            ):
                                time.sleep(0.002)
                finally:
                    sender.close()
                deadline = time.time() + JOIN_DEADLINE
                while listener.received < total and time.time() < deadline:
                    time.sleep(0.01)
                assert daemon.join(timeout=JOIN_DEADLINE)
                lstats = listener.stats()
            stats = daemon.stats()

        # Every datagram arrived (the pacing above guarantees delivery).
        assert lstats["received"] == total
        assert lstats["oversize"] == oversize_extras
        assert lstats["malformed"] == 0  # no submit ever raised

        # Transport split: received == admitted-to-daemon + rejected-at-edge.
        transport_rejects = (
            lstats["oversize"] + lstats["wrong_size"] + lstats["malformed"]
        )
        assert stats["submitted"] + transport_rejects == total

        # Exact fates: processed, malformed (transport rejects included —
        # they are dead-lettered through the same counter), verify errors,
        # or counted queue drops.  Nothing vanishes.
        assert (
            stats["processed"]
            + stats["malformed"]
            + stats["verify_errors"]
            + stats["dropped"]
            == total
        )
        assert stats["dropped"] == 0  # block policy: loss-free admission
        assert stats["verified"] == stats["processed"]
        assert stats["frames"] > 0  # the frame path actually carried the run

        # False positives bounded by injected corruption (+ our oversize).
        assert (
            stats["failed"] + stats["malformed"]
            <= injection.corrupted + oversize_extras
        )
        # Dead letters trace to counted events only.
        assert stats["dead_lettered"] <= stats["malformed"] + stats["failed"]

    @pytest.mark.skipif(not FULL, reason="CHAOS_FULL=1 runs the 50k campaign")
    def test_full_scale_marker(self):
        """Documents that the scaled run above used the full 50k dose."""
        assert TOTAL_REPORTS == 50_000


class TestMetricsUnderChaos:
    """The observability plane scraped while the campaign is in flight."""

    REQUIRED_FAMILIES = (
        # ingestion
        "veridp_submitted_total",
        "veridp_processed_total",
        "veridp_malformed_total",
        # queue / backpressure
        "veridp_queue_depth",
        "veridp_queue_dropped_total",
        # verification
        "veridp_verifications_total",
        "veridp_flow_cache_hits_total",
        # localization
        "veridp_localizations_total",
        "veridp_incidents_total",
        # supervisor
        "veridp_worker_restarts_total",
        "veridp_lost_in_restart_total",
        "veridp_degraded",
    )

    def test_live_scrape_reconciles_with_ledger(self):
        """Satellite 5: ``/metrics`` scraped mid-campaign must be valid
        exposition covering every required family, and the final scrape must
        reconcile *exactly* against the submission ledger."""
        scenario, server, net = make_rig()
        payloads = healthy_payloads(scenario, net, TOTAL_REPORTS // 4)
        injection = ReportStreamFaultInjector(
            campaign_faults(), seed=CHAOS_SEED
        ).run(payloads)
        stream = injection.payloads
        kill_at = len(stream) // 3

        with ShardedVeriDPDaemon(
            server,
            workers=2,
            batch_size=64,
            overflow="block",
            restart_budget=3,
            poll_interval=0.02,
            backoff=RestartBackoff(base=0.01, cap=0.05),
            metrics_port=0,
        ) as daemon:
            host, port = daemon.metrics_address
            url = f"http://{host}:{port}/metrics"
            mid_text = None
            for i, payload in enumerate(stream):
                daemon.submit(payload)
                if i == kill_at:
                    WorkerKill(shard=0).apply(daemon)
                if i == len(stream) // 2:
                    with urllib.request.urlopen(url, timeout=10) as resp:
                        assert resp.status == 200
                        assert resp.headers.get("Content-Type").startswith(
                            "text/plain; version=0.0.4"
                        )
                        mid_text = resp.read().decode()
            daemon.join(timeout=JOIN_DEADLINE)
            with urllib.request.urlopen(url, timeout=10) as resp:
                final_text = resp.read().decode()
            stats = daemon.stats()

        # Survived the kill without degrading (the identity below assumes it).
        assert stats["restarts"] >= 1
        assert not stats["degraded"]

        # The mid-flight scrape parsed cleanly and covers every family the
        # acceptance criteria name (parse_prometheus_text raises on noise).
        mid = parse_prometheus_text(mid_text)
        for family in self.REQUIRED_FAMILIES:
            assert family in mid, f"missing family {family} in mid-run scrape"

        final = parse_prometheus_text(final_text)

        def total(name):
            return sum(final.get(name, {}).values())

        # Exact ledger reconciliation from the scrape alone: every submitted
        # payload is processed, malformed, a verify error, dropped by the
        # admission queue, or honestly reported lost to the worker kill.
        submitted = total("veridp_submitted_total")
        assert submitted == len(stream)
        assert (
            total("veridp_processed_total")
            + total("veridp_malformed_total")
            + total("veridp_verify_errors_total")
            + total("veridp_queue_dropped_total")
            + total("veridp_lost_in_restart_total")
            == submitted
        )

        # The scrape and the legacy stats() surface tell one story.
        assert total("veridp_processed_total") == stats["processed"]
        assert total("veridp_malformed_total") == stats["malformed"]
        assert total("veridp_lost_in_restart_total") == stats["lost_in_restart"]
        assert total("veridp_worker_restarts_total") == stats["restarts"]

        # Per-shard worker deltas merged into the parent account for every
        # processed report (shard families ship via snapshot/merge).
        assert total("veridp_shard_processed_total") == stats["processed"]
