"""ActiveProber: closure, budgets, rate limiting, dirty-pair replanning."""

import pytest

from repro.core.server import VeriDPServer
from repro.dataplane.faults import InjectRule
from repro.dataplane.network import DataPlaneNetwork
from repro.netmodel.rules import Drop, FlowRule, Match
from repro.probe import ActiveProber, ProbeBudget
from repro.probe.fuzz_state import StateFuzzCampaign
from repro.topologies import build_linear


class FakeTime:
    """Deterministic clock that only advances when something sleeps."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


def passive_setup(num_switches=4, passive_flows=1):
    scenario = build_linear(num_switches)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )
    for src, dst in scenario.host_pairs()[:passive_flows]:
        net.inject_from_host(src, scenario.header_between(src, dst))
    return scenario, server, net


def test_prober_closes_dark_coverage():
    _, server, net = passive_setup()
    before = server.coverage.report()
    assert before.dark_paths  # passive traffic leaves most paths dark
    prober = ActiveProber(server, net)
    run = prober.run()
    assert run.converged
    assert run.dark_after == 0 and run.incidents == 0
    after = server.coverage.report()
    assert after.path_coverage == 1.0
    assert after.pair_coverage == 1.0
    assert run.sent == run.dark_before


def test_probe_budget_max_probes():
    _, server, net = passive_setup(passive_flows=1)
    prober = ActiveProber(server, net, budget=ProbeBudget(max_probes=5))
    run = prober.run()
    assert run.budget_exhausted == "probes"
    assert run.sent == 5
    assert not run.converged
    assert run.dark_after > 0


def test_probe_budget_deadline():
    _, server, net = passive_setup()
    fake = FakeTime()
    prober = ActiveProber(
        server,
        net,
        budget=ProbeBudget(max_seconds=0.05, rate_per_s=100.0),
        clock=fake.clock,
        sleep=fake.sleep,
    )
    run = prober.run()
    assert run.budget_exhausted == "seconds"
    assert 0 < run.sent < run.dark_before


def test_probe_rate_limiting_spaces_sends():
    _, server, net = passive_setup()
    fake = FakeTime()
    prober = ActiveProber(
        server,
        net,
        budget=ProbeBudget(rate_per_s=50.0),
        clock=fake.clock,
        sleep=fake.sleep,
    )
    run = prober.run()
    assert run.converged
    # First send goes immediately; every later one waits its 20ms slot.
    assert len(fake.sleeps) == run.sent - 1
    assert fake.now == pytest.approx((run.sent - 1) * 0.02)


def test_budget_validation():
    with pytest.raises(ValueError):
        ProbeBudget(max_probes=0)
    with pytest.raises(ValueError):
        ProbeBudget(rate_per_s=-1.0)


def test_replan_after_flush_reprobes_only_dirty_pairs():
    """Regression: a staged rule flush must not re-probe the whole table."""
    campaign = StateFuzzCampaign(build_linear(4, install_routes=False), seed=0)
    prober = campaign.prober
    first = prober.run()
    assert first.converged
    total_entries = first.sent
    assert total_entries > 0
    untouched_plans = dict(prober._plans)

    # One consistent change: a /26 of H1's subnet blackholed at S2 on both
    # planes, staged through the coalescing window.
    campaign._install_both("S2", "10.0.0.0/26", -1)
    campaign.server.flush_pending_updates()

    second = prober.run()
    assert second.converged and second.incidents == 0
    # Only the pairs whose entries crossed S2 toward H1 went dark again.
    assert 0 < second.dark_before < total_entries
    assert prober.pairs_invalidated > 0
    dirtied = {
        pair for pair in untouched_plans if pair not in prober._plans
        or prober._plans[pair] is not untouched_plans[pair]
    }
    kept = set(untouched_plans) - dirtied
    assert kept  # untouched pairs kept their cached plans (same objects)
    assert second.dark_before <= sum(
        len(campaign.server.table.lookup(*pair)) for pair in dirtied
    ) or second.dark_before < total_entries


def test_failing_entries_retry_bounded():
    """A real inconsistency must not spin the loop: attempts are capped."""
    campaign = StateFuzzCampaign(build_linear(4, install_routes=False), seed=0)
    run0 = campaign.prober.run()
    assert run0.converged
    # Shadow-drop every H1-bound packet at S2, data plane only.
    rule = FlowRule(priority=200, match=Match.build(dst="10.0.0.0/24"),
                    action=Drop())
    InjectRule("S2", rule).apply(campaign.net)
    campaign.server.coverage.reset()
    run = campaign.prober.run(max_rounds=10)
    assert run.incidents > 0
    assert not run.converged
    # Bounded: at most max_attempts probes per entry plus slice probes.
    assert run.sent <= run.dark_before * campaign.prober.max_attempts


def test_coverage_stats_and_metrics_exposed():
    from repro.obs.exposition import render_prometheus

    _, server, net = passive_setup()
    stats = server.stats()
    for key in (
        "coverage_path_ratio",
        "coverage_pair_ratio",
        "coverage_hop_ratio",
        "coverage_dark_paths",
        "coverage_dark_pairs",
        "coverage_observations",
    ):
        assert key in stats
    assert 0.0 < stats["coverage_path_ratio"] < 1.0

    prober = ActiveProber(server, net)
    run = prober.run()
    assert run.converged
    text = render_prometheus(server.obs.registry.snapshot())
    assert "veridp_coverage_path_ratio 1" in text
    assert "veridp_coverage_dark_paths 0" in text
    assert f"veridp_probes_sent_total {run.sent}" in text
    assert 'veridp_probe_derivations_total{tier="cube"}' in text
