"""Representative-header derivation: correctness and minimality."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.headerspace import HeaderSpace
from repro.core.vector import witness_cube
from repro.netmodel.packet import Header
from repro.probe.headers import (
    DerivationStats,
    plan_pair,
    plan_table,
    representative_header,
    representative_value,
)
from repro.topologies import build_fattree, build_linear


def prefixes():
    return st.tuples(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
    ).map(
        lambda vp: (
            vp[0] & (((1 << vp[1]) - 1) << (32 - vp[1]) if vp[1] else 0),
            vp[1],
        )
    )


@st.composite
def header_sets(draw):
    """A non-trivial header set: union of a few dst/src prefix slices."""
    hs = HeaderSpace()
    terms = draw(
        st.lists(
            st.tuples(st.sampled_from(["dst_ip", "src_ip"]), prefixes()),
            min_size=1,
            max_size=4,
        )
    )
    acc = hs.empty
    for field_name, (value, plen) in terms:
        acc = hs.bdd.or_(acc, hs.prefix(field_name, value, plen))
    return hs, acc


@settings(max_examples=60, deadline=None)
@given(header_sets())
def test_representative_value_satisfies_set(hs_and_set):
    hs, header_set = hs_and_set
    value = representative_value(hs, header_set)
    assert value is not None
    header = hs.header_from_value(value)
    assert hs.contains(header_set, header)
    # The packed value round-trips through field unpacking.
    assert hs.header_value(header) == value


@settings(max_examples=60, deadline=None)
@given(header_sets())
def test_descent_tier_also_satisfies(hs_and_set):
    """cap=0 forces the greedy-descent fallback; same contract."""
    hs, header_set = hs_and_set
    stats = DerivationStats()
    value = representative_value(hs, header_set, cap=0, stats=stats)
    assert value is not None
    assert stats.descent_tier == 1 and stats.cube_tier == 0
    assert hs.contains(header_set, hs.header_from_value(value))


@settings(max_examples=60, deadline=None)
@given(header_sets())
def test_witness_cube_want_is_satisfying(hs_and_set):
    hs, header_set = hs_and_set
    flat = hs.bdd.compile_flat(header_set)
    cube = witness_cube(flat)
    assert cube is not None
    mask, want = cube
    assert want & ~mask == 0  # don't-cares zero-filled
    assert hs.contains(header_set, hs.header_from_value(want))


def test_empty_set_has_no_witness():
    hs = HeaderSpace()
    stats = DerivationStats()
    assert representative_value(hs, hs.empty, stats=stats) is None
    assert representative_header(hs, hs.empty) is None
    assert stats.empty == 1
    assert witness_cube(hs.bdd.compile_flat(hs.empty)) is None


def test_derivation_is_deterministic():
    hs = HeaderSpace()
    s = hs.bdd.or_(
        hs.prefix("dst_ip", 10 << 24, 8), hs.prefix("src_ip", 172 << 24, 12)
    )
    assert representative_value(hs, s) == representative_value(hs, s)


@pytest.mark.parametrize("scenario_factory", [build_linear, build_fattree])
def test_plan_pair_minimal_and_entry_matched(scenario_factory):
    """One probe per entry; per-pair entries are disjoint, so that set is
    minimal — any smaller set must leave some entry unexercised."""
    scenario = scenario_factory(4)
    from repro.core.pathtable import PathTableBuilder

    hs = HeaderSpace()
    builder = PathTableBuilder(scenario.topo, hs)
    table = builder.build()
    checked_pairs = 0
    for inport, outport in table.pairs():
        entries = table.lookup(inport, outport)
        probes = plan_pair(table, hs, inport, outport)
        # Minimality: exactly one probe per (non-empty) entry.
        assert len(probes) == len(entries)
        checked_pairs += 1
        seen_entries = set()
        for probe in probes:
            header = {
                "src_ip": probe.header.src_ip,
                "dst_ip": probe.header.dst_ip,
                "proto": probe.header.proto,
                "src_port": probe.header.src_port,
                "dst_port": probe.header.dst_port,
            }
            # Each witness satisfies its own entry...
            assert hs.contains(probe.entry.headers, header)
            # ...and no other entry of the pair (disjointness / brute
            # force: the witness pins exactly one entry, so dropping any
            # probe leaves its entry unexercisable by the others).
            for other in entries:
                if other is not probe.entry:
                    assert not hs.contains(other.headers, header)
            seen_entries.add(id(probe.entry))
        assert len(seen_entries) == len(entries)
    assert checked_pairs > 0


def test_plan_table_covers_every_pair():
    scenario = build_linear(3)
    from repro.core.pathtable import PathTableBuilder

    hs = HeaderSpace()
    table = PathTableBuilder(scenario.topo, hs).build()
    stats = DerivationStats()
    plans = plan_table(table, hs, stats=stats)
    assert set(plans) == set(table.pairs())
    total_entries = sum(len(table.lookup(i, o)) for i, o in table.pairs())
    assert sum(len(v) for v in plans.values()) == total_entries
    assert stats.derived == total_entries and stats.empty == 0


def test_planned_headers_are_header_instances():
    scenario = build_linear(3)
    from repro.core.pathtable import PathTableBuilder

    hs = HeaderSpace()
    table = PathTableBuilder(scenario.topo, hs).build()
    pair = table.pairs()[0]
    for probe in plan_pair(table, hs, pair[0], pair[1]):
        assert isinstance(probe.header, Header)
