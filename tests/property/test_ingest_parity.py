"""Parity properties for the batched ingestion fast paths (hypothesis).

Every vectorized helper on the frame path must be *bit-identical* to the
scalar code it replaced: the screen to ``payload_precheck`` (including the
exact dead-letter reason strings), the column extraction to
``unpack_report``-style field decoding, the shard split to the scalar
Knuth hash, the tenant LPM batch to the scalar longest-prefix probe, and
the O(1) LRU sampler eviction to the old min-scan policy.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.headerspace import HeaderSpace
from repro.core.daemon import _shard_of
from repro.core.ingest import HAVE_NUMPY, screen_frame, shard_split
from repro.core.reports import REPORT_SIZE, REPORT_VERSION, payload_precheck
from repro.core.sampling import FlowSampler
from repro.slice.registry import SliceRegistry, TenantSpec

# -- strategies -----------------------------------------------------------

# Bias the version byte towards valid / near-valid values so frames mix
# clean and rejected rows instead of being all-rejected noise.
version_bytes = st.sampled_from(
    [REPORT_VERSION, REPORT_VERSION, REPORT_VERSION, 0, 2, 99, 255]
)

rows = st.tuples(
    version_bytes, st.binary(min_size=REPORT_SIZE - 1, max_size=REPORT_SIZE - 1)
).map(lambda vb: bytes([vb[0]]) + vb[1])

frames = st.lists(rows, min_size=0, max_size=64).map(b"".join)


# -- screen parity --------------------------------------------------------


class TestScreenParity:
    @given(frame=frames)
    @settings(max_examples=200, deadline=None)
    def test_screen_frame_matches_scalar_precheck(self, frame):
        clean, rejected = screen_frame(frame)
        expect_clean = []
        expect_rejected = []
        for i in range(len(frame) // REPORT_SIZE):
            row = frame[i * REPORT_SIZE : (i + 1) * REPORT_SIZE]
            reason = payload_precheck(row)
            if reason is None:
                expect_clean.append(row)
            else:
                expect_rejected.append((row, reason))
        assert clean == b"".join(expect_clean)
        # Same rows, same order, and the *same reason strings* the scalar
        # path would dead-letter with.
        assert list(rejected) == expect_rejected


# -- column extraction parity ---------------------------------------------

_ROW_STRUCT = struct.Struct(">BBHHQIIBHH")


@pytest.mark.skipif(not HAVE_NUMPY, reason="column extraction requires numpy")
class TestColumnParity:
    @given(frame=frames)
    @settings(max_examples=100, deadline=None)
    def test_frame_columns_match_struct_unpack(self, frame):
        from repro.core.ingest import frame_columns

        cols = frame_columns(frame)
        names = (
            "version", "flags", "inport", "outport", "tag",
            "src_ip", "dst_ip", "proto", "src_port", "dst_port",
        )
        for i in range(len(frame) // REPORT_SIZE):
            row = frame[i * REPORT_SIZE : (i + 1) * REPORT_SIZE]
            for name, value in zip(names, _ROW_STRUCT.unpack(row)):
                assert int(cols[name][i]) == value, name

    @given(frame=frames)
    @settings(max_examples=100, deadline=None)
    def test_pair_keys_and_dst_ips_match_byte_slices(self, frame):
        from repro.core.ingest import dst_ips, pair_keys

        keys = pair_keys(frame)
        ips = dst_ips(frame)
        for i in range(len(frame) // REPORT_SIZE):
            row = frame[i * REPORT_SIZE : (i + 1) * REPORT_SIZE]
            assert int(keys[i]) == int.from_bytes(row[2:6], "big")
            assert int(ips[i]) == int.from_bytes(row[18:22], "big")


# -- shard split parity ---------------------------------------------------


class TestShardSplitParity:
    @given(frame=frames, workers=st.integers(min_value=1, max_value=9))
    @settings(max_examples=200, deadline=None)
    def test_split_matches_scalar_hash_and_preserves_rows(self, frame, workers):
        chunks = shard_split(frame, workers)
        assert len(chunks) == workers
        expected = [[] for _ in range(workers)]
        for i in range(len(frame) // REPORT_SIZE):
            row = frame[i * REPORT_SIZE : (i + 1) * REPORT_SIZE]
            expected[_shard_of(int.from_bytes(row[2:6], "big"), workers)].append(
                row
            )
        # Same shard owns every row, order preserved within a shard, and
        # the concatenation loses/duplicates nothing.
        assert chunks == [b"".join(rows) for rows in expected]
        assert sum(len(c) for c in chunks) == len(frame)


# -- tenant LPM parity ----------------------------------------------------

_HS = HeaderSpace()  # shared BDD manager; footprints are hash-consed

prefix_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
    ),
    min_size=1,
    max_size=6,
)


def build_registry(specs):
    """Register one tenant per prefix, skipping footprint overlaps (the
    registry rejects them by design — the parity property only needs *a*
    valid LPM table, not any particular one)."""
    registry = SliceRegistry(_HS)
    for i, (value, plen) in enumerate(specs):
        masked = value >> (32 - plen) << (32 - plen) if plen else 0
        try:
            registry.register(
                TenantSpec(name=f"t{i}", prefixes=(f"{_fmt(masked)}/{plen}",))
            )
        except ValueError:
            pass  # overlap with an earlier tenant
    return registry


def _fmt(value):
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class TestTenantLpmParity:
    @given(
        specs=prefix_specs,
        dsts=st.lists(
            st.integers(min_value=0, max_value=(1 << 32) - 1),
            min_size=0,
            max_size=40,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_classify_matches_scalar_probe(self, specs, dsts):
        registry = build_registry(specs)
        # Probe declared-prefix neighborhoods too, not just random space.
        probes = list(dsts)
        for value, plen in specs:
            masked = value >> (32 - plen) << (32 - plen) if plen else 0
            probes += [masked, masked | 1, (masked - 1) % (1 << 32)]
        batch = registry.classify_dst_batch(probes)
        assert batch == [registry.classify_dst(d) for d in probes]

    def test_batch_cache_invalidated_on_registry_change(self):
        registry = SliceRegistry(HeaderSpace())
        registry.register(TenantSpec(name="a", prefixes=("10.0.0.0/8",)))
        probe = [0x0A000001, 0x0B000001]
        assert registry.classify_dst_batch(probe) == ["a", None]
        registry.register(TenantSpec(name="b", prefixes=("11.0.0.0/8",)))
        assert registry.classify_dst_batch(probe) == ["a", "b"]
        registry.remove("a")
        assert registry.classify_dst_batch(probe) == [None, "b"]


# -- sampler LRU parity ---------------------------------------------------


class MinScanSampler:
    """The pre-optimization FlowSampler eviction: an O(n) scan for the
    smallest last-hit instant.  Kept here as the reference model."""

    def __init__(self, default_interval=1.0, capacity=None):
        self.default_interval = default_interval
        self.capacity = capacity
        self._state = {}

    def should_sample(self, flow_key, now):
        state = self._state.get(flow_key)
        if state is None:
            if self.capacity is not None and len(self._state) >= self.capacity:
                victim = min(self._state, key=lambda k: self._state[k][1])
                del self._state[victim]
            self._state[flow_key] = (now, now)
            return True
        last_sampled, _ = state
        if now - last_sampled > self.default_interval:
            self._state[flow_key] = (now, now)
            return True
        self._state[flow_key] = (last_sampled, now)
        return False


class TestSamplerLruParity:
    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=7), min_size=1, max_size=200
        ),
        capacity=st.integers(min_value=1, max_value=5),
        step=st.floats(min_value=0.01, max_value=3.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_o1_eviction_matches_min_scan_reference(self, keys, capacity, step):
        """With strictly increasing hit instants (the only regime the
        bounded-table emulation ever specified), the insertion-order
        eviction picks the same victim as the old min-scan — so decisions,
        counters, and the tracked flow set all agree."""
        fast = FlowSampler(default_interval=1.0, capacity=capacity)
        reference = MinScanSampler(default_interval=1.0, capacity=capacity)
        for i, key in enumerate(keys):
            now = (i + 1) * step  # strictly increasing: no last-hit ties
            assert fast.should_sample(key, now) == reference.should_sample(
                key, now
            ), f"decision diverged at step {i} (key {key})"
            assert set(fast._state) == set(reference._state)
            assert fast._state == reference._state
        assert fast.active_flows <= capacity

    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=50), min_size=1, max_size=100
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_unbounded_sampler_never_evicts(self, keys):
        sampler = FlowSampler(default_interval=0.5)
        for i, key in enumerate(keys):
            sampler.should_sample(key, float(i))
        assert sampler.active_flows == len(set(keys))
        assert sampler.seen_count == len(keys)
