"""Property tests for the iterative BDD fast path (ISSUE 5).

The engine's ``ite``/``and_``/``or_``/``not_`` run as iterative worklists
with bounded operation caches; these tests pin them to a reference
recursive implementation across randomized operand trees, check that
cache eviction never changes results, and that ``export_nodes`` /
``from_nodes`` / ``import_nodes`` merge remapping preserves semantic
fingerprints.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.engine import BDD, FALSE, TRUE
from repro.persist.snapshot import bdd_fingerprint

NUM_VARS = 6

exprs = st.recursive(
    st.integers(min_value=0, max_value=NUM_VARS - 1).map(lambda i: ("var", i))
    | st.sampled_from([("const", False), ("const", True)]),
    lambda children: st.one_of(
        st.tuples(st.just("not"), children),
        st.tuples(st.just("and"), children, children),
        st.tuples(st.just("or"), children, children),
        st.tuples(st.just("ite"), children, children, children),
    ),
    max_leaves=16,
)


def reference_ite(bdd: BDD, f: int, g: int, h: int) -> int:
    """Textbook recursive ite over the same node table, memo-free.

    Builds nodes through ``_mk`` only, so canonical hash-consing — not the
    iterative worklist, not the op caches — is the single shared mechanism
    with the production path.
    """
    if f == TRUE:
        return g
    if f == FALSE:
        return h
    if g == h:
        return g
    if g == TRUE and h == FALSE:
        return f
    level = min(bdd._level[f], bdd._level[g], bdd._level[h])

    def cofactor(u: int, high: bool) -> int:
        if bdd._level[u] != level:
            return u
        return bdd._high[u] if high else bdd._low[u]

    lo = reference_ite(bdd, cofactor(f, False), cofactor(g, False), cofactor(h, False))
    hi = reference_ite(bdd, cofactor(f, True), cofactor(g, True), cofactor(h, True))
    return bdd._mk(level, lo, hi)


def build_with(bdd: BDD, expr, use_reference: bool) -> int:
    kind = expr[0]
    if kind == "var":
        return bdd.var(expr[1])
    if kind == "const":
        return TRUE if expr[1] else FALSE
    if kind == "not":
        u = build_with(bdd, expr[1], use_reference)
        if use_reference:
            return reference_ite(bdd, u, FALSE, TRUE)
        return bdd.not_(u)
    if kind == "ite":
        f = build_with(bdd, expr[1], use_reference)
        g = build_with(bdd, expr[2], use_reference)
        h = build_with(bdd, expr[3], use_reference)
        if use_reference:
            return reference_ite(bdd, f, g, h)
        return bdd.ite(f, g, h)
    f = build_with(bdd, expr[1], use_reference)
    g = build_with(bdd, expr[2], use_reference)
    if use_reference:
        if kind == "and":
            return reference_ite(bdd, f, g, FALSE)
        return reference_ite(bdd, f, TRUE, g)
    return bdd.and_(f, g) if kind == "and" else bdd.or_(f, g)


@settings(max_examples=200, deadline=None)
@given(exprs)
def test_iterative_matches_reference_recursive(expr):
    """Iterative worklist ite/apply ≡ reference recursive, same node ids.

    Sharing one manager means canonicity forces *id* equality, not just
    semantic equivalence — the strongest possible check.
    """
    bdd = BDD(NUM_VARS)
    assert build_with(bdd, expr, False) == build_with(bdd, expr, True)


@settings(max_examples=100, deadline=None)
@given(exprs)
def test_tiny_op_cache_only_costs_recomputation(expr):
    """A pathologically small bounded cache (constant eviction) cannot
    change any result."""
    roomy = BDD(NUM_VARS)
    tiny = BDD(NUM_VARS, op_cache_max=4)
    want = build_with(roomy, expr, False)
    got = build_with(tiny, expr, False)
    assert bdd_fingerprint(tiny, got) == bdd_fingerprint(roomy, want)


@settings(max_examples=100, deadline=None)
@given(st.lists(exprs, min_size=1, max_size=5))
def test_many_op_reduction_matches_pairwise(batch):
    bdd = BDD(NUM_VARS)
    nodes = [build_with(bdd, expr, False) for expr in batch]
    anded = nodes[0]
    ored = nodes[0]
    for node in nodes[1:]:
        anded = bdd.and_(anded, node)
        ored = bdd.or_(ored, node)
    assert bdd.and_many(nodes) == anded
    assert bdd.or_many(nodes) == ored


@settings(max_examples=100, deadline=None)
@given(st.lists(exprs, min_size=1, max_size=4))
def test_from_nodes_round_trip_preserves_fingerprints(batch):
    bdd = BDD(NUM_VARS)
    roots = [build_with(bdd, expr, False) for expr in batch]
    clone = BDD.from_nodes(NUM_VARS, *bdd.export_nodes())
    for root in roots:
        assert bdd_fingerprint(clone, root) == bdd_fingerprint(bdd, root)


@settings(max_examples=100, deadline=None)
@given(st.lists(exprs, min_size=1, max_size=4), st.lists(exprs, min_size=1, max_size=4))
def test_import_nodes_merge_preserves_fingerprints(parent_batch, child_batch):
    """The parallel-build merge: a child manager grows a suffix on top of a
    shared base; importing that suffix into the parent must preserve every
    function (and dedup against nodes the parent grew independently)."""
    parent = BDD(NUM_VARS)
    for expr in parent_batch:
        build_with(parent, expr, False)
    base = parent.num_nodes()

    child = BDD.from_nodes(NUM_VARS, *parent.export_nodes())
    child_roots = [build_with(child, expr, False) for expr in child_batch]
    # The parent meanwhile grew past the fork point, as it does when
    # merging multiple workers' suffixes one after another.
    for expr in child_batch[:1]:
        build_with(parent, expr, False)

    remap = parent.import_nodes(base, *child.export_nodes_since(base))

    def local(node: int) -> int:
        return node if node < base else remap[node - base]

    for root in child_roots:
        assert bdd_fingerprint(parent, local(root)) == bdd_fingerprint(child, root)


def test_cache_counters_move_and_eviction_bounds_cache():
    bdd = BDD(NUM_VARS, op_cache_max=8)
    vars_ = [bdd.var(i) for i in range(NUM_VARS)]
    for i in range(NUM_VARS):
        for j in range(NUM_VARS):
            bdd.ite(vars_[i], vars_[j], FALSE)
    counters = bdd.cache_counters()
    assert counters["misses"] > 0
    assert counters["evictions"] > 0
    assert len(bdd._ite_cache) <= 8
    # A repeated op right after is a hit (memo or ite cache).
    before = bdd.cache_counters()["hits"]
    bdd.and_(vars_[0], vars_[1])
    bdd.and_(vars_[0], vars_[1])
    assert bdd.cache_counters()["hits"] > before


def test_new_generation_clears_op_caches_keeps_results_valid():
    bdd = BDD(NUM_VARS)
    a, b = bdd.var(0), bdd.var(1)
    before = bdd.and_(a, b)
    gen = bdd.generation
    assert bdd.new_generation() == gen + 1
    assert not bdd._ite_cache and not bdd._and_memo
    assert bdd.and_(a, b) == before
