"""Property-based tests for VeriDP invariants (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.headerspace import HeaderSpace
from repro.core.bloom import BloomTagScheme, XorTagScheme, murmur3_32
from repro.core.incremental import IncrementalPathTable
from repro.core.pathtable import PathTableBuilder
from repro.core.reports import PortCodec, TagReport, pack_report, unpack_report
from repro.netmodel.hops import Hop
from repro.netmodel.packet import Header
from repro.netmodel.predicates import SwitchPredicates
from repro.netmodel.rules import Drop, DROP_PORT, FlowRule, Forward, Match
from repro.netmodel.topology import PortRef, Topology
from repro.topologies import build_linear

# -- strategies -----------------------------------------------------------

hops = st.builds(
    Hop,
    in_port=st.integers(min_value=1, max_value=60),
    switch=st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122),
        min_size=1,
        max_size=8,
    ),
    out_port=st.integers(min_value=-1, max_value=60),
)

headers = st.builds(
    Header,
    src_ip=st.integers(min_value=0, max_value=(1 << 32) - 1),
    dst_ip=st.integers(min_value=0, max_value=(1 << 32) - 1),
    proto=st.integers(min_value=0, max_value=255),
    src_port=st.integers(min_value=0, max_value=65535),
    dst_port=st.integers(min_value=0, max_value=65535),
)


def prefix_strategy():
    return st.tuples(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
    ).map(lambda vp: (vp[0] & (((1 << vp[1]) - 1) << (32 - vp[1]) if vp[1] else 0), vp[1]))


matches = st.builds(
    Match,
    src_prefix=st.none() | prefix_strategy(),
    dst_prefix=st.none() | prefix_strategy(),
    proto=st.none() | st.integers(min_value=0, max_value=255),
    src_port_range=st.none()
    | st.tuples(
        st.integers(min_value=0, max_value=65535),
        st.integers(min_value=0, max_value=65535),
    ).map(lambda r: (min(r), max(r))),
    dst_port_range=st.none()
    | st.tuples(
        st.integers(min_value=0, max_value=65535),
        st.integers(min_value=0, max_value=65535),
    ).map(lambda r: (min(r), max(r))),
)


class TestBloomProperties:
    @given(st.lists(hops, min_size=0, max_size=12), st.sampled_from([8, 16, 32, 64]))
    @settings(max_examples=150, deadline=None)
    def test_no_false_negative_membership(self, path, bits):
        scheme = BloomTagScheme(bits=bits)
        tag = scheme.tag_of_path(path)
        for hop in path:
            assert scheme.may_contain(tag, hop)

    @given(st.lists(hops, min_size=1, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_tag_order_and_repeat_invariant(self, path):
        scheme = BloomTagScheme()
        assert scheme.tag_of_path(path) == scheme.tag_of_path(
            list(reversed(path)) + path
        )

    @given(st.lists(hops, min_size=0, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_tag_within_width(self, path):
        scheme = BloomTagScheme(bits=16)
        assert 0 <= scheme.tag_of_path(path) <= scheme.tag_mask

    @given(st.lists(hops, min_size=0, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_fold_equals_batch(self, path):
        scheme = BloomTagScheme()
        folded = scheme.empty_tag
        for hop in path:
            folded = scheme.add(folded, hop)
        assert folded == scheme.tag_of_path(path)

    @given(st.lists(hops, min_size=0, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_xor_scheme_self_inverse(self, path):
        scheme = XorTagScheme()
        tag = scheme.tag_of_path(path)
        assert scheme.tag_of_path(path + list(reversed(path))) == 0
        assert 0 <= tag <= scheme.tag_mask

    @given(st.binary(max_size=64), st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=200, deadline=None)
    def test_murmur3_is_32_bit_and_deterministic(self, data, seed):
        a = murmur3_32(data, seed)
        assert 0 <= a < (1 << 32)
        assert a == murmur3_32(data, seed)


class TestMatchBddAgreement:
    @given(matches, headers)
    @settings(max_examples=200, deadline=None)
    def test_to_bdd_agrees_with_matches(self, match, header):
        hs = HeaderSpace()
        pred = match.to_bdd(hs)
        assert hs.contains(pred, header.as_dict()) == match.matches(header)


class TestTransferMapPartition:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=100),  # priority
                matches,
                st.one_of(
                    st.integers(min_value=1, max_value=4).map(Forward),
                    st.just(Drop()),
                ),
            ),
            min_size=0,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_partition(self, rule_specs):
        hs = HeaderSpace()
        topo = Topology()
        info = topo.add_switch("S", num_ports=4)
        for priority, match, action in rule_specs:
            info.flow_table.add(FlowRule(priority, match, action))
        tmap = SwitchPredicates(info, hs).transfer_map(1)
        union = hs.bdd.or_many(tmap.values())
        assert union == hs.all_match
        values = list(tmap.values())
        for i, a in enumerate(values):
            for b in values[i + 1 :]:
                assert hs.bdd.and_(a, b) == hs.empty


class TestWireFormatRoundTrip:
    @given(
        headers,
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.booleans(),
        st.integers(min_value=0, max_value=62),
        st.sampled_from([1, 5, 62, DROP_PORT]),
    )
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, header, tag, ttl_expired, in_port, out_port):
        codec = PortCodec(["S1", "S2"])
        report = TagReport(
            inport=PortRef("S1", in_port if in_port > 0 else 1),
            outport=PortRef("S2", out_port),
            header=header,
            tag=tag,
            ttl_expired=ttl_expired,
        )
        assert unpack_report(pack_report(report, codec), codec) == report


class TestIncrementalEquivalence:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_lpm_sequences_match_rebuild(self, data):
        scenario = build_linear(3, install_routes=False)
        hs = HeaderSpace()
        inc = IncrementalPathTable(scenario.topo, hs)
        live_prefixes = {}  # (switch, prefix) -> True
        n_ops = data.draw(st.integers(min_value=1, max_value=10))
        for _ in range(n_ops):
            switch = data.draw(st.sampled_from(["S1", "S2", "S3"]))
            plen = data.draw(st.sampled_from([8, 16, 24]))
            base = data.draw(st.integers(min_value=0, max_value=3))
            prefix = f"10.{base}.0.0/{plen}" if plen >= 16 else f"{10 + base}.0.0.0/8"
            key = (switch, prefix)
            if key in live_prefixes:
                inc.delete_rule(switch, prefix)
                del live_prefixes[key]
            else:
                port = data.draw(st.integers(min_value=1, max_value=3))
                inc.add_rule(switch, prefix, port)
                live_prefixes[key] = True
        incremental = {
            (i, o, e.hops): e.headers for i, o, e in inc.table.all_entries()
        }
        rebuilt_table = PathTableBuilder(
            scenario.topo, hs, provider=inc.provider
        ).build()
        rebuilt = {
            (i, o, e.hops): e.headers for i, o, e in rebuilt_table.all_entries()
        }
        assert incremental == rebuilt
