"""Property: replica fingerprints converge under arbitrary churn.

Any interleaving of cluster membership moves (node joins and leaves —
each one a pair migration) and control-plane rule flushes must leave
every node's replica fingerprint equal to the fingerprint the
coordinator's authoritative table slice predicts for it.  This is the
rebalance/resync safety property of the cluster subsystem: no sequence
of moves may strand a stale or partial replica anywhere.
"""

import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.cluster import VeriDPCluster
from repro.core.server import VeriDPServer
from repro.topologies import build_linear

# Each op is one churn event applied in sequence:
#   0 → join a node
#   1 → leave (gracefully remove the oldest node, floor of 1 kept)
#   2 → add a rule (fresh prefix, cycled across switches)
#   3 → delete the most recently added rule (no-op when none left)
OPS = st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=8)


@given(OPS)
@settings(max_examples=8, deadline=None)
def test_any_churn_interleaving_converges(ops):
    scenario = build_linear(4)
    state_dir = tempfile.mkdtemp(prefix="cluster-prop-")
    server = VeriDPServer(
        scenario.topo, state_dir=f"{state_dir}/state", fsync="never"
    )
    added = []
    try:
        _run_interleaving(server, ops, added)
    finally:
        server.close()
        shutil.rmtree(state_dir, ignore_errors=True)


def _run_interleaving(server, ops, added):
    with VeriDPCluster(server, nodes=2, node_mode="thread") as cluster:
        for step, op in enumerate(ops):
            if op == 0:
                cluster.add_node()
            elif op == 1:
                nodes = cluster.nodes()
                if len(nodes) > 1:
                    cluster.remove_node(nodes[0])
            elif op == 2:
                switch = f"S{(step % 4) + 1}"
                prefix = f"10.{200 + step}.0.0/16"
                server.apply_rule_update(switch, prefix, 2)
                added.append((switch, prefix))
            elif op == 3 and added:
                switch, prefix = added.pop()
                server.apply_rule_delete(switch, prefix)
        cluster.resync()
        cluster.flush()
        assert cluster.converged(), (
            ops,
            cluster.coordinator.digests(),
            cluster.coordinator.expected_digests(),
        )
