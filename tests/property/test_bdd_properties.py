"""Property-based tests for the BDD engine (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd.engine import BDD, FALSE, TRUE
from repro.bdd.headerspace import range_to_prefixes

NUM_VARS = 6

# A boolean expression tree over NUM_VARS variables.
exprs = st.recursive(
    st.integers(min_value=0, max_value=NUM_VARS - 1).map(lambda i: ("var", i))
    | st.sampled_from([("const", False), ("const", True)]),
    lambda children: st.one_of(
        st.tuples(st.just("not"), children),
        st.tuples(st.just("and"), children, children),
        st.tuples(st.just("or"), children, children),
        st.tuples(st.just("xor"), children, children),
    ),
    max_leaves=12,
)


def build_bdd(bdd: BDD, expr) -> int:
    kind = expr[0]
    if kind == "var":
        return bdd.var(expr[1])
    if kind == "const":
        return TRUE if expr[1] else FALSE
    if kind == "not":
        return bdd.not_(build_bdd(bdd, expr[1]))
    ops = {"and": bdd.and_, "or": bdd.or_, "xor": bdd.xor}
    return ops[kind](build_bdd(bdd, expr[1]), build_bdd(bdd, expr[2]))


def eval_expr(expr, assignment) -> bool:
    kind = expr[0]
    if kind == "var":
        return assignment[expr[1]]
    if kind == "const":
        return expr[1]
    if kind == "not":
        return not eval_expr(expr[1], assignment)
    a = eval_expr(expr[1], assignment)
    b = eval_expr(expr[2], assignment)
    return {"and": a and b, "or": a or b, "xor": a != b}[kind]


def all_assignments():
    for bits in range(1 << NUM_VARS):
        yield {i: bool((bits >> i) & 1) for i in range(NUM_VARS)}


class TestSemantics:
    @given(exprs)
    @settings(max_examples=150, deadline=None)
    def test_bdd_matches_brute_force(self, expr):
        bdd = BDD(NUM_VARS)
        node = build_bdd(bdd, expr)
        for assignment in all_assignments():
            assert bdd.evaluate(node, assignment) == eval_expr(expr, assignment)

    @given(exprs)
    @settings(max_examples=150, deadline=None)
    def test_count_matches_brute_force(self, expr):
        bdd = BDD(NUM_VARS)
        node = build_bdd(bdd, expr)
        expected = sum(eval_expr(expr, a) for a in all_assignments())
        assert bdd.count(node) == expected

    @given(exprs, exprs)
    @settings(max_examples=100, deadline=None)
    def test_canonicity(self, e1, e2):
        """Semantically equal functions get identical node ids."""
        bdd = BDD(NUM_VARS)
        n1, n2 = build_bdd(bdd, e1), build_bdd(bdd, e2)
        semantically_equal = all(
            eval_expr(e1, a) == eval_expr(e2, a) for a in all_assignments()
        )
        assert (n1 == n2) == semantically_equal

    @given(exprs)
    @settings(max_examples=100, deadline=None)
    def test_double_negation(self, expr):
        bdd = BDD(NUM_VARS)
        node = build_bdd(bdd, expr)
        assert bdd.not_(bdd.not_(node)) == node

    @given(exprs, exprs)
    @settings(max_examples=100, deadline=None)
    def test_de_morgan(self, e1, e2):
        bdd = BDD(NUM_VARS)
        a, b = build_bdd(bdd, e1), build_bdd(bdd, e2)
        assert bdd.not_(bdd.and_(a, b)) == bdd.or_(bdd.not_(a), bdd.not_(b))

    @given(exprs)
    @settings(max_examples=100, deadline=None)
    def test_cubes_partition_function(self, expr):
        bdd = BDD(NUM_VARS)
        node = build_bdd(bdd, expr)
        total = 0
        for cube in bdd.cubes(node):
            total += 1 << (NUM_VARS - len(cube))
        assert total == bdd.count(node)

    @given(exprs, st.integers(min_value=0, max_value=NUM_VARS - 1))
    @settings(max_examples=100, deadline=None)
    def test_shannon_expansion(self, expr, var):
        """f == (x AND f|x=1) OR (NOT x AND f|x=0)."""
        bdd = BDD(NUM_VARS)
        f = build_bdd(bdd, expr)
        x = bdd.var(var)
        hi = bdd.restrict(f, {var: True})
        lo = bdd.restrict(f, {var: False})
        rebuilt = bdd.or_(bdd.and_(x, hi), bdd.and_(bdd.not_(x), lo))
        assert rebuilt == f

    @given(exprs, st.integers(min_value=0, max_value=NUM_VARS - 1))
    @settings(max_examples=100, deadline=None)
    def test_quantification_duality(self, expr, var):
        """forall x. f == NOT exists x. NOT f."""
        bdd = BDD(NUM_VARS)
        f = build_bdd(bdd, expr)
        lhs = bdd.forall(f, [var])
        rhs = bdd.not_(bdd.exists(bdd.not_(f), [var]))
        assert lhs == rhs


class TestRangeToPrefixes:
    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_exact_cover(self, data):
        width = data.draw(st.integers(min_value=1, max_value=12))
        lo = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        hi = data.draw(st.integers(min_value=lo, max_value=(1 << width) - 1))
        covered = set()
        for value, plen in range_to_prefixes(lo, hi, width):
            size = 1 << (width - plen)
            assert value % size == 0, "prefix must be aligned"
            block = range(value, value + size)
            assert covered.isdisjoint(block), "prefixes must be disjoint"
            covered.update(block)
        assert covered == set(range(lo, hi + 1))

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_count_bound(self, data):
        width = data.draw(st.integers(min_value=1, max_value=16))
        lo = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        hi = data.draw(st.integers(min_value=lo, max_value=(1 << width) - 1))
        assert len(range_to_prefixes(lo, hi, width)) <= max(2 * width - 2, 1)
