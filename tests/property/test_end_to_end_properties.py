"""Property-based end-to-end invariants of the whole system (hypothesis).

These are the load-bearing guarantees of the paper, stated as properties
over randomly generated networks and faults:

1. **Soundness / zero false positives** (Section 6.3): on a healthy network
   every delivered packet's tag report verifies.
2. **Fault visibility**: a mis-forwarding on a used path either changes the
   delivery outcome or the tag — the verification fails unless the fault is
   a tag-collision false negative (checked explicitly with wide tags, where
   collisions are practically impossible at these path lengths).
3. **Blame soundness**: when PathInfer blames switches for a single
   injected mis-forwarding, the set includes the faulty switch.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bloom import BloomTagScheme
from repro.core.localization import PathInferLocalizer
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork, random_misforward_fault
from repro.topologies import build_random


def build_rig(seed, scheme=None):
    scenario = build_random(
        num_switches=5 + seed % 3, extra_links=2 + seed % 3, hosts=4,
        seed=seed,
    )
    server = VeriDPServer(
        scenario.topo, scenario.channel, scheme=scheme, localize_failures=False
    )
    net = DataPlaneNetwork(
        scenario.topo,
        scenario.channel,
        scheme=scheme or server.scheme,
        report_sink=server.receive_report_bytes,
    )
    return scenario, server, net


class TestSoundness:
    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_healthy_network_never_alarms(self, seed):
        scenario, server, net = build_rig(seed)
        for src, dst in scenario.host_pairs():
            for dst_port in (22, 80):
                net.inject_from_host(
                    src, scenario.header_between(src, dst, dst_port=dst_port)
                )
        assert server.stats()["failed"] == 0

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_wide_tags_catch_every_exercised_misforward(self, seed):
        """With 64-bit tags, collisions are ~impossible at these path
        lengths: any fault that alters an exercised path must alarm."""
        scheme = BloomTagScheme(bits=64)
        scenario, server, net = build_rig(seed, scheme=scheme)
        rng = random.Random(seed)

        baseline = {}
        for src, dst in scenario.host_pairs():
            result = net.inject_from_host(src, scenario.header_between(src, dst))
            baseline[(src, dst)] = tuple(result.hops)
        server.drain_incidents()
        fault = random_misforward_fault(net, rng)
        if fault is None:
            return
        changed_any = False
        for src, dst in scenario.host_pairs():
            result = net.inject_from_host(src, scenario.header_between(src, dst))
            if tuple(result.hops) != baseline[(src, dst)] and result.reports:
                changed_any = True
        if changed_any:
            assert server.drain_incidents(), (
                f"seed {seed}: path changed but no incident "
                f"(fault {fault.describe()})"
            )


class TestBlameSoundness:
    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_blamed_set_contains_faulty_switch(self, seed):
        scenario, server, net = build_rig(seed)
        localizer = PathInferLocalizer(server.builder, server.scheme, scenario.topo)
        rng = random.Random(seed + 1000)
        fault = random_misforward_fault(net, rng)
        if fault is None:
            return
        for src, dst in scenario.host_pairs():
            delivery = net.inject_from_host(src, scenario.header_between(src, dst))
            for report in delivery.reports:
                verification = server.verifier.verify(report)
                if verification.passed:
                    continue
                result = localizer.localize(report)
                if result.recovered:
                    assert fault.switch_id in result.blamed_switches(), (
                        f"seed {seed}: fault at {fault.switch_id}, "
                        f"blamed {result.blamed_switches()}"
                    )
