"""Tests for the experiment-runner CLI."""

import pytest

from repro.cli import build_parser, main, render_table


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.command == "table2"
        assert args.seed == 0
        assert args.scale == 2

    def test_fig12_options(self):
        args = build_parser().parse_args(
            ["fig12", "--topo", "ft4", "--trials", "50", "--bits", "8", "16"]
        )
        assert args.topo == "ft4"
        assert args.trials == 50
        assert args.bits == [8, 16]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--topo", "ft4", "--mode", "sharded",
             "--metrics-port", "0", "--reports", "5"]
        )
        assert args.command == "serve"
        assert args.mode == "sharded"
        assert args.metrics_port == 0
        assert args.reports == 5

    def test_serve_metrics_off_by_default(self):
        args = build_parser().parse_args(["serve"])
        assert args.metrics_port is None
        assert args.mode == "thread"


class TestRenderTable:
    def test_alignment(self):
        text = render_table("T", ["a", "bbbb"], [["xx", 1], ["y", 22]])
        lines = text.splitlines()
        assert lines[1] == "T"
        assert "a   bbbb" in lines[3]
        assert "xx  1" in text

    def test_empty_rows(self):
        text = render_table("T", ["col"], [])
        assert "col" in text


class TestCommands:
    """Each command runs end-to-end at a tiny scale."""

    def run(self, *argv):
        return main(list(argv))

    def test_table4(self, capsys):
        assert self.run("table4") == 0
        out = capsys.readouterr().out
        assert "native_us" in out and "19.89" in out

    def test_table2(self, capsys):
        assert self.run("table2", "--scale", "1") == 0
        out = capsys.readouterr().out
        assert "ft4" in out and "stanford" in out

    def test_fig6(self, capsys):
        assert self.run("fig6", "--scale", "1") == 0
        assert "CDF" in capsys.readouterr().out

    def test_fig12(self, capsys):
        assert self.run("fig12", "--topo", "ft4", "--trials", "50",
                        "--bits", "16", "64") == 0
        out = capsys.readouterr().out
        assert "abs FNR" in out

    def test_table3(self, capsys):
        assert self.run("table3", "--trials", "1") == 0
        assert "loc. prob" in capsys.readouterr().out

    def test_fig13(self, capsys):
        assert self.run("fig13", "--repeats", "2", "--scale", "1") == 0
        assert "verifs/s" in capsys.readouterr().out

    def test_fig14(self, capsys):
        assert self.run("fig14", "--scale", "1") == 0
        assert "under 10 ms" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert self.run("demo") == 0
        out = capsys.readouterr().out
        assert "blamed:" in out

    def test_tradeoff(self, capsys):
        assert self.run("tradeoff", "--intervals", "0.5", "--trials", "1") == 0
        assert "bound (s)" in capsys.readouterr().out

    def test_paths(self, capsys):
        assert self.run("paths", "--topo", "ft4", "--limit", "2") == 0
        out = capsys.readouterr().out
        assert "path table:" in out and "more)" in out

    def test_serve_self_drive(self, capsys):
        assert self.run("serve", "--topo", "ft4", "--reports", "4",
                        "--metrics-port", "0") == 0
        out = capsys.readouterr().out
        assert "listening for tag reports on udp://" in out
        assert "monitoring endpoint on http://" in out
        assert "self-drive: sent" in out
        assert "submitted" in out and "processed" in out

    def test_report_collates_results(self, capsys, tmp_path, monkeypatch):
        results = tmp_path / "benchmarks" / "results"
        results.mkdir(parents=True)
        (results / "a.txt").write_text("TABLE-A\n")
        (results / "b.txt").write_text("TABLE-B\n")
        monkeypatch.chdir(tmp_path)
        assert self.run("report") == 0
        out = capsys.readouterr().out
        assert "2 tables" in out
        assert "TABLE-A" in out and "TABLE-B" in out

    def test_report_without_results(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert self.run("report") == 1
        assert "no results" in capsys.readouterr().out
