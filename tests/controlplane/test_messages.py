"""Unit tests for the control channel and message types."""

import pytest

from repro.controlplane.messages import Barrier, Channel, FlowMod, FlowModOp
from repro.netmodel.rules import FlowRule, Forward, Match


def flowmod(op=FlowModOp.ADD, switch="S1"):
    return FlowMod(op, switch, FlowRule(10, Match(), Forward(1)))


class TestChannel:
    def test_listeners_receive_in_order(self):
        channel = Channel()
        seen = []
        channel.subscribe(lambda m: seen.append(("a", m)))
        channel.subscribe(lambda m: seen.append(("b", m)))
        msg = flowmod()
        channel.send(msg)
        assert seen == [("a", msg), ("b", msg)]

    def test_history_keeps_everything(self):
        channel = Channel()
        m1, m2 = flowmod(), Barrier()
        channel.send(m1)
        channel.send(m2)
        assert channel.history == [m1, m2]

    def test_flow_mods_filters_barriers(self):
        channel = Channel()
        m1 = flowmod()
        channel.send(m1)
        channel.send(Barrier())
        assert channel.flow_mods() == [m1]

    def test_late_subscriber_misses_nothing_new(self):
        channel = Channel()
        channel.send(flowmod())
        seen = []
        channel.subscribe(seen.append)
        m = flowmod(FlowModOp.DELETE)
        channel.send(m)
        assert seen == [m]

    def test_history_is_a_copy(self):
        channel = Channel()
        channel.send(flowmod())
        history = channel.history
        history.clear()
        assert len(channel.history) == 1


class TestMessages:
    def test_xids_unique_and_increasing(self):
        a, b = flowmod(), flowmod()
        assert a.xid != b.xid
        assert Barrier().xid > b.xid

    def test_flowmod_is_frozen(self):
        mod = flowmod()
        with pytest.raises(AttributeError):
            mod.switch_id = "S9"

    def test_ops_enumerated(self):
        assert {op.value for op in FlowModOp} == {"add", "delete", "modify"}
