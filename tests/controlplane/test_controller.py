"""Unit tests for the controller's intent compilers."""

import pytest

from repro.controlplane.controller import Controller, RoutingError, ecmp_next_hops
from repro.controlplane.messages import Channel, FlowModOp
from repro.dataplane import DataPlaneNetwork
from repro.netmodel.rules import Drop, FlowRule, Forward, Match
from repro.netmodel.topology import PortRef
from repro.topologies import build_fattree, build_figure5, build_grid, build_linear


class TestPrimitives:
    def test_install_updates_logical_table_and_channel(self):
        scenario = build_linear(3, install_routes=False)
        rule = scenario.controller.install(
            "S1", FlowRule(10, Match.build(dst="10.0.0.0/8"), Forward(2))
        )
        assert rule.rule_id in scenario.topo.switch("S1").flow_table
        mods = scenario.channel.flow_mods()
        assert mods[-1].op is FlowModOp.ADD
        assert mods[-1].rule is rule

    def test_remove(self):
        scenario = build_linear(3, install_routes=False)
        rule = scenario.controller.install(
            "S1", FlowRule(10, Match(), Forward(2))
        )
        removed = scenario.controller.remove("S1", rule.rule_id)
        assert removed is rule
        assert rule.rule_id not in scenario.topo.switch("S1").flow_table
        assert scenario.channel.flow_mods()[-1].op is FlowModOp.DELETE

    def test_modify_requires_existing(self):
        scenario = build_linear(3, install_routes=False)
        with pytest.raises(KeyError):
            scenario.controller.modify("S1", FlowRule(10, Match(), Forward(1)))

    def test_modify_replaces_in_place(self):
        scenario = build_linear(3, install_routes=False)
        rule = scenario.controller.install("S1", FlowRule(10, Match(), Forward(2)))
        new = FlowRule(10, Match(), Forward(1), rule_id=rule.rule_id)
        scenario.controller.modify("S1", new)
        table = scenario.topo.switch("S1").flow_table
        assert len(table) == 1
        assert table.get(rule.rule_id).action == Forward(1)


class TestShortestPaths:
    def test_path_endpoints(self):
        scenario = build_linear(4, install_routes=False)
        path = scenario.controller.shortest_switch_path("S1", "S4")
        assert path == ["S1", "S2", "S3", "S4"]

    def test_same_switch(self):
        scenario = build_linear(3, install_routes=False)
        assert scenario.controller.shortest_switch_path("S2", "S2") == ["S2"]

    def test_no_path_raises(self):
        from repro.netmodel.topology import Topology
        from repro.topologies.base import wire_scenario

        topo = Topology("disconnected")
        topo.add_switch("A", num_ports=2)
        topo.add_switch("B", num_ports=2)
        topo.add_host("H1", "A", 1)
        topo.add_host("H2", "B", 1)
        scenario = wire_scenario(topo, {}, {}, install_routes=False)
        with pytest.raises(RoutingError):
            scenario.controller.shortest_switch_path("A", "B")

    def test_unknown_switch_raises(self):
        scenario = build_linear(3, install_routes=False)
        with pytest.raises(RoutingError):
            scenario.controller.shortest_switch_path("S1", "S9")


class TestEcmp:
    def test_next_hops_cover_all_reachable(self):
        scenario = build_fattree(4, install_routes=False)
        graph = scenario.topo.to_networkx()
        hops = ecmp_next_hops(graph, "e0_0", seed="x")
        assert set(hops) == set(graph.nodes) - {"e0_0"}

    def test_next_hops_are_shortest(self):
        import networkx as nx

        scenario = build_fattree(4, install_routes=False)
        graph = scenario.topo.to_networkx()
        hops = ecmp_next_hops(graph, "e0_0", seed="y")
        dist = nx.shortest_path_length(graph, target="e0_0")
        for node, nxt in hops.items():
            assert dist[nxt] == dist[node] - 1

    def test_different_seeds_diversify(self):
        scenario = build_fattree(4, install_routes=False)
        graph = scenario.topo.to_networkx()
        choices = {
            ecmp_next_hops(graph, "e0_0", seed=f"h{i}")["e3_1"] for i in range(16)
        }
        assert len(choices) > 1  # equal-cost ties actually spread

    def test_deterministic_per_seed(self):
        scenario = build_fattree(4, install_routes=False)
        graph = scenario.topo.to_networkx()
        assert ecmp_next_hops(graph, "e0_0", "s") == ecmp_next_hops(graph, "e0_0", "s")


class TestDestinationRoutes:
    def test_all_pairs_connectivity(self):
        scenario = build_grid(2, 2)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        for src, dst in scenario.host_pairs():
            result = net.inject_from_host(src, scenario.header_between(src, dst))
            assert result.status == "delivered", f"{src}->{dst}: {result.status}"
            assert result.delivered_to == dst

    def test_rule_count(self):
        scenario = build_linear(3, install_routes=False)
        rules = scenario.controller.install_destination_routes(scenario.subnets)
        # 3 hosts x 3 switches, all reachable
        assert len(rules) == 9


class TestExplicitPaths:
    def test_install_path_rules_pin_in_ports(self):
        scenario = build_linear(3, install_routes=False)
        rules = scenario.controller.install_path(
            Match.build(dst="10.0.2.0/24"),
            ["S1", "S2", "S3"],
            entry_port=1,
            exit_port=1,
        )
        assert len(rules) == 3
        assert all(r.match.in_port is not None for r in rules)

    def test_install_path_rejects_unlinked_hop(self):
        scenario = build_linear(3, install_routes=False)
        with pytest.raises(RoutingError):
            scenario.controller.install_path(
                Match(), ["S1", "S3"], entry_port=1, exit_port=1
            )

    def test_install_path_rejects_empty(self):
        scenario = build_linear(3, install_routes=False)
        with pytest.raises(RoutingError):
            scenario.controller.install_path(Match(), [], 1, 1)

    def test_waypoint_path_through_middlebox(self):
        scenario = build_figure5()
        # Re-pin H2's traffic through the middlebox instead of dropping it.
        rules = scenario.controller.install_waypoint_path(
            Match.build(src="10.0.1.2/32"), "H2", "MB", "H3", priority=500
        )
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        result = net.inject_from_host("H2", scenario.header_between("H2", "H3"))
        assert result.status == "delivered"
        switches = [h.switch for h in result.hops]
        assert switches.count("S2") == 2  # hair-pin through the middlebox

    def test_install_acl_drops(self):
        scenario = build_linear(3)
        scenario.controller.install_acl("S2", Match.build(dst_port=23))
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        result = net.inject_from_host(
            "H1", scenario.header_between("H1", "H3", dst_port=23)
        )
        assert result.status == "dropped"
        assert result.hops[-1].switch == "S2"

    def test_te_split(self):
        scenario = build_grid(2, 2, install_routes=False)
        # Two corner-to-corner paths: via S1_0 and via S0_1.
        ctrl = scenario.controller
        rules_a, rules_b = ctrl.install_te_split(
            base_match=Match.build(dst="10.0.3.0/24"),
            selector_a=Match.build(dst="10.0.3.0/24", src_port=(0, 32767)),
            path_a=["S0_0", "S1_0", "S1_1"],
            selector_b=Match.build(dst="10.0.3.0/24", src_port=(32768, 65535)),
            path_b=["S0_0", "S0_1", "S1_1"],
            entry_port=1,
            exit_port=1,
        )
        assert len(rules_a) == 3 and len(rules_b) == 3
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        low = net.inject_from_host(
            "H1", scenario.header_between("H1", "H4", src_port=100)
        )
        high = net.inject_from_host(
            "H1", scenario.header_between("H1", "H4", src_port=60000)
        )
        assert [h.switch for h in low.hops] == ["S0_0", "S1_0", "S1_1"]
        assert [h.switch for h in high.hops] == ["S0_0", "S0_1", "S1_1"]
