"""Tests for the live monitoring endpoint over a real (ephemeral) socket."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import Observability
from repro.obs.exposition import CONTENT_TYPE_PROMETHEUS, parse_prometheus_text


def fetch(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers.get("Content-Type"), exc.read()


@pytest.fixture
def obs():
    bundle = Observability()
    bundle.registry.counter("veridp_test_total", "A test counter.").inc(5)
    with bundle.span("verify"):
        pass
    return bundle


class TestRoutes:
    def test_metrics_route(self, obs):
        with obs.endpoint(port=0) as ep:
            status, ctype, body = fetch(ep.url + "/metrics")
        assert status == 200
        assert ctype == CONTENT_TYPE_PROMETHEUS
        parsed = parse_prometheus_text(body.decode())
        assert parsed["veridp_test_total"][frozenset()] == 5
        assert parsed["veridp_spans_total"][frozenset({("span", "verify")})] == 1

    def test_healthz_defaults_ok(self, obs):
        with obs.endpoint(port=0) as ep:
            status, ctype, body = fetch(ep.url + "/healthz")
        assert (status, ctype) == (200, "application/json")
        assert json.loads(body) == {"status": "ok"}

    def test_healthz_unhealthy_is_503(self, obs):
        ep = obs.endpoint(port=0, health=lambda: (False, {"mode": "degraded"}))
        with ep:
            status, _, body = fetch(ep.url + "/healthz")
        assert status == 503
        assert json.loads(body) == {"status": "unhealthy", "mode": "degraded"}

    def test_varz_carries_spans_and_extra(self, obs):
        ep = obs.endpoint(port=0, varz=lambda: {"stats": {"processed": 9}})
        with ep:
            status, _, body = fetch(ep.url + "/varz")
        assert status == 200
        payload = json.loads(body)
        assert payload["metrics"]["veridp_test_total"]["samples"][0]["value"] == 5
        assert payload["spans"]["aggregates"]["verify"]["count"] == 1
        assert payload["varz"] == {"stats": {"processed": 9}}
        assert payload["uptime_s"] >= 0

    def test_unknown_path_is_404(self, obs):
        with obs.endpoint(port=0) as ep:
            status, _, body = fetch(ep.url + "/nope")
        assert status == 404
        assert b"/metrics" in body


class TestLifecycle:
    def test_ephemeral_port_bound(self, obs):
        with obs.endpoint(port=0) as ep:
            host, port = ep.address
            assert host == "127.0.0.1"
            assert port > 0

    def test_start_stop_idempotent(self, obs):
        ep = obs.endpoint(port=0)
        ep.start()
        first = ep.address
        ep.start()
        assert ep.address == first
        ep.stop()
        ep.stop()

    def test_url_before_start_raises(self, obs):
        with pytest.raises(RuntimeError):
            obs.endpoint(port=0).url
