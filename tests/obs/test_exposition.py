"""Exposition tests: golden-file Prometheus text, JSON view, parser round-trip."""

import json
import pathlib

import pytest

from repro.obs.exposition import (
    CONTENT_TYPE_PROMETHEUS,
    parse_prometheus_text,
    render_json,
    render_prometheus,
    snapshot_to_dict,
)
from repro.obs.metrics import MetricsRegistry

GOLDEN = pathlib.Path(__file__).parent / "golden_metrics.prom"


def build_golden_registry() -> MetricsRegistry:
    """A deterministic registry covering every exposition feature: labels,
    label-key sorting, empty families, histogram cumulation, bound
    formatting (1e-06 / 0.001 / 1), and label-value escaping."""
    reg = MetricsRegistry()
    c = reg.counter(
        "veridp_requests_total",
        'Requests by method and code; quotes "ok", backslash \\ ok.',
        ("method", "code"),
    )
    c.labels("get", "200").inc(3)
    c.labels("post", "500").inc()
    reg.gauge("veridp_queue_depth", "Reports waiting in the admission queue.").set(7)
    reg.gauge("veridp_degraded")  # no help, no samples: TYPE line only
    h = reg.histogram(
        "veridp_verify_batch_seconds",
        "Batch verify latency.",
        ("shard",),
        buckets=(1e-6, 0.001, 1.0),
    )
    child = h.labels("0")
    child.observe(0.0005)
    child.observe(0.001)  # == bound, lands in le="0.001"
    child.observe(5.0)    # beyond all bounds, +Inf only
    reg.counter("veridp_lossy_total", "", ("path",)).labels(
        'with"quote\\slash'
    ).inc(2)
    return reg


class TestGoldenFile:
    def test_render_matches_golden(self):
        rendered = render_prometheus(build_golden_registry().snapshot())
        assert rendered == GOLDEN.read_text()

    def test_golden_parses_back(self):
        parsed = parse_prometheus_text(GOLDEN.read_text())
        assert parsed["veridp_requests_total"][
            frozenset({("method", "get"), ("code", "200")})
        ] == 3
        assert parsed["veridp_queue_depth"][frozenset()] == 7
        assert parsed["veridp_verify_batch_seconds_bucket"][
            frozenset({("shard", "0"), ("le", "0.001")})
        ] == 2
        assert parsed["veridp_verify_batch_seconds_count"][
            frozenset({("shard", "0")})
        ] == 3
        assert parsed["veridp_lossy_total"][
            frozenset({("path", 'with"quote\\slash')})
        ] == 2
        assert "veridp_degraded" not in parsed  # no samples, headers only


class TestRenderer:
    def test_content_type_pins_version(self):
        assert CONTENT_TYPE_PROMETHEUS == "text/plain; version=0.0.4; charset=utf-8"

    def test_ends_with_newline(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        assert render_prometheus(reg.snapshot()).endswith("\n")

    def test_infinite_gauge(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(float("inf"))
        text = render_prometheus(reg.snapshot())
        assert "g +Inf\n" in text
        assert parse_prometheus_text(text)["g"][frozenset()] == float("inf")


class TestJson:
    def test_snapshot_to_dict_shape(self):
        view = snapshot_to_dict(build_golden_registry().snapshot())
        hist = view["veridp_verify_batch_seconds"]
        assert hist["kind"] == "histogram"
        (sample,) = hist["samples"]
        assert sample["labels"] == {"shard": "0"}
        assert sample["counts"] == [0, 2, 0, 1]
        assert sample["count"] == 3

    def test_render_json_extra_keys(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        payload = json.loads(render_json(reg.snapshot(), status="ok"))
        assert payload["status"] == "ok"
        assert payload["metrics"]["a_total"]["samples"] == [
            {"labels": {}, "value": 1}
        ]


class TestParser:
    def test_round_trip_values(self):
        snapshot = build_golden_registry().snapshot()
        parsed = parse_prometheus_text(render_prometheus(snapshot))
        assert parsed["veridp_verify_batch_seconds_sum"][
            frozenset({("shard", "0")})
        ] == pytest.approx(5.0015)

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is { not a sample\n")

    def test_comments_and_blank_lines_ignored(self):
        assert parse_prometheus_text("# HELP x y\n\n# TYPE x counter\n") == {}
