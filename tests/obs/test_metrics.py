"""Unit tests for the metrics registry: instruments, snapshots, merging."""

import multiprocessing
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
)


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, reg):
        c = reg.counter("c_total", "help")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self, reg):
        c = reg.counter("c_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels_positional_and_keyword(self, reg):
        c = reg.counter("req_total", "", ("method", "code"))
        c.labels("get", "200").inc(2)
        c.labels(code="200", method="get").inc(3)
        assert c.labels("get", "200").value == 5
        assert c.labels("post", "500").value == 0

    def test_label_arity_mismatch(self, reg):
        c = reg.counter("req_total", "", ("method",))
        with pytest.raises(ValueError):
            c.labels("get", "extra")
        with pytest.raises(ValueError):
            c.labels(code="200")


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_bucket_boundaries_are_le(self, reg):
        """A value equal to a bound lands in that bound's bucket (Prometheus
        ``le`` semantics), one past it lands in the next."""
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        h.observe(0.1)    # == first bound -> bucket 0
        h.observe(0.1001)  # just past -> bucket 1
        h.observe(1.0)    # == second bound -> bucket 1
        h.observe(10.0)   # == last bound -> bucket 2
        h.observe(11.0)   # beyond all bounds -> +Inf slot
        snap = reg.snapshot()
        state = snap.value("lat_seconds")
        assert state["counts"] == [1, 2, 1, 1]
        assert state["count"] == 5
        assert state["sum"] == pytest.approx(0.1 + 0.1001 + 1.0 + 10.0 + 11.0)

    def test_unsorted_buckets_are_sorted(self, reg):
        h = reg.histogram("h", buckets=(1.0, 0.1, 10.0))
        assert h.buckets == (0.1, 1.0, 10.0)

    def test_duplicate_buckets_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(0.1, 0.1))

    def test_empty_buckets_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=())


class TestCallbacks:
    def test_scalar_callback(self, reg):
        state = {"n": 0}
        reg.counter("cb_total", callback=lambda: state["n"])
        state["n"] = 42
        assert reg.snapshot().value("cb_total") == 42

    def test_labelled_callback_dict(self, reg):
        reg.counter(
            "verdicts_total",
            "",
            ("verdict",),
            callback=lambda: {("pass",): 7, ("fail",): 1},
        )
        snap = reg.snapshot()
        assert snap.value("verdicts_total", ("pass",)) == 7
        assert snap.total("verdicts_total") == 8

    def test_callback_instrument_cannot_be_set(self, reg):
        c = reg.counter("cb_total", callback=lambda: 1)
        with pytest.raises(ValueError):
            c.inc()

    def test_reregistration_rebinds_callback(self, reg):
        """Latest owner wins: a daemon attaching to an instrumented server
        replaces the server's callback with its merged view."""
        reg.counter("owned_total", callback=lambda: 1)
        reg.counter("owned_total", callback=lambda: 99)
        assert reg.snapshot().value("owned_total") == 99

    def test_kind_mismatch_rejected(self, reg):
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_labelnames_mismatch_rejected(self, reg):
        reg.counter("x_total", "", ("a",))
        with pytest.raises(ValueError):
            reg.counter("x_total", "", ("b",))


class TestConcurrency:
    def test_concurrent_thread_increments_are_exact(self, reg):
        """Satellite 3: no lost updates under contention."""
        c = reg.counter("hot_total", "", ("worker",))
        threads = 8
        per_thread = 5_000

        def hammer(tid: int) -> None:
            child = c.labels(str(tid % 2))
            for _ in range(per_thread):
                child.inc()

        pool = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert reg.snapshot().total("hot_total") == threads * per_thread


def _worker_ship_deltas(result_queue, rounds: int) -> None:
    """Forked child: increment a private registry, ship resetting deltas."""
    registry = MetricsRegistry()
    c = registry.counter("shard_processed_total", "", ("shard",))
    h = registry.histogram("shard_batch_seconds", "", buckets=(0.1, 1.0))
    for i in range(rounds):
        c.labels("0").inc(10)
        h.observe(0.05)
        h.observe(0.5)
        result_queue.put(registry.snapshot(reset=True).metrics)
    result_queue.put(None)


class TestSnapshotMerge:
    def test_snapshot_reset_ships_deltas(self, reg):
        c = reg.counter("c_total")
        c.inc(5)
        first = reg.snapshot(reset=True)
        c.inc(2)
        second = reg.snapshot(reset=True)
        assert first.value("c_total") == 5
        assert second.value("c_total") == 2

    def test_reset_does_not_touch_gauges_or_callbacks(self, reg):
        g = reg.gauge("depth")
        g.set(3)
        reg.counter("cb_total", callback=lambda: 11)
        reg.snapshot(reset=True)
        snap = reg.snapshot()
        assert snap.value("depth") == 3
        assert snap.value("cb_total") == 11

    def test_merge_adds_counters_and_histograms(self, reg):
        other = MetricsRegistry()
        c = other.counter("c_total", "", ("k",))
        c.labels("a").inc(3)
        h = other.histogram("h_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        for _ in range(2):  # merging the same snapshot twice adds twice
            reg.merge(other.snapshot())
        snap = reg.snapshot()
        assert snap.value("c_total", ("a",)) == 6
        state = snap.value("h_seconds")
        assert state["counts"] == [2, 0, 0]
        assert state["sum"] == pytest.approx(0.1)

    def test_merge_gauge_is_last_write_wins(self, reg):
        reg.gauge("depth").set(100)
        other = MetricsRegistry()
        other.gauge("depth").set(7)
        reg.merge(other.snapshot())
        assert reg.snapshot().value("depth") == 7

    def test_merge_into_callback_family_refused(self, reg):
        reg.counter("owned_total", callback=lambda: 1)
        other = MetricsRegistry()
        other.counter("owned_total").inc()
        with pytest.raises(ValueError):
            reg.merge(other.snapshot())

    def test_merge_bucket_schema_mismatch_refused(self, reg):
        reg.histogram("h_seconds", buckets=(0.1, 1.0))
        other = MetricsRegistry()
        other.histogram("h_seconds", buckets=(0.5, 5.0)).observe(0.2)
        with pytest.raises(ValueError):
            reg.merge(other.snapshot())

    def test_forked_worker_delta_merge(self, reg):
        """Satellite 3: the sharded-daemon pattern — a forked worker ships
        ``snapshot(reset=True)`` deltas over a multiprocessing queue and the
        parent folds them in additively."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" not in methods:  # pragma: no cover - non-POSIX
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        rounds = 4
        proc = ctx.Process(target=_worker_ship_deltas, args=(queue, rounds))
        proc.start()
        merged = 0
        while True:
            metrics = queue.get(timeout=10)
            if metrics is None:
                break
            reg.merge(MetricsSnapshot(metrics))
            merged += 1
        proc.join(timeout=10)
        assert merged == rounds
        snap = reg.snapshot()
        assert snap.value("shard_processed_total", ("0",)) == 10 * rounds
        state = snap.value("shard_batch_seconds")
        assert state["count"] == 2 * rounds
        assert state["sum"] == pytest.approx(0.55 * rounds)


class TestRegistry:
    def test_names_in_registration_order(self, reg):
        reg.counter("a_total")
        reg.gauge("b")
        reg.histogram("c_seconds")
        assert reg.names() == ["a_total", "b", "c_seconds"]

    def test_unregister(self, reg):
        reg.counter("a_total")
        assert reg.unregister("a_total") is True
        assert reg.unregister("a_total") is False
        assert reg.names() == []

    def test_default_buckets_sorted_unique(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
