"""Unit tests for the span tracer."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class TestSpans:
    def test_span_records_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("verify", reports=8) as span:
            span.set("failed", 1)
        (recorded,) = tracer.spans()
        assert recorded.name == "verify"
        assert recorded.duration_s >= 0
        assert recorded.attrs == {"reports": 8, "failed": 1}
        assert recorded.error is None

    def test_exception_marks_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("verify"):
                raise RuntimeError("boom")
        (recorded,) = tracer.spans()
        assert recorded.error == "RuntimeError"
        assert tracer.aggregates()["verify"]["errors"] == 1

    def test_aggregates_survive_ring_eviction(self):
        tracer = Tracer(capacity=4)
        for _ in range(10):
            with tracer.span("decode"):
                pass
        assert len(tracer.spans()) == 4
        agg = tracer.aggregates()["decode"]
        assert agg["count"] == 10
        assert agg["total_s"] >= 0

    def test_spans_filter_by_name(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.spans("a")] == ["a"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("verify") as span:
            span.set("ignored", True)
        assert tracer.spans() == []
        assert tracer.aggregates() == {}

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.spans() == []
        assert tracer.aggregates() == {}

    def test_to_dict_limits_recent(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("a"):
                pass
        view = tracer.to_dict(limit=2)
        assert len(view["recent"]) == 2
        assert view["aggregates"]["a"]["count"] == 5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestSpanMetrics:
    def test_register_metrics_exposes_aggregates(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        tracer.register_metrics(registry)
        with pytest.raises(ValueError):
            with tracer.span("verify"):
                raise ValueError
        with tracer.span("verify"):
            pass
        snap = registry.snapshot()
        assert snap.value("veridp_spans_total", ("verify",)) == 2
        assert snap.value("veridp_span_errors_total", ("verify",)) == 1
        assert snap.value("veridp_span_seconds_total", ("verify",)) >= 0
