"""Unit tests for the small topology generators and the Figure 5 network."""

import pytest

from repro.dataplane import DataPlaneNetwork
from repro.netmodel.topology import PortRef
from repro.topologies import (
    build_figure5,
    build_grid,
    build_linear,
    build_ring,
    build_star,
)


class TestLinear:
    def test_structure(self):
        scenario = build_linear(5)
        stats = scenario.topo.stats()
        assert stats["switches"] == 5
        assert stats["links"] == 4
        assert stats["hosts"] == 5
        scenario.topo.validate()

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            build_linear(1)

    def test_connectivity(self):
        scenario = build_linear(4)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        for src, dst in scenario.host_pairs():
            assert (
                net.inject_from_host(src, scenario.header_between(src, dst)).status
                == "delivered"
            )


class TestRing:
    def test_structure(self):
        scenario = build_ring(5)
        stats = scenario.topo.stats()
        assert stats["switches"] == 5
        assert stats["links"] == 5
        scenario.topo.validate()

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            build_ring(2)

    def test_connectivity(self):
        scenario = build_ring(4)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        for src, dst in scenario.host_pairs():
            assert (
                net.inject_from_host(src, scenario.header_between(src, dst)).status
                == "delivered"
            )


class TestStar:
    def test_structure(self):
        scenario = build_star(6)
        stats = scenario.topo.stats()
        assert stats["switches"] == 7  # hub + 6 leaves
        assert stats["links"] == 6
        scenario.topo.validate()

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            build_star(1)

    def test_all_paths_cross_hub(self):
        scenario = build_star(3)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        result = net.inject_from_host("H1", scenario.header_between("H1", "H3"))
        assert "HUB" in [h.switch for h in result.hops]


class TestGrid:
    def test_structure(self):
        scenario = build_grid(3, 2)
        stats = scenario.topo.stats()
        assert stats["switches"] == 6
        assert stats["links"] == 7  # 2 per row x 2 rows + 3 vertical
        scenario.topo.validate()

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            build_grid(1, 5)

    def test_hosts_on_corners(self):
        scenario = build_grid(3, 3)
        assert len(scenario.topo.hosts()) == 4


class TestFigure5:
    def test_structure(self):
        scenario = build_figure5()
        topo = scenario.topo
        assert sorted(topo.switches) == ["S1", "S2", "S3"]
        assert topo.hosts() == ["H1", "H2", "H3"]
        assert topo.middleboxes() == ["MB"]
        topo.validate()

    def test_middlebox_port_bounces(self):
        scenario = build_figure5()
        mb_port = scenario.topo.middlebox_port("MB")
        assert scenario.topo.link(mb_port) == mb_port
        assert not scenario.topo.is_edge_port(mb_port)

    def test_rule_count_matches_figure(self):
        scenario = build_figure5()
        # Figure 5 shows 10 rules; we install the 6 that matter for the
        # Table 1 fragment (plain connectivity back-paths are omitted).
        total = sum(
            len(info.flow_table) for info in scenario.topo.switches.values()
        )
        assert total == 6

    def test_notes_mention_table1(self):
        assert "Table 1" in build_figure5().notes
