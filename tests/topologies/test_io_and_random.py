"""Tests for topology serialisation and the random generators."""

import json
import os

import pytest

from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.topologies import (
    build_figure5,
    build_jellyfish,
    build_linear,
    build_random,
    load_scenario,
    save_scenario,
    topology_from_dict,
    topology_to_dict,
)


class TestSerialization:
    def test_round_trip_structure(self, tmp_path):
        scenario = build_linear(4)
        path = tmp_path / "linear.json"
        save_scenario(scenario, str(path))
        loaded = load_scenario(str(path))
        assert loaded.topo.stats() == scenario.topo.stats()
        assert loaded.subnets == scenario.subnets
        assert loaded.host_ips == scenario.host_ips

    def test_round_trip_preserves_links(self):
        scenario = build_linear(3)
        data = topology_to_dict(scenario.topo, scenario.subnets, scenario.host_ips)
        topo, _, _ = topology_from_dict(data)
        assert topo.internal_links() == scenario.topo.internal_links()

    def test_round_trip_middleboxes(self):
        scenario = build_figure5()
        data = topology_to_dict(scenario.topo)
        topo, _, _ = topology_from_dict(data)
        assert topo.middleboxes() == ["MB"]
        assert topo.link(topo.middlebox_port("MB")) == topo.middlebox_port("MB")

    def test_loaded_scenario_is_operational(self, tmp_path):
        scenario = build_linear(3)
        path = tmp_path / "net.json"
        save_scenario(scenario, str(path))
        loaded = load_scenario(str(path))
        server = VeriDPServer(loaded.topo, loaded.channel)
        net = DataPlaneNetwork(
            loaded.topo, loaded.channel, report_sink=server.receive_report_bytes
        )
        result = net.inject_from_host("H1", loaded.header_between("H1", "H3"))
        assert result.status == "delivered"
        assert server.stats()["failed"] == 0

    def test_json_is_stable(self, tmp_path):
        scenario = build_linear(3)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_scenario(scenario, str(a))
        save_scenario(scenario, str(b))
        assert a.read_text() == b.read_text()

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            topology_from_dict({"format_version": 99})

    def test_document_is_json_clean(self):
        scenario = build_figure5()
        text = json.dumps(topology_to_dict(scenario.topo))
        assert "S2" in text


class TestRandomTopologies:
    def test_deterministic_per_seed(self):
        a = build_random(seed=5, install_routes=False)
        b = build_random(seed=5, install_routes=False)
        assert a.topo.internal_links() == b.topo.internal_links()

    def test_different_seeds_differ(self):
        a = build_random(seed=1, install_routes=False)
        b = build_random(seed=2, install_routes=False)
        assert a.topo.internal_links() != b.topo.internal_links()

    def test_connected_and_routable(self):
        scenario = build_random(num_switches=6, hosts=4, seed=7)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        for src, dst in scenario.host_pairs():
            result = net.inject_from_host(src, scenario.header_between(src, dst))
            assert result.status == "delivered", f"{src}->{dst}"

    def test_validation(self):
        build_random(seed=0).topo.validate()
        with pytest.raises(ValueError):
            build_random(num_switches=1)
        with pytest.raises(ValueError):
            build_random(hosts=0)

    def test_veridp_on_random_topology(self):
        """End-to-end sanity on an irregular network: clean traffic verifies."""
        scenario = build_random(num_switches=7, extra_links=5, hosts=5, seed=11)
        server = VeriDPServer(scenario.topo, scenario.channel)
        net = DataPlaneNetwork(
            scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
        )
        for src, dst in scenario.host_pairs():
            net.inject_from_host(src, scenario.header_between(src, dst))
        assert server.stats()["failed"] == 0


class TestJellyfish:
    def test_regular_degree(self):
        scenario = build_jellyfish(num_switches=8, degree=3, seed=2,
                                   install_routes=False)
        for sid in scenario.topo.switches:
            assert len(scenario.topo.neighbors(sid)) == 3

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError):
            build_jellyfish(num_switches=5, degree=3)

    def test_routable(self):
        scenario = build_jellyfish(num_switches=8, degree=3, hosts=4, seed=2)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        for src, dst in scenario.host_pairs():
            assert (
                net.inject_from_host(src, scenario.header_between(src, dst)).status
                == "delivered"
            )
