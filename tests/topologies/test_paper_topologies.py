"""Unit tests for the Stanford-like, Internet2-like and fat-tree builders."""

import pytest

from repro.dataplane import DataPlaneNetwork
from repro.topologies import (
    INTERNET2_POPS,
    STANFORD_BACKBONES,
    STANFORD_ZONES,
    build_fattree,
    build_internet2,
    build_stanford,
    fattree_dimensions,
    internet2_lpm_ruleset,
)


class TestFatTree:
    def test_dimensions_k4(self):
        dims = fattree_dimensions(4)
        assert dims == {
            "pods": 4,
            "core": 4,
            "aggregation": 8,
            "edge": 8,
            "switches": 20,
            "hosts": 16,
        }

    def test_dimensions_k6(self):
        dims = fattree_dimensions(6)
        assert dims["switches"] == 45
        assert dims["hosts"] == 54

    def test_build_matches_dimensions(self):
        for k in (4, 6):
            scenario = build_fattree(k, install_routes=False)
            dims = fattree_dimensions(k)
            stats = scenario.topo.stats()
            assert stats["switches"] == dims["switches"]
            assert stats["hosts"] == dims["hosts"]
            # links: edge-agg (k * (k/2)^2) + agg-core (k * (k/2)^2)
            assert stats["links"] == 2 * k * (k // 2) ** 2
            scenario.topo.validate()

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            build_fattree(3)
        with pytest.raises(ValueError):
            fattree_dimensions(0)

    def test_full_connectivity_k4(self):
        scenario = build_fattree(4)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        for src, dst in scenario.host_pairs():
            result = net.inject_from_host(src, scenario.header_between(src, dst))
            assert result.status == "delivered", f"{src}->{dst}"
            assert result.delivered_to == dst

    def test_inter_pod_paths_have_four_hops(self):
        scenario = build_fattree(4)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        result = net.inject_from_host(
            "h0_0_0", scenario.header_between("h0_0_0", "h3_1_1")
        )
        # edge -> agg -> core -> agg -> edge
        assert len(result.hops) == 5

    def test_intra_edge_paths_have_one_hop(self):
        scenario = build_fattree(4)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        result = net.inject_from_host(
            "h0_0_0", scenario.header_between("h0_0_0", "h0_0_1")
        )
        assert len(result.hops) == 1


class TestStanford:
    def test_roster(self):
        scenario = build_stanford(install_routes=False)
        assert set(scenario.topo.switches) == set(STANFORD_ZONES) | set(
            STANFORD_BACKBONES
        )
        assert len(scenario.topo.switches) == 16  # as in the paper
        scenario.topo.validate()

    def test_dual_homing(self):
        scenario = build_stanford(install_routes=False)
        for zone in STANFORD_ZONES:
            assert sorted(scenario.topo.neighbors(zone)) == ["bbra", "bbrb"]

    def test_function_test_addresses_present(self):
        scenario = build_stanford()
        assert scenario.subnets["h_boza_0"] == "172.20.10.32/27"
        assert scenario.host_ips["h_boza_0"] == "172.20.10.33"
        assert scenario.subnets["h_cozb_0"] == "10.63.16.0/20"

    def test_acl_blocks_private_space_through_sozb(self):
        scenario = build_stanford()
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        result = net.inject_from_host(
            "h_sozb_0", scenario.header_between("h_sozb_0", "h_cozb_0")
        )
        assert result.status == "dropped"
        assert result.hops[-1].switch == "sozb"

    def test_acls_can_be_disabled(self):
        scenario = build_stanford(with_acls=False)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        result = net.inject_from_host(
            "h_sozb_0", scenario.header_between("h_sozb_0", "h_cozb_0")
        )
        assert result.status == "delivered"

    def test_scaling_knob(self):
        small = build_stanford(subnets_per_zone=1, install_routes=False)
        large = build_stanford(subnets_per_zone=3, install_routes=False)
        assert len(large.topo.hosts()) == 3 * len(small.topo.hosts())
        with pytest.raises(ValueError):
            build_stanford(subnets_per_zone=0)

    def test_general_connectivity(self):
        scenario = build_stanford(subnets_per_zone=1)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        result = net.inject_from_host(
            "h_boza_0", scenario.header_between("h_boza_0", "h_yozb_0")
        )
        assert result.status == "delivered"


class TestInternet2:
    def test_roster(self):
        scenario = build_internet2(install_routes=False)
        assert set(scenario.topo.switches) == set(INTERNET2_POPS)
        assert len(INTERNET2_POPS) == 9  # as in the paper
        scenario.topo.validate()

    def test_connectivity(self):
        scenario = build_internet2(prefixes_per_pop=1)
        net = DataPlaneNetwork(scenario.topo, scenario.channel)
        for src, dst in scenario.host_pairs():
            result = net.inject_from_host(src, scenario.header_between(src, dst))
            assert result.status == "delivered", f"{src}->{dst}"

    def test_prefix_scaling(self):
        scenario = build_internet2(prefixes_per_pop=4, install_routes=False)
        assert len(scenario.topo.hosts()) == 36
        with pytest.raises(ValueError):
            build_internet2(prefixes_per_pop=0)

    def test_lpm_ruleset_shape(self):
        scenario = build_internet2(prefixes_per_pop=2, install_routes=False)
        ruleset = internet2_lpm_ruleset(scenario)
        assert set(ruleset) == set(INTERNET2_POPS)
        # every switch has a rule for every one of the 18 prefixes
        assert all(len(rules) == 18 for rules in ruleset.values())

    def test_lpm_ruleset_ports_exist(self):
        scenario = build_internet2(prefixes_per_pop=1, install_routes=False)
        ruleset = internet2_lpm_ruleset(scenario)
        for switch_id, rules in ruleset.items():
            ports = set(scenario.topo.ports_of(switch_id))
            assert all(port in ports for _, port in rules)
